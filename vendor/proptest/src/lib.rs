//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim re-implements the subset of proptest's API that sdlo's
//! property tests use: [`Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, integer and float range strategies, tuple
//! strategies, [`collection::vec`], [`bool::ANY`], the [`proptest!`] /
//! [`prop_oneof!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case panics with the generated values'
//!   `Debug` form via the assertion message instead of a minimized case;
//! * **deterministic seeding** — case `k` of test `t` always sees the same
//!   values (seeded from `(t, k)`), so failures reproduce exactly;
//! * strategies are sampled, not size-directed: `prop_recursive`'s
//!   `desired_size`/`expected_branch_size` hints only bound the depth.

use std::rc::Rc;

pub mod test_runner {
    /// Configuration block accepted by `proptest! { #![proptest_config(..)] }`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// SplitMix64: tiny, fast, and plenty for test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic RNG for case `case` of the test named `name`.
        pub fn deterministic(name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// A generator of values of type `Self::Value`.
pub trait Strategy: Clone {
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T + Clone,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S + Clone,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `recurse` receives the strategy for the
    /// smaller sub-level. `_desired_size` and `_branch` are accepted for
    /// API compatibility; only `depth` is honored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut level = self.clone().boxed();
        for _ in 0..depth {
            let leaf = self.clone().boxed();
            let deeper = recurse(level).boxed();
            // 1-in-4 chance of bottoming out early keeps sizes spread.
            level = BoxedStrategy::new(move |rng: &mut TestRng| {
                if rng.next_u64().is_multiple_of(4) {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            });
        }
        level
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::new(move |rng: &mut TestRng| self.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { gen_fn: Rc::new(f) }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen_fn: Rc::clone(&self.gen_fn),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Clone, F: Clone> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: self.f.clone(),
        }
    }
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Clone, F: Clone> Clone for FlatMap<S, F> {
    fn clone(&self) -> Self {
        FlatMap {
            inner: self.inner.clone(),
            f: self.f.clone(),
        }
    }
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

pub mod bool {
    //! Boolean strategies.
    use super::{test_runner::TestRng, Strategy};

    /// Generates `true`/`false` uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{test_runner::TestRng, Strategy};

    /// Fixed-length `Vec` of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, count: usize) -> VecStrategy<S> {
        VecStrategy { element, count }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        count: usize,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                element: self.element.clone(),
                count: self.count,
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.count)
                .map(|_| self.element.generate(rng))
                .collect()
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs.
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Strategy};
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assertion inside a `proptest!` body (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            [$crate::test_runner::ProptestConfig::default()] $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ([$cfg:expr] $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges", 0);
        for _ in 0..1000 {
            let v = (-5i64..=7).generate(&mut rng);
            assert!((-5..=7).contains(&v));
            let u = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&u));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn determinism_per_case() {
        let gen_one = |case| {
            let mut rng = crate::test_runner::TestRng::deterministic("det", case);
            crate::collection::vec(0u64..=1000, 8).generate(&mut rng)
        };
        assert_eq!(gen_one(3), gen_one(3));
        assert_ne!(gen_one(3), gen_one(4));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u64..10, 0u64..10), c in 5i64..=5) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(c, 5);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_recursive_generate(v in prop_oneof![
            (0u32..4).prop_map(|x| x as u64),
            (10u32..14).prop_map(|x| x as u64),
        ].prop_recursive(2, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a + b)
        })) {
            // Leaves are < 14; two levels of addition bound the total.
            prop_assert!(v < 14 * 4);
        }
    }
}
