//! Offline stand-in for the `rayon` crate.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so this vendored shim provides the (small) subset of rayon's
//! API that sdlo actually uses — `ThreadPoolBuilder`/`ThreadPool::install`,
//! `into_par_iter().map(..).collect()`, `par_iter()`, and
//! `par_chunks_mut(..).enumerate().for_each(..)` — with *real* parallelism
//! built on `std::thread::scope`.
//!
//! Semantics intentionally preserved:
//!
//! * item order is preserved by `collect` (results land at their item's
//!   index, exactly like rayon's indexed collect),
//! * work is distributed over a shared atomic cursor, so uneven items load
//!   balance across workers,
//! * `ThreadPool::install` scopes the worker count for every parallel call
//!   made inside the closure (rayon's pool-install semantics for the cases
//!   used here: the installed pool's thread count bounds parallelism).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

thread_local! {
    /// Worker count installed by [`ThreadPool::install`] on this thread.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn current_threads() -> usize {
    INSTALLED_THREADS.with(|t| t.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Number of worker threads parallel calls on this thread currently use
/// (rayon's free function of the same name): the installed pool's count
/// inside [`ThreadPool::install`], the machine's available parallelism
/// otherwise.
pub fn current_num_threads() -> usize {
    current_threads()
}

/// Error from [`ThreadPoolBuilder::build`]. The shim cannot fail to build.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// `0` means "use the default" (available parallelism), like rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads: n })
    }
}

/// A "pool" that records its worker count; workers are spawned per call
/// (scoped threads), which keeps the shim dependency-free and leak-free.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Number of worker threads this pool parallelizes over.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `op` with this pool's thread count governing every parallel
    /// call it makes.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|t| {
            let prev = t.replace(Some(self.threads));
            let out = op();
            t.set(prev);
            out
        })
    }
}

/// Run `f` over every item on up to [`current_threads`] scoped workers,
/// returning results in item order.
fn run_parallel<T: Send, R: Send>(items: Vec<T>, f: impl Fn(usize, T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let threads = current_threads().clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    // Hand items out through a shared cursor so uneven work load-balances.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("item taken once");
                let out = f(i, item);
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker produced result"))
        .collect()
}

/// An eager indexed parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> MapParIter<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        MapParIter {
            items: self.items,
            f,
        }
    }

    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_parallel(self.items, |_, t| f(t));
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// `ParIter::map` adapter; terminal ops execute in parallel.
pub struct MapParIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> MapParIter<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = self.f;
        run_parallel(self.items, |_, t| f(t)).into_iter().collect()
    }

    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync,
    {
        let f = self.f;
        run_parallel(self.items, |_, t| g(f(t)));
    }

    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        let f = self.f;
        run_parallel(self.items, |_, t| f(t)).into_iter().sum()
    }
}

/// Conversion into a parallel iterator (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iteration (rayon's `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Parallel mutable chunking (rayon's `ParallelSliceMut::par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000usize).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_sees_every_chunk() {
        let mut data = vec![0u64; 64];
        data.par_chunks_mut(8).enumerate().for_each(|(i, chunk)| {
            for c in chunk.iter_mut() {
                *c = i as u64;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, (i / 8) as u64);
        }
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let sum: u64 = pool.install(|| (0..100u64).into_par_iter().map(|x| x).sum());
        assert_eq!(sum, 4950);
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1u64, 2, 3];
        let doubled: Vec<u64> = v.par_iter().map(|x| *x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }
}
