//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim provides the subset of criterion's API that sdlo's benches
//! use — `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput` and
//! `Bencher::iter` — measuring median wall-clock time per iteration and
//! printing one line per benchmark:
//!
//! ```text
//! group/name            time: 12.345 µs/iter  (11 samples × 100 iters)
//! ```
//!
//! No statistical analysis, plots, or baselines; numbers are honest medians
//! over `sample_size` samples with an automatically sized iteration batch.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier combining a function name and a parameter, as in criterion.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation; reported as elements or bytes per second.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for `criterion_group!` expansion compatibility; the shim
    /// ignores CLI arguments (cargo passes `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 21,
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&id.id, 21, None, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion default is 100;
    /// the shim defaults lower to keep `cargo bench` quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `inner`, called `self.iters` times back to back.
    pub fn iter<R>(&mut self, mut inner: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(inner());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once(f: &mut impl FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm up and size the batch so one sample takes roughly 10 ms.
    let warmup = time_once(&mut f, 1).max(Duration::from_nanos(1));
    let iters =
        (Duration::from_millis(10).as_nanos() / warmup.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut samples: Vec<f64> = (0..sample_size)
        .map(|_| time_once(&mut f, iters).as_secs_f64() / iters as f64)
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:.0} elem/s", n as f64 / median)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {:.0} B/s", n as f64 / median)
        }
        None => String::new(),
    };
    println!(
        "{name:<48} time: {}{rate}  ({sample_size} samples × {iters} iters)",
        format_time(median)
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s/iter")
    } else if secs >= 1e-3 {
        format!("{:.3} ms/iter", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs/iter", secs * 1e6)
    } else {
        format!("{:.1} ns/iter", secs * 1e9)
    }
}

/// Declare a group of benchmark functions, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Elements(10));
        g.bench_function("f", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with-input", 42), &42u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    #[test]
    fn format_time_units() {
        assert!(format_time(2.0).ends_with("s/iter"));
        assert!(format_time(2e-3).contains("ms"));
        assert!(format_time(2e-6).contains("µs"));
        assert!(format_time(2e-9).contains("ns"));
    }
}
