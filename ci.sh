#!/usr/bin/env bash
# Full local CI gate: formatting, lints, release build, tests, self-lint.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

# Vendored dependency shims (vendor/) mirror external crates' APIs, so they
# are exempt from the workspace's clippy bar.
echo "==> cargo clippy -D warnings (workspace crates, vendored shims excluded)"
cargo clippy --workspace --exclude proptest --exclude criterion --exclude rayon \
    --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test --workspace -q

# Self-lint: every builtin workload must pass the static analyzer with zero
# error-severity diagnostics (`tables lint` exits 1 otherwise). The JSON
# report is archived next to results/loadtest.json.
echo "==> tables lint --all-builtins"
cargo run --release -q -p sdlo-bench --bin tables -- lint --all-builtins --json

# Verified auto-apply: applying every *proven* fix-it must converge and the
# rewritten builtins must re-lint with zero errors.
echo "==> tables lint --apply --all-builtins"
cargo run --release -q -p sdlo-bench --bin tables -- lint --apply --all-builtins > /dev/null

# Dependence graphs of every builtin, archived as results/deps.json.
echo "==> tables deps --all-builtins"
cargo run --release -q -p sdlo-bench --bin tables -- deps --all-builtins --json > /dev/null

# Phase profiling: every builtin's model build must stay inside a generous
# wall-time budget (`tables profile` exits 1 otherwise); the Chrome trace
# lands in results/ for inspection.
echo "==> tables profile --all-builtins"
cargo run --release -q -p sdlo-bench --bin tables -- profile --all-builtins \
    --trace-out results/profile-trace.json --json --budget-ms 2000

# Wire compatibility: the golden reply-shape tests for every op, including
# the deadline gate — an advise with a 1 ms deadline over the largest
# builtin's full tile grid must come back `completed:false` within budget.
echo "==> wire-compat tests (release)"
cargo test --release -q -p sdlo-service --test wire_compat

# Sequential-vs-parallel search: byte-identical outcomes and no throughput
# regression; the measured speedup lands in results/search-speedup.txt.
echo "==> search bench (seq vs parallel)"
cargo bench -q -p sdlo-bench --bench search

# Load smoke: 256 concurrent clients against an in-process server for a few
# seconds. Gates on zero transport/protocol errors, client/server counter
# agreement, and a conservative throughput floor; bounded `overloaded`
# rejections are expected (the queue is deliberately small so admission
# control is exercised). The full report is archived in results/loadtest.json.
echo "==> loadgen smoke (256 clients)"
cargo run --release -q -p sdlo-loadgen --bin loadgen -- \
    --clients 256 --duration 3s --workers 2 --queue 64 \
    --seed 42 --min-throughput 300

echo "CI green."
