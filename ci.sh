#!/usr/bin/env bash
# Full local CI gate: formatting, lints, release build, tests.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test --workspace -q

echo "CI green."
