#!/usr/bin/env bash
# Full local CI gate: formatting, lints, release build, tests, self-lint.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

# Vendored dependency shims (vendor/) mirror external crates' APIs, so they
# are exempt from the workspace's clippy bar.
echo "==> cargo clippy -D warnings (workspace crates, vendored shims excluded)"
cargo clippy --workspace --exclude proptest --exclude criterion --exclude rayon \
    --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test --workspace -q

# Self-lint: every builtin workload must pass the static analyzer with zero
# error-severity diagnostics (`tables lint` exits 1 otherwise). The JSON
# report is archived next to results/loadtest.json.
echo "==> tables lint --all-builtins"
cargo run --release -q -p sdlo-bench --bin tables -- lint --all-builtins --json

# Verified auto-apply: applying every *proven* fix-it must converge and the
# rewritten builtins must re-lint with zero errors.
echo "==> tables lint --apply --all-builtins"
cargo run --release -q -p sdlo-bench --bin tables -- lint --apply --all-builtins > /dev/null

# Dependence graphs of every builtin, archived as results/deps.json.
echo "==> tables deps --all-builtins"
cargo run --release -q -p sdlo-bench --bin tables -- deps --all-builtins --json > /dev/null

# Phase profiling: every builtin's model build must stay inside a generous
# wall-time budget (`tables profile` exits 1 otherwise); the Chrome trace
# lands in results/ for inspection.
echo "==> tables profile --all-builtins"
cargo run --release -q -p sdlo-bench --bin tables -- profile --all-builtins \
    --trace-out results/profile-trace.json --json --budget-ms 2000

# Disabled-tracing overhead: a span in the hot path must cost nanoseconds
# when no collector is installed (one relaxed atomic load). Exits 1 over the
# gate; the measurement lands in results/trace-overhead.txt.
echo "==> tables trace-overhead"
cargo run --release -q -p sdlo-bench --bin tables -- trace-overhead --max-ns 150

# Wire compatibility: the golden reply-shape tests for every op, including
# the deadline gate — an advise with a 1 ms deadline over the largest
# builtin's full tile grid must come back `completed:false` within budget.
echo "==> wire-compat tests (release)"
cargo test --release -q -p sdlo-service --test wire_compat

# Sequential-vs-parallel search: byte-identical outcomes and no throughput
# regression; the measured speedup lands in results/search-speedup.txt.
echo "==> search bench (seq vs parallel)"
cargo bench -q -p sdlo-bench --bench search

# Reactive model engine: revising a live model DAG through a 64-point tile
# sweep must be at least 5x cheaper than cold per-point DAG rebuilds, with
# byte-identical miss counts (the bench exits 1 otherwise). The measurement
# is archived in results/revise.json.
echo "==> revise bench (warm DAG vs cold rebuild, >=5x)"
cargo bench -q -p sdlo-bench --bench revise

# Load smoke: 256 concurrent clients against an in-process server for a few
# seconds. Gates on zero transport/protocol errors, client/server counter
# agreement, and a conservative throughput floor; bounded `overloaded`
# rejections are expected (the queue is deliberately small so admission
# control is exercised). The full report is archived in results/loadtest.json.
echo "==> loadgen smoke (256 clients)"
cargo run --release -q -p sdlo-loadgen --bin loadgen -- \
    --clients 256 --duration 3s --workers 2 --queue 64 \
    --seed 42 --min-throughput 300

# Fleet smoke: two backends sharing one --cache-dir behind sdlo-router. One
# backend is shut down in the middle of the load run; the router must absorb
# it — loadgen gates on zero transport/protocol errors, and the per-backend
# rollups land in results/router.json. Afterwards the warm-restart gate
# restarts a backend on the same cache directory and asserts it serves a
# previously-seen shape with zero model builds (sdlo_models_built_total 0).
echo "==> router smoke (2 backends, kill one mid-run)"
FLEET_CACHE=$(mktemp -d)
B1_PORT=$((20000 + $$ % 10000))
B2_PORT=$((B1_PORT + 1))
RT_PORT=$((B1_PORT + 2))
FLEET_PIDS=()
cleanup_fleet() {
    kill "${FLEET_PIDS[@]}" 2>/dev/null || true
    rm -rf "$FLEET_CACHE"
}
trap cleanup_fleet EXIT

# Bash-only TCP helpers (no nc dependency).
wait_port() { # port
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then return 0; fi
        sleep 0.1
    done
    echo "error: 127.0.0.1:$1 never started listening" >&2
    return 1
}
send_op() { # port line -> first reply line on stdout
    exec 3<>"/dev/tcp/127.0.0.1/$1"
    printf '%s\n' "$2" >&3
    local reply
    IFS= read -r reply <&3 || true
    exec 3>&- 3<&-
    printf '%s\n' "$reply"
}

# SDLO_TRACE=1 installs each process's flight recorder as its trace
# collector, so router-minted trace ids span all three span trees.
SDLO_TRACE=1 target/release/sdlo-service --addr "127.0.0.1:$B1_PORT" --cache-dir "$FLEET_CACHE" \
    > /dev/null & FLEET_PIDS+=($!)
SDLO_TRACE=1 target/release/sdlo-service --addr "127.0.0.1:$B2_PORT" --cache-dir "$FLEET_CACHE" \
    > /dev/null & FLEET_PIDS+=($!)
wait_port "$B1_PORT"
wait_port "$B2_PORT"
SDLO_TRACE=1 target/release/sdlo-router --addr "127.0.0.1:$RT_PORT" \
    --backend "127.0.0.1:$B1_PORT" --backend "127.0.0.1:$B2_PORT" \
    --health-interval-ms 100 > /dev/null & FLEET_PIDS+=($!)
wait_port "$RT_PORT"

# Fleet trace gate: send a few distinct shapes through the router, dump
# every process's flight recorder, and merge the Chrome traces into one
# cross-process timeline. `--require-cross-process` exits 1 unless at
# least one trace_id appears in more than one process's dump.
echo "==> fleet trace smoke (trace_dump from router + both backends, trace-merge)"
for n in 48 56 64; do
    send_op "$RT_PORT" "{\"op\":\"predict\",\"request_id\":\"trace-$n\",\"program\":\"matmul\",\"bindings\":{\"Ni\":$n,\"Nj\":$n,\"Nk\":$n},\"cache\":1024}" > /dev/null
done
send_op "$B1_PORT" '{"op":"debug","what":"trace_dump"}' > results/trace-b1.json
send_op "$B2_PORT" '{"op":"debug","what":"trace_dump"}' > results/trace-b2.json
send_op "$RT_PORT" '{"op":"debug","what":"trace_dump"}' > results/trace-router.json
cargo run --release -q -p sdlo-bench --bin tables -- trace-merge \
    results/trace-router.json results/trace-b1.json results/trace-b2.json \
    --out results/fleet-trace.json --json --require-cross-process

target/release/loadgen --addr "127.0.0.1:$RT_PORT" --retry-overloaded \
    --clients 64 --duration 6s --seed 42 --out results/router.json & LG_PID=$!
sleep 2
send_op "$B2_PORT" '{"op":"shutdown"}' > /dev/null   # kill one backend mid-run
wait "$LG_PID"                                       # non-zero on any lost request
grep -q '"router_backends"' results/router.json || {
    echo "error: results/router.json lacks per-backend rollups" >&2
    exit 1
}

echo "==> warm-restart gate (models served from disk, zero rebuilds)"
send_op "$RT_PORT" '{"op":"shutdown"}' > /dev/null
send_op "$B1_PORT" '{"op":"shutdown"}' > /dev/null
sleep 0.5
target/release/sdlo-service --addr "127.0.0.1:$B1_PORT" --cache-dir "$FLEET_CACHE" \
    > /dev/null & FLEET_PIDS+=($!)
wait_port "$B1_PORT"
WARM_REPLY=$(send_op "$B1_PORT" '{"op":"predict","request_id":"warm","program":"matmul","bindings":{"Ni":64,"Nj":64,"Nk":64},"cache":512}')
case "$WARM_REPLY" in
    *'"ok":true'*) ;;
    *) echo "error: warm predict failed: $WARM_REPLY" >&2; exit 1 ;;
esac
exec 3<>"/dev/tcp/127.0.0.1/$B1_PORT"
printf '{"op":"metrics","raw":true}\n' >&3
WARM_METRICS=$(cat <&3)
exec 3>&- 3<&-
grep -q '^sdlo_models_built_total 0$' <<< "$WARM_METRICS" || {
    echo "error: warm-restarted backend rebuilt models:" >&2
    grep 'sdlo_models_built_total\|sdlo_model_cache' <<< "$WARM_METRICS" >&2
    exit 1
}
grep -q '^sdlo_model_cache_disk_hits_total [1-9]' <<< "$WARM_METRICS" || {
    echo "error: warm restart did not hit the disk cache" >&2
    exit 1
}
send_op "$B1_PORT" '{"op":"shutdown"}' > /dev/null

echo "CI green."
