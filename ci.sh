#!/usr/bin/env bash
# Full local CI gate: formatting, lints, release build, tests, self-lint.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

# Vendored dependency shims (vendor/) mirror external crates' APIs, so they
# are exempt from the workspace's clippy bar.
echo "==> cargo clippy -D warnings (workspace crates, vendored shims excluded)"
cargo clippy --workspace --exclude proptest --exclude criterion --exclude rayon \
    --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test --workspace -q

# Self-lint: every builtin workload must pass the static analyzer with zero
# error-severity diagnostics (`tables lint` exits 1 otherwise).
echo "==> tables lint --all-builtins"
cargo run --release -q -p sdlo-bench --bin tables -- lint --all-builtins

echo "CI green."
