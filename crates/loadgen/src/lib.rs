//! # sdlo-loadgen
//!
//! Workload generator + latency harness for the tile-advisor service: N
//! concurrent closed-loop clients issue a **seeded, deterministic mix** of
//! `analyze` / `predict` / `advise` / `lint` / `batch` / `stats` requests
//! against a running daemon, measure per-request latency from client-side
//! timestamps, and cross-check the result against the server's own
//! Prometheus latency histograms.
//!
//! The harness validates every reply: the protocol version must be v1, the
//! client's `request_id` must come back verbatim, and the only error
//! envelope tolerated is a well-formed `overloaded` rejection (admission
//! control under deliberate oversubscription). Anything else counts as a
//! protocol error and fails the run — so a load test doubles as a
//! wire-compat soak.
//!
//! The `loadgen` binary wraps [`run_load`] with CLI flags, writes the
//! report to `results/loadtest.json`, and exits non-zero when a throughput
//! floor or the zero-error invariants are violated — CI-gateable.

use sdlo_service::{Client, RetryPolicy};
use sdlo_wire::Value;
use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

// -- deterministic randomness -------------------------------------------------

/// SplitMix64: tiny, seedable, plenty for workload shuffling. Every client
/// derives its own stream from `seed` and its client index, so a run is
/// reproducible regardless of thread interleaving.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

// -- the op mix ---------------------------------------------------------------

/// Request kinds the generator can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Op {
    Analyze,
    Predict,
    Advise,
    Lint,
    Batch,
    Stats,
}

impl Op {
    pub const ALL: [Op; 6] = [
        Op::Analyze,
        Op::Predict,
        Op::Advise,
        Op::Lint,
        Op::Batch,
        Op::Stats,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Op::Analyze => "analyze",
            Op::Predict => "predict",
            Op::Advise => "advise",
            Op::Lint => "lint",
            Op::Batch => "batch",
            Op::Stats => "stats",
        }
    }
}

/// A weighted op mix, e.g. `predict=8,analyze=2,advise=1,lint=1,batch=1,stats=1`.
#[derive(Debug, Clone)]
pub struct Mix {
    weights: Vec<(Op, u32)>,
    total: u32,
}

impl Mix {
    /// The default mix: prediction-heavy (the steady-state op of an
    /// advisor daemon) with every other op represented.
    pub fn default_mix() -> Mix {
        Mix::from_weights(vec![
            (Op::Predict, 8),
            (Op::Analyze, 2),
            (Op::Advise, 1),
            (Op::Lint, 1),
            (Op::Batch, 1),
            (Op::Stats, 1),
        ])
    }

    pub fn from_weights(weights: Vec<(Op, u32)>) -> Mix {
        let total = weights.iter().map(|(_, w)| *w).sum::<u32>().max(1);
        Mix { weights, total }
    }

    /// Parse `op=weight,op=weight,…`. Unknown ops and zero totals are
    /// errors; omitted ops get weight 0.
    pub fn parse(spec: &str) -> Result<Mix, String> {
        let mut weights = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, w) = part
                .split_once('=')
                .ok_or_else(|| format!("mix entry `{part}` is not op=weight"))?;
            let op = *Op::ALL
                .iter()
                .find(|o| o.name() == name.trim())
                .ok_or_else(|| format!("unknown op `{name}` in mix"))?;
            let w: u32 = w
                .trim()
                .parse()
                .map_err(|_| format!("weight in `{part}` is not an integer"))?;
            weights.push((op, w));
        }
        if weights.iter().map(|(_, w)| *w).sum::<u32>() == 0 {
            return Err("mix has zero total weight".to_string());
        }
        Ok(Mix::from_weights(weights))
    }

    pub fn spec(&self) -> String {
        self.weights
            .iter()
            .map(|(op, w)| format!("{}={w}", op.name()))
            .collect::<Vec<_>>()
            .join(",")
    }

    pub fn sample(&self, rng: &mut Rng) -> Op {
        let mut roll = rng.below(self.total as u64) as u32;
        for (op, w) in &self.weights {
            if roll < *w {
                return *op;
            }
            roll -= w;
        }
        self.weights.last().map(|(op, _)| *op).unwrap_or(Op::Stats)
    }
}

// -- request synthesis --------------------------------------------------------

const PREDICT_PROGRAMS: [&str; 2] = ["matmul", "tiled_matmul"];
const ANALYZE_PROGRAMS: [&str; 5] = [
    "matmul",
    "tiled_matmul",
    "two_index_unfused",
    "two_index_fused",
    "tiled_two_index",
];
const SIZES: [u64; 4] = [32, 64, 96, 128];
const CACHES: [u64; 3] = [512, 4096, 8192];

/// Render one request line for `op`. Deterministic given the rng state;
/// every line carries `request_id` so the reply can be matched.
pub fn request_line(op: Op, rng: &mut Rng, request_id: &str) -> String {
    match op {
        Op::Analyze => format!(
            r#"{{"op":"analyze","request_id":"{request_id}","program":"{}"}}"#,
            rng.pick(&ANALYZE_PROGRAMS)
        ),
        Op::Lint => format!(
            r#"{{"op":"lint","request_id":"{request_id}","program":"{}"}}"#,
            rng.pick(&ANALYZE_PROGRAMS)
        ),
        Op::Stats => format!(r#"{{"op":"stats","request_id":"{request_id}"}}"#),
        Op::Predict => {
            let n = *rng.pick(&SIZES);
            let cache = *rng.pick(&CACHES);
            match *rng.pick(&PREDICT_PROGRAMS) {
                "tiled_matmul" => {
                    let t = 16 << rng.below(2);
                    format!(
                        r#"{{"op":"predict","request_id":"{request_id}","program":"tiled_matmul","bindings":{{"Ni":{n},"Nj":{n},"Nk":{n},"Ti":{t},"Tj":{t},"Tk":{t}}},"cache":{cache}}}"#
                    )
                }
                p => format!(
                    r#"{{"op":"predict","request_id":"{request_id}","program":"{p}","bindings":{{"Ni":{n},"Nj":{n},"Nk":{n}}},"cache":{cache}}}"#
                ),
            }
        }
        Op::Advise => {
            let n = *rng.pick(&SIZES);
            format!(
                r#"{{"op":"advise","request_id":"{request_id}","program":"tiled_matmul","cache":4096,"bindings":{{"Ni":{n},"Nj":{n},"Nk":{n}}},"space":{{"syms":["Ti","Tj","Tk"],"max":[64,64,64],"min":4}},"deadline_ms":100}}"#
            )
        }
        Op::Batch => {
            let a = rng.pick(&ANALYZE_PROGRAMS);
            let b = rng.pick(&ANALYZE_PROGRAMS);
            format!(
                r#"{{"op":"batch","request_id":"{request_id}","requests":[{{"op":"analyze","program":"{a}"}},{{"op":"analyze","program":"{b}"}}]}}"#
            )
        }
    }
}

// -- the harness --------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct LoadConfig {
    pub addr: SocketAddr,
    pub clients: usize,
    pub duration: Duration,
    pub mix: Mix,
    pub seed: u64,
    /// When set, clients absorb `overloaded` rejections by resending the
    /// same line (same `request_id`) under this policy before giving up —
    /// the mode to use when driving a router, whose backends may shed load
    /// transiently during failover.
    pub retry_overloaded: Option<RetryPolicy>,
}

/// What one client observed.
#[derive(Debug, Default)]
struct ClientOutcome {
    sent: u64,
    ok: u64,
    overloaded: u64,
    /// Overloaded replies absorbed by the retry policy (each one was
    /// followed by a resend of the same line).
    absorbed_overloads: u64,
    protocol_errors: u64,
    transport_errors: u64,
    /// Latency of every successful request, microseconds.
    latencies: Vec<u64>,
    per_op_sent: BTreeMap<&'static str, u64>,
    per_op_ok: BTreeMap<&'static str, u64>,
    /// Latency of every successful request, keyed by op, microseconds.
    per_op_latencies: BTreeMap<&'static str, Vec<u64>>,
    /// First few validation failures, verbatim, for the report.
    complaints: Vec<String>,
}

/// Aggregated results of one load run.
#[derive(Debug)]
pub struct LoadReport {
    pub config_summary: Vec<(String, Value)>,
    pub requests: u64,
    pub ok: u64,
    pub overloaded: u64,
    /// Overloaded replies absorbed by retries (0 when retry is off). The
    /// server-side rejection counter covers `overloaded + absorbed`.
    pub absorbed_overloads: u64,
    pub protocol_errors: u64,
    pub transport_errors: u64,
    pub wall_secs: f64,
    pub throughput_rps: f64,
    /// Client-side latency quantiles (µs) over successful requests.
    pub client_p50: u64,
    pub client_p99: u64,
    pub client_p999: u64,
    pub client_max: u64,
    pub client_mean: f64,
    pub per_op: BTreeMap<&'static str, OpStats>,
    pub complaints: Vec<String>,
    /// The server's view, parsed from its Prometheus exposition after the
    /// run (absent when the scrape failed).
    pub server: Option<ServerView>,
}

/// Per-op request counts and latency quantiles (µs) over successful
/// requests of that op, client-side.
#[derive(Debug, Default, Clone, Copy)]
pub struct OpStats {
    pub sent: u64,
    pub ok: u64,
    pub p50: u64,
    pub p99: u64,
}

/// Exact quantile (µs) of a sorted latency vector: the smallest recorded
/// latency with at least `ceil(q * len)` observations at or below it.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Drive the configured load and aggregate every client's observations.
/// Clients are closed-loop: each waits for a reply before issuing its next
/// request, so concurrency is exactly `clients`.
pub fn run_load(config: &LoadConfig) -> std::io::Result<LoadReport> {
    let barrier = Barrier::new(config.clients + 1);
    let started_flag = AtomicU64::new(0);
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|client| {
                let barrier = &barrier;
                let started_flag = &started_flag;
                let config = config.clone();
                scope.spawn(move || {
                    let mut c = match Client::connect(config.addr) {
                        Ok(c) => c,
                        Err(_) => {
                            barrier.wait();
                            let mut o = ClientOutcome::default();
                            o.transport_errors += 1;
                            o.complaints
                                .push(format!("client {client}: initial connect failed"));
                            return o;
                        }
                    };
                    barrier.wait();
                    // All clients share one deadline measured from the
                    // barrier release.
                    let t0 = Instant::now();
                    started_flag.store(1, Ordering::Release);
                    let deadline = t0 + config.duration;
                    let mut rng = Rng::new(config.seed ^ (client as u64).wrapping_mul(0x9e3));
                    let mut o = ClientOutcome::default();
                    let mut n = 0u64;
                    while Instant::now() < deadline {
                        let op = config.mix.sample(&mut rng);
                        let rid = format!("lg-{client}-{n}");
                        n += 1;
                        let line = request_line(op, &mut rng, &rid);
                        o.sent += 1;
                        *o.per_op_sent.entry(op.name()).or_default() += 1;
                        let sent_at = Instant::now();
                        let attempt = send_line(
                            &mut c,
                            &line,
                            config.retry_overloaded.as_ref(),
                            &mut rng,
                            &mut o.absorbed_overloads,
                        );
                        let reply = match attempt {
                            Ok(r) => r,
                            Err(e) => {
                                o.transport_errors += 1;
                                if o.complaints.len() < 4 {
                                    o.complaints
                                        .push(format!("client {client} req {rid}: transport: {e}"));
                                }
                                // One reconnect attempt keeps a transient
                                // socket failure from silencing the client;
                                // the error still fails the run's gate.
                                match Client::connect(config.addr) {
                                    Ok(nc) => {
                                        c = nc;
                                        continue;
                                    }
                                    Err(_) => break,
                                }
                            }
                        };
                        let micros = sent_at.elapsed().as_micros() as u64;
                        match validate_reply(&reply, &rid) {
                            Verdict::Ok => {
                                o.ok += 1;
                                *o.per_op_ok.entry(op.name()).or_default() += 1;
                                o.latencies.push(micros);
                                o.per_op_latencies
                                    .entry(op.name())
                                    .or_default()
                                    .push(micros);
                            }
                            Verdict::Overloaded => o.overloaded += 1,
                            Verdict::Protocol(why) => {
                                o.protocol_errors += 1;
                                if o.complaints.len() < 4 {
                                    o.complaints
                                        .push(format!("client {client} req {rid}: {why}"));
                                }
                            }
                        }
                    }
                    o
                })
            })
            .collect();
        barrier.wait();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall_secs = config.duration.as_secs_f64();

    let mut report = LoadReport {
        config_summary: vec![
            ("addr".to_string(), Value::from(config.addr.to_string())),
            ("clients".to_string(), Value::from(config.clients)),
            ("duration_secs".to_string(), Value::from(wall_secs)),
            ("seed".to_string(), Value::from(config.seed)),
            ("mix".to_string(), Value::from(config.mix.spec())),
            (
                "retry_overloaded".to_string(),
                Value::from(config.retry_overloaded.is_some()),
            ),
        ],
        requests: 0,
        ok: 0,
        overloaded: 0,
        absorbed_overloads: 0,
        protocol_errors: 0,
        transport_errors: 0,
        wall_secs,
        throughput_rps: 0.0,
        client_p50: 0,
        client_p99: 0,
        client_p999: 0,
        client_max: 0,
        client_mean: 0.0,
        per_op: BTreeMap::new(),
        complaints: Vec::new(),
        server: None,
    };
    let mut all_latencies: Vec<u64> = Vec::new();
    let mut op_latencies: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    for o in outcomes {
        report.requests += o.sent;
        report.ok += o.ok;
        report.overloaded += o.overloaded;
        report.absorbed_overloads += o.absorbed_overloads;
        report.protocol_errors += o.protocol_errors;
        report.transport_errors += o.transport_errors;
        for (op, n) in o.per_op_sent {
            report.per_op.entry(op).or_default().sent += n;
        }
        for (op, n) in o.per_op_ok {
            report.per_op.entry(op).or_default().ok += n;
        }
        for (op, v) in o.per_op_latencies {
            op_latencies.entry(op).or_default().extend(v);
        }
        if report.complaints.len() < 16 {
            report.complaints.extend(o.complaints);
        }
        all_latencies.extend(o.latencies);
    }
    for (op, v) in &mut op_latencies {
        v.sort_unstable();
        let stats = report.per_op.entry(op).or_default();
        stats.p50 = quantile(v, 0.50);
        stats.p99 = quantile(v, 0.99);
    }
    all_latencies.sort_unstable();
    report.client_p50 = quantile(&all_latencies, 0.50);
    report.client_p99 = quantile(&all_latencies, 0.99);
    report.client_p999 = quantile(&all_latencies, 0.999);
    report.client_max = all_latencies.last().copied().unwrap_or(0);
    report.client_mean = if all_latencies.is_empty() {
        0.0
    } else {
        all_latencies.iter().sum::<u64>() as f64 / all_latencies.len() as f64
    };
    report.throughput_rps = report.ok as f64 / wall_secs;

    report.server = scrape_prometheus(config.addr)
        .ok()
        .map(|text| ServerView::from_exposition(&text));
    Ok(report)
}

/// Issue `line` and read the reply; when `policy` is set, absorb
/// `overloaded` rejections by resending the *same* line (same
/// `request_id`, so the eventual reply still correlates) with jittered
/// exponential backoff, bounded by the policy's retry count and budget.
/// Each absorbed rejection bumps `absorbed` — the server still counted it,
/// so the consistency cross-check adds it back in.
fn send_line(
    c: &mut Client,
    line: &str,
    policy: Option<&RetryPolicy>,
    rng: &mut Rng,
    absorbed: &mut u64,
) -> std::io::Result<String> {
    let mut reply = c.request_line(line)?;
    let Some(policy) = policy else {
        return Ok(reply);
    };
    let deadline = Instant::now() + Duration::from_millis(policy.budget_ms);
    for retry in 1..=policy.max_retries {
        let overloaded = sdlo_wire::parse(&reply)
            .map(|v| sdlo_service::is_overloaded(&v))
            .unwrap_or(false);
        if !overloaded || Instant::now() >= deadline {
            break;
        }
        *absorbed += 1;
        let base = (policy.base_delay_ms << (retry - 1).min(16)).max(1);
        let delay = (base / 2 + rng.next_u64() % base).min(policy.max_delay_ms);
        let room = deadline.saturating_duration_since(Instant::now());
        std::thread::sleep(Duration::from_millis(delay).min(room));
        reply = c.request_line(line)?;
    }
    Ok(reply)
}

enum Verdict {
    Ok,
    Overloaded,
    Protocol(String),
}

/// A reply is valid iff it parses, speaks v1, echoes the request id, and
/// is either a success or a well-formed `overloaded` rejection.
fn validate_reply(reply: &str, request_id: &str) -> Verdict {
    let v = match sdlo_wire::parse(reply) {
        Ok(v) => v,
        Err(e) => return Verdict::Protocol(format!("unparseable reply: {e}")),
    };
    if v.get("v").and_then(Value::as_u64) != Some(1) {
        return Verdict::Protocol(format!("reply does not speak v1: {reply}"));
    }
    if v.get("request_id").and_then(Value::as_str) != Some(request_id) {
        return Verdict::Protocol(format!("request_id not echoed: {reply}"));
    }
    match v.get("ok").and_then(Value::as_bool) {
        Some(true) => Verdict::Ok,
        Some(false) => {
            let kind = v
                .path(&["error", "kind"])
                .and_then(Value::as_str)
                .unwrap_or("");
            let has_message = v
                .path(&["error", "message"])
                .and_then(Value::as_str)
                .is_some();
            if kind == "overloaded" && has_message {
                Verdict::Overloaded
            } else {
                Verdict::Protocol(format!("unexpected error reply: {reply}"))
            }
        }
        None => Verdict::Protocol(format!("reply missing ok: {reply}")),
    }
}

// -- the server's view (Prometheus cross-check) -------------------------------

/// One plain-text Prometheus scrape over a throwaway connection
/// (`{"op":"metrics","raw":true}` followed by EOF).
pub fn scrape_prometheus(addr: SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(b"{\"op\":\"metrics\",\"raw\":true}\n")?;
    let mut text = String::new();
    stream.read_to_string(&mut text)?;
    Ok(text)
}

/// Latency quantiles and counters as the *server* recorded them, parsed
/// out of the Prometheus text exposition. Histogram buckets are log₂, so
/// server quantiles are upper bucket bounds — the cross-check is that the
/// client-side quantile falls at or below the server's bucket bound for
/// the same tail.
#[derive(Debug)]
pub struct ServerView {
    /// Aggregated latency histogram across every op: `le_micros → count`
    /// (non-cumulative, `u64::MAX` holds the +Inf bucket).
    pub buckets: BTreeMap<u64, u64>,
    pub histogram_count: u64,
    pub p50_le: u64,
    pub p99_le: u64,
    pub p999_le: u64,
    /// `sdlo_requests_total` per op.
    pub requests_per_op: BTreeMap<String, u64>,
    pub rejected: u64,
    pub connections_total: u64,
    pub connections_active: u64,
    /// Per-backend rollups, present only when the scrape target is an
    /// `sdlo-router` (`sdlo_router_backend_*` series), keyed by backend
    /// address.
    pub router_backends: BTreeMap<String, BackendView>,
    /// `sdlo_router_exhausted_requests_total` (router only).
    pub router_exhausted: u64,
    /// Per-phase request breakdown (`sdlo_request_{queue,exec,write}_micros`
    /// histograms), keyed `queue`/`exec`/`write`. Empty when the scrape
    /// target predates the phase histograms (e.g. a router front).
    pub phases: BTreeMap<String, PhaseView>,
}

/// One per-phase histogram, reduced to its observation count and p99 upper
/// bucket bound.
#[derive(Debug, Default, Clone)]
pub struct PhaseView {
    pub count: u64,
    pub p99_le: u64,
}

/// One backend as the router sees it, parsed from its
/// `sdlo_router_backend_*{backend="addr"}` series.
#[derive(Debug, Default, Clone)]
pub struct BackendView {
    pub up: bool,
    pub requests: u64,
    pub errors: u64,
    pub transport_errors: u64,
    pub retries: u64,
    pub latency_micros_sum: u64,
    pub latency_micros_count: u64,
}

impl ServerView {
    pub fn from_exposition(text: &str) -> ServerView {
        let mut buckets: BTreeMap<u64, u64> = BTreeMap::new();
        let mut per_op_cum: BTreeMap<String, u64> = BTreeMap::new();
        let mut requests_per_op = BTreeMap::new();
        let mut rejected = 0;
        let mut connections_total = 0;
        let mut connections_active = 0;
        let mut router_backends: BTreeMap<String, BackendView> = BTreeMap::new();
        let mut router_exhausted = 0;
        // Cumulative `le → count` per phase, as printed.
        let mut phase_cum: BTreeMap<&'static str, BTreeMap<u64, u64>> = BTreeMap::new();
        let mut phase_bucket = |phase: &'static str, rest: &str| {
            let Some((le, value)) = rest.split_once("\"} ") else {
                return;
            };
            let le = if le == "+Inf" {
                u64::MAX
            } else {
                le.parse().unwrap_or(u64::MAX)
            };
            if let Ok(cum) = value.trim().parse::<u64>() {
                phase_cum.entry(phase).or_default().insert(le, cum);
            }
        };
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("sdlo_request_latency_micros_bucket{op=\"") {
                let Some((op, rest)) = rest.split_once("\",le=\"") else {
                    continue;
                };
                let Some((le, value)) = rest.split_once("\"} ") else {
                    continue;
                };
                let le = if le == "+Inf" {
                    u64::MAX
                } else {
                    le.parse().unwrap_or(u64::MAX)
                };
                let Ok(cum) = value.trim().parse::<u64>() else {
                    continue;
                };
                // Buckets are cumulative per op and printed in increasing
                // `le` order; diff against the op's running total to get
                // this bucket's own count, then merge across ops.
                let prev = per_op_cum.entry(op.to_string()).or_insert(0);
                let own = cum.saturating_sub(*prev);
                *prev = cum;
                if own > 0 {
                    *buckets.entry(le).or_insert(0) += own;
                }
            } else if let Some(rest) = line.strip_prefix("sdlo_request_queue_micros_bucket{le=\"") {
                phase_bucket("queue", rest);
            } else if let Some(rest) = line.strip_prefix("sdlo_request_exec_micros_bucket{le=\"") {
                phase_bucket("exec", rest);
            } else if let Some(rest) = line.strip_prefix("sdlo_request_write_micros_bucket{le=\"") {
                phase_bucket("write", rest);
            } else if let Some(rest) = line.strip_prefix("sdlo_requests_total{op=\"") {
                if let Some((op, value)) = rest.split_once("\"} ") {
                    if let Ok(n) = value.trim().parse() {
                        requests_per_op.insert(op.to_string(), n);
                    }
                }
            } else if let Some(rest) = line.strip_prefix("sdlo_router_backend_") {
                // `<metric>{backend="addr"} value` — one series per metric
                // per backend.
                let Some((metric, rest)) = rest.split_once("{backend=\"") else {
                    continue;
                };
                let Some((addr, value)) = rest.split_once("\"} ") else {
                    continue;
                };
                let Ok(n) = value.trim().parse::<u64>() else {
                    continue;
                };
                let b = router_backends.entry(addr.to_string()).or_default();
                match metric {
                    "up" => b.up = n != 0,
                    "requests_total" => b.requests = n,
                    "errors_total" => b.errors = n,
                    "transport_errors_total" => b.transport_errors = n,
                    "retries_total" => b.retries = n,
                    "latency_micros_sum" => b.latency_micros_sum = n,
                    "latency_micros_count" => b.latency_micros_count = n,
                    _ => {}
                }
            } else if let Some(v) = line.strip_prefix("sdlo_router_exhausted_requests_total ") {
                router_exhausted = v.trim().parse().unwrap_or(0);
            } else if let Some(v) = line.strip_prefix("sdlo_rejected_requests_total ") {
                rejected = v.trim().parse().unwrap_or(0);
            } else if let Some(v) = line.strip_prefix("sdlo_connections_total ") {
                connections_total = v.trim().parse().unwrap_or(0);
            } else if let Some(v) = line.strip_prefix("sdlo_connections_active ") {
                connections_active = v.trim().parse().unwrap_or(0);
            }
        }
        let phases: BTreeMap<String, PhaseView> = phase_cum
            .into_iter()
            .map(|(name, cum)| {
                // Cumulative buckets: the largest value is the total count,
                // the p99 is the first bound covering 99% of it.
                let count = cum.values().copied().max().unwrap_or(0);
                let target = ((count as f64) * 0.99).ceil().max(1.0) as u64;
                let p99_le = if count == 0 {
                    0
                } else {
                    cum.iter()
                        .find(|(_, c)| **c >= target)
                        .map(|(le, _)| *le)
                        .unwrap_or(u64::MAX)
                };
                (name.to_string(), PhaseView { count, p99_le })
            })
            .collect();
        let histogram_count = buckets.values().sum();
        let q = |q: f64| -> u64 {
            if histogram_count == 0 {
                return 0;
            }
            let target = ((histogram_count as f64) * q).ceil().max(1.0) as u64;
            let mut seen = 0;
            for (le, n) in &buckets {
                seen += n;
                if seen >= target {
                    return *le;
                }
            }
            *buckets.keys().last().unwrap_or(&0)
        };
        ServerView {
            p50_le: q(0.50),
            p99_le: q(0.99),
            p999_le: q(0.999),
            buckets,
            histogram_count,
            requests_per_op,
            rejected,
            connections_total,
            connections_active,
            router_backends,
            router_exhausted,
            phases,
        }
    }
}

// -- report rendering ---------------------------------------------------------

impl LoadReport {
    /// The whole report as one JSON document (`results/loadtest.json`).
    pub fn to_json(&self) -> Value {
        let per_op: Vec<(String, Value)> = self
            .per_op
            .iter()
            .map(|(op, s)| {
                (
                    op.to_string(),
                    Value::obj(vec![
                        ("sent", Value::from(s.sent)),
                        ("ok", Value::from(s.ok)),
                        ("p50", Value::from(s.p50)),
                        ("p99", Value::from(s.p99)),
                    ]),
                )
            })
            .collect();
        let mut fields = vec![
            (
                "config".to_string(),
                Value::Object(self.config_summary.clone()),
            ),
            (
                "totals".to_string(),
                Value::obj(vec![
                    ("requests", Value::from(self.requests)),
                    ("ok", Value::from(self.ok)),
                    ("overloaded", Value::from(self.overloaded)),
                    ("absorbed_overloads", Value::from(self.absorbed_overloads)),
                    ("protocol_errors", Value::from(self.protocol_errors)),
                    ("transport_errors", Value::from(self.transport_errors)),
                ]),
            ),
            (
                "throughput_rps".to_string(),
                Value::from(self.throughput_rps),
            ),
            (
                "latency_micros".to_string(),
                Value::obj(vec![
                    (
                        "client",
                        Value::obj(vec![
                            ("p50", Value::from(self.client_p50)),
                            ("p99", Value::from(self.client_p99)),
                            ("p999", Value::from(self.client_p999)),
                            ("max", Value::from(self.client_max)),
                            ("mean", Value::from(self.client_mean)),
                        ]),
                    ),
                    (
                        "server_histogram",
                        match &self.server {
                            Some(s) => Value::obj(vec![
                                ("p50_le", Value::from(s.p50_le)),
                                ("p99_le", Value::from(s.p99_le)),
                                ("p999_le", Value::from(s.p999_le)),
                                ("count", Value::from(s.histogram_count)),
                            ]),
                            None => Value::Null,
                        },
                    ),
                ]),
            ),
            ("per_op".to_string(), Value::Object(per_op)),
        ];
        if let Some(s) = &self.server {
            let mut server = vec![
                ("rejected", Value::from(s.rejected)),
                ("connections_total", Value::from(s.connections_total)),
                ("connections_active", Value::from(s.connections_active)),
                (
                    "requests_per_op",
                    Value::Object(
                        s.requests_per_op
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::from(*v)))
                            .collect(),
                    ),
                ),
            ];
            if !s.phases.is_empty() {
                server.push((
                    "phases",
                    Value::Object(
                        s.phases
                            .iter()
                            .map(|(name, p)| {
                                (
                                    name.clone(),
                                    Value::obj(vec![
                                        ("count", Value::from(p.count)),
                                        ("p99_le", Value::from(p.p99_le)),
                                    ]),
                                )
                            })
                            .collect(),
                    ),
                ));
            }
            if !s.router_backends.is_empty() {
                server.push((
                    "router_backends",
                    Value::Object(
                        s.router_backends
                            .iter()
                            .map(|(addr, b)| {
                                (
                                    addr.clone(),
                                    Value::obj(vec![
                                        ("up", Value::from(b.up)),
                                        ("requests", Value::from(b.requests)),
                                        ("errors", Value::from(b.errors)),
                                        ("transport_errors", Value::from(b.transport_errors)),
                                        ("retries", Value::from(b.retries)),
                                        (
                                            "latency_micros",
                                            Value::obj(vec![
                                                ("sum", Value::from(b.latency_micros_sum)),
                                                ("count", Value::from(b.latency_micros_count)),
                                            ]),
                                        ),
                                    ]),
                                )
                            })
                            .collect(),
                    ),
                ));
                server.push(("router_exhausted", Value::from(s.router_exhausted)));
            }
            fields.push(("server".to_string(), Value::obj(server)));
        }
        if !self.complaints.is_empty() {
            fields.push((
                "complaints".to_string(),
                Value::Array(
                    self.complaints
                        .iter()
                        .map(|c| Value::from(c.as_str()))
                        .collect(),
                ),
            ));
        }
        Value::Object(fields)
    }

    /// Cross-checks between the two vantage points. Returns a list of
    /// violated invariants (empty = consistent).
    ///
    /// `fresh_server` means the harness spawned the server itself, so its
    /// counters cover exactly this run and counts can be matched exactly.
    pub fn consistency_failures(&self, fresh_server: bool) -> Vec<String> {
        let mut fails = Vec::new();
        let Some(server) = &self.server else {
            fails.push("server Prometheus scrape failed".to_string());
            return fails;
        };
        if fresh_server {
            // Every client-observed overload rejection is one transport
            // rejection on the server, and vice versa. Rejections the retry
            // policy absorbed were still counted server-side, so they add
            // back in.
            if server.rejected != self.overloaded + self.absorbed_overloads {
                fails.push(format!(
                    "server counted {} rejections, clients observed {} (+{} absorbed by retries)",
                    server.rejected, self.overloaded, self.absorbed_overloads
                ));
            }
            // `predict` never nests in batches here, so the server-side op
            // counter must match the client-side count exactly (rejected
            // predicts never reach the engine).
            if let Some(s) = self.per_op.get("predict") {
                let engine_seen = server.requests_per_op.get("predict").copied().unwrap_or(0);
                if engine_seen != s.ok + (self.protocol_errors.min(s.sent - s.ok)) {
                    // ok + engine-side failures; with zero protocol errors
                    // this is just `ok`.
                    if self.protocol_errors == 0 && engine_seen != s.ok {
                        fails.push(format!(
                            "server served {engine_seen} predicts, clients got {} replies",
                            s.ok
                        ));
                    }
                }
            }
        }
        // The server's latency histogram must cover at least the
        // successful requests the clients saw (it also counts scrapes and
        // batch sub-requests, so ≥, not ==).
        if server.histogram_count < self.ok {
            fails.push(format!(
                "server histogram holds {} observations, clients completed {}",
                server.histogram_count, self.ok
            ));
        }
        // Queue time is one slice of the end-to-end latency the clients
        // measured, so its p99 cannot exceed theirs. The server reports a
        // log₂ upper bucket bound (≤ 2× the true value), hence the factor,
        // plus fixed slack for sub-millisecond runs where one bucket is the
        // whole distribution.
        if let Some(queue) = server.phases.get("queue") {
            if queue.count > 0 && queue.p99_le > 2 * self.client_p99 + 1024 {
                fails.push(format!(
                    "server queue p99 ≤{}µs exceeds client total p99 {}µs beyond bucket slack",
                    queue.p99_le, self.client_p99
                ));
            }
        }
        fails
    }

    /// Human-readable one-screen summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "loadgen: {} clients x {:.1}s  seed {}  mix {}",
            self.config_summary
                .iter()
                .find(|(k, _)| k == "clients")
                .and_then(|(_, v)| v.as_u64())
                .unwrap_or(0),
            self.wall_secs,
            self.config_summary
                .iter()
                .find(|(k, _)| k == "seed")
                .and_then(|(_, v)| v.as_u64())
                .unwrap_or(0),
            self.config_summary
                .iter()
                .find(|(k, _)| k == "mix")
                .and_then(|(_, v)| v.as_str())
                .unwrap_or("?"),
        );
        let _ = writeln!(
            out,
            "  {} requests: {} ok, {} overloaded, {} protocol errors, {} transport errors",
            self.requests, self.ok, self.overloaded, self.protocol_errors, self.transport_errors
        );
        if self.absorbed_overloads > 0 {
            let _ = writeln!(
                out,
                "  retries absorbed {} overloaded replies",
                self.absorbed_overloads
            );
        }
        let _ = writeln!(out, "  throughput {:.0} req/s", self.throughput_rps);
        let _ = writeln!(
            out,
            "  client latency µs: p50 {}  p99 {}  p999 {}  max {}",
            self.client_p50, self.client_p99, self.client_p999, self.client_max
        );
        for (op, s) in &self.per_op {
            let _ = writeln!(
                out,
                "    {op:<8} {} sent, {} ok  µs: p50 {}  p99 {}",
                s.sent, s.ok, s.p50, s.p99
            );
        }
        if let Some(s) = &self.server {
            let _ = writeln!(
                out,
                "  server histogram µs (bucket bounds): p50 ≤{}  p99 ≤{}  p999 ≤{}  ({} observations, {} rejected)",
                s.p50_le, s.p99_le, s.p999_le, s.histogram_count, s.rejected
            );
            if !s.phases.is_empty() {
                let p99 = |name: &str| s.phases.get(name).map(|p| p.p99_le).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  server phases µs (p99 bucket bounds): queue ≤{}  exec ≤{}  write ≤{}",
                    p99("queue"),
                    p99("exec"),
                    p99("write")
                );
            }
            for (addr, b) in &s.router_backends {
                let mean = b
                    .latency_micros_sum
                    .checked_div(b.latency_micros_count)
                    .unwrap_or(0);
                let _ = writeln!(
                    out,
                    "    backend {addr} [{}]: {} requests, {} errors, {} transport errors, {} retries, mean {mean}µs",
                    if b.up { "up" } else { "down" },
                    b.requests,
                    b.errors,
                    b.transport_errors,
                    b.retries,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mix_parses_and_samples_only_listed_ops() {
        let mix = Mix::parse("predict=3,stats=1").unwrap();
        let mut rng = Rng::new(7);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(mix.sample(&mut rng));
        }
        assert!(seen.contains(&Op::Predict));
        assert!(seen.contains(&Op::Stats));
        assert_eq!(seen.len(), 2);
        assert!(Mix::parse("frobnicate=1").is_err());
        assert!(Mix::parse("predict=0").is_err());
        assert_eq!(mix.spec(), "predict=3,stats=1");
    }

    #[test]
    fn request_lines_are_valid_json_and_deterministic() {
        for op in Op::ALL {
            let mut rng = Rng::new(11);
            let a = request_line(op, &mut rng, "rid-1");
            let mut rng = Rng::new(11);
            let b = request_line(op, &mut rng, "rid-1");
            assert_eq!(a, b, "{op:?} must be deterministic");
            let v = sdlo_wire::parse(&a).expect("generated line parses");
            assert_eq!(v.get("op").unwrap().as_str(), Some(op.name()));
            assert_eq!(v.get("request_id").unwrap().as_str(), Some("rid-1"));
        }
    }

    #[test]
    fn validate_reply_classifies_envelopes() {
        assert!(matches!(
            validate_reply(r#"{"request_id":"r","v":1,"ok":true,"x":1}"#, "r"),
            Verdict::Ok
        ));
        assert!(matches!(
            validate_reply(
                r#"{"request_id":"r","v":1,"ok":false,"error":{"kind":"overloaded","message":"m"}}"#,
                "r"
            ),
            Verdict::Overloaded
        ));
        // Wrong id, wrong version, other error kinds: protocol errors.
        for bad in [
            r#"{"request_id":"other","v":1,"ok":true}"#,
            r#"{"request_id":"r","v":2,"ok":true}"#,
            r#"{"request_id":"r","v":1,"ok":false,"error":{"kind":"internal","message":"m"}}"#,
            "not json",
        ] {
            assert!(matches!(validate_reply(bad, "r"), Verdict::Protocol(_)));
        }
    }

    #[test]
    fn server_view_parses_cumulative_buckets_across_ops() {
        let text = "\
# TYPE sdlo_request_latency_micros histogram
sdlo_request_latency_micros_bucket{op=\"predict\",le=\"4\"} 90
sdlo_request_latency_micros_bucket{op=\"predict\",le=\"1024\"} 100
sdlo_request_latency_micros_bucket{op=\"predict\",le=\"+Inf\"} 100
sdlo_request_latency_micros_bucket{op=\"stats\",le=\"8\"} 10
sdlo_request_latency_micros_bucket{op=\"stats\",le=\"+Inf\"} 10
sdlo_requests_total{op=\"predict\"} 100
sdlo_rejected_requests_total 3
sdlo_connections_total 12
sdlo_connections_active 2
";
        let view = ServerView::from_exposition(text);
        assert_eq!(view.histogram_count, 110);
        assert_eq!(view.buckets.get(&4), Some(&90));
        assert_eq!(view.buckets.get(&8), Some(&10));
        assert_eq!(view.buckets.get(&1024), Some(&10));
        assert_eq!(view.p50_le, 4);
        assert_eq!(view.p99_le, 1024);
        assert_eq!(view.rejected, 3);
        assert_eq!(view.connections_total, 12);
        assert_eq!(view.connections_active, 2);
        assert_eq!(view.requests_per_op.get("predict"), Some(&100));
        assert!(view.phases.is_empty());
    }

    #[test]
    fn server_view_parses_phase_histograms() {
        let text = "\
# TYPE sdlo_request_queue_micros histogram
sdlo_request_queue_micros_bucket{le=\"8\"} 95
sdlo_request_queue_micros_bucket{le=\"64\"} 99
sdlo_request_queue_micros_bucket{le=\"+Inf\"} 100
sdlo_request_exec_micros_bucket{le=\"512\"} 100
sdlo_request_exec_micros_bucket{le=\"+Inf\"} 100
sdlo_request_write_micros_bucket{le=\"+Inf\"} 0
";
        let view = ServerView::from_exposition(text);
        let queue = view.phases.get("queue").unwrap();
        assert_eq!(queue.count, 100);
        // 99% of 100 observations are within the le=64 bucket.
        assert_eq!(queue.p99_le, 64);
        assert_eq!(view.phases.get("exec").unwrap().p99_le, 512);
        // An empty histogram parses to a zeroed view, not a crash.
        let write = view.phases.get("write").unwrap();
        assert_eq!((write.count, write.p99_le), (0, 0));
    }

    #[test]
    fn server_view_parses_router_backend_rollups() {
        let text = "\
sdlo_rejected_requests_total 0
sdlo_router_backend_up{backend=\"127.0.0.1:9001\"} 1
sdlo_router_backend_up{backend=\"127.0.0.1:9002\"} 0
sdlo_router_backend_requests_total{backend=\"127.0.0.1:9001\"} 40
sdlo_router_backend_requests_total{backend=\"127.0.0.1:9002\"} 25
sdlo_router_backend_errors_total{backend=\"127.0.0.1:9001\"} 2
sdlo_router_backend_transport_errors_total{backend=\"127.0.0.1:9002\"} 3
sdlo_router_backend_retries_total{backend=\"127.0.0.1:9001\"} 5
sdlo_router_backend_latency_micros_sum{backend=\"127.0.0.1:9001\"} 8000
sdlo_router_backend_latency_micros_count{backend=\"127.0.0.1:9001\"} 40
sdlo_router_exhausted_requests_total 1
sdlo_router_ring_points 128
";
        let view = ServerView::from_exposition(text);
        assert_eq!(view.router_backends.len(), 2);
        let a = &view.router_backends["127.0.0.1:9001"];
        assert!(a.up);
        assert_eq!(a.requests, 40);
        assert_eq!(a.errors, 2);
        assert_eq!(a.retries, 5);
        assert_eq!(a.latency_micros_sum, 8000);
        assert_eq!(a.latency_micros_count, 40);
        let b = &view.router_backends["127.0.0.1:9002"];
        assert!(!b.up);
        assert_eq!(b.requests, 25);
        assert_eq!(b.transport_errors, 3);
        assert_eq!(view.router_exhausted, 1);

        // The rollups flow into the report JSON under server.router_backends.
        let report = LoadReport {
            config_summary: vec![
                ("clients".to_string(), Value::from(1u64)),
                ("seed".to_string(), Value::from(1u64)),
                ("mix".to_string(), Value::from("stats=1")),
            ],
            requests: 1,
            ok: 1,
            overloaded: 0,
            absorbed_overloads: 2,
            protocol_errors: 0,
            transport_errors: 0,
            wall_secs: 1.0,
            throughput_rps: 1.0,
            client_p50: 1,
            client_p99: 1,
            client_p999: 1,
            client_max: 1,
            client_mean: 1.0,
            per_op: BTreeMap::new(),
            complaints: Vec::new(),
            server: Some(view),
        };
        let json = report.to_json().render();
        assert!(
            json.contains(r#""router_backends":{"127.0.0.1:9001":{"up":true"#),
            "router rollups missing from JSON: {json}"
        );
        assert!(json.contains(r#""absorbed_overloads":2"#), "{json}");
        assert!(json.contains(r#""router_exhausted":1"#), "{json}");
    }

    #[test]
    fn plain_server_exposition_yields_no_router_section() {
        let view = ServerView::from_exposition("sdlo_rejected_requests_total 4\n");
        assert!(view.router_backends.is_empty());
        assert_eq!(view.router_exhausted, 0);
    }

    #[test]
    fn quantiles_pick_exact_ranks() {
        let sorted: Vec<u64> = (1..=1000).collect();
        assert_eq!(quantile(&sorted, 0.50), 500);
        assert_eq!(quantile(&sorted, 0.99), 990);
        assert_eq!(quantile(&sorted, 0.999), 999);
        assert_eq!(quantile(&[], 0.5), 0);
        assert_eq!(quantile(&[7], 0.999), 7);
    }

    #[test]
    fn report_carries_per_op_quantiles_in_json_and_summary() {
        let mut per_op = BTreeMap::new();
        per_op.insert(
            "predict",
            OpStats {
                sent: 10,
                ok: 9,
                p50: 120,
                p99: 900,
            },
        );
        let report = LoadReport {
            config_summary: vec![
                ("clients".to_string(), Value::from(1u64)),
                ("seed".to_string(), Value::from(1u64)),
                ("mix".to_string(), Value::from("predict=1")),
            ],
            requests: 10,
            ok: 9,
            overloaded: 1,
            absorbed_overloads: 0,
            protocol_errors: 0,
            transport_errors: 0,
            wall_secs: 1.0,
            throughput_rps: 9.0,
            client_p50: 120,
            client_p99: 900,
            client_p999: 900,
            client_max: 901,
            client_mean: 200.0,
            per_op,
            complaints: Vec::new(),
            server: None,
        };
        let json = report.to_json().render();
        assert!(
            json.contains(r#""predict":{"sent":10,"ok":9,"p50":120,"p99":900}"#),
            "per_op JSON lost its quantiles: {json}"
        );
        let text = report.summary();
        assert!(
            text.contains("predict  10 sent, 9 ok  µs: p50 120  p99 900"),
            "summary lost the per-op line:\n{text}"
        );
    }
}
