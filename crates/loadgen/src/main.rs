//! `loadgen` — hammer a tile-advisor daemon with N concurrent clients.
//!
//! ```text
//! loadgen [--clients N] [--duration 10s] [--addr HOST:PORT]
//!         [--workers N] [--queue N] [--mix SPEC] [--seed N]
//!         [--out PATH] [--min-throughput RPS] [--json]
//!         [--retry-overloaded]
//! ```
//!
//! Without `--addr` the harness spawns an in-process server (sized by
//! `--workers` / `--queue`), drives it, cross-checks client-side latencies
//! against the server's Prometheus histograms, drains it, and writes the
//! report to `results/loadtest.json`.
//!
//! Exit status is the CI gate: non-zero when any transport or protocol
//! error occurred, when the client/server counters disagree, or when
//! `--min-throughput` is not met.

use sdlo_loadgen::{run_load, LoadConfig, Mix};
use sdlo_service::{serve, RetryPolicy, ServerConfig};
use std::net::SocketAddr;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--clients N] [--duration 10s] [--addr HOST:PORT]\n\
         \x20              [--workers N] [--queue N] [--mix SPEC] [--seed N]\n\
         \x20              [--out PATH] [--min-throughput RPS] [--json]\n\
         \x20              [--retry-overloaded]\n\
         \n\
         Workload generator + latency harness for the sdlo tile-advisor\n\
         service. Spawns an in-process server unless --addr names a running\n\
         daemon. SPEC is op=weight pairs, e.g. predict=8,advise=1.\n\
         --retry-overloaded makes clients absorb `overloaded` rejections by\n\
         resending (bounded, jittered) — the mode for driving sdlo-router.\n\
         Defaults: --clients 64 --duration 3s --workers 4 --queue 128\n\
         \x20         --seed 42 --mix {} --out <repo>/results/loadtest.json",
        Mix::default_mix().spec()
    );
    std::process::exit(2);
}

fn parse_duration(s: &str) -> Option<Duration> {
    if let Some(ms) = s.strip_suffix("ms") {
        return ms.parse::<u64>().ok().map(Duration::from_millis);
    }
    if let Some(secs) = s.strip_suffix('s') {
        return secs.parse::<f64>().ok().map(Duration::from_secs_f64);
    }
    if let Some(mins) = s.strip_suffix('m') {
        return mins
            .parse::<u64>()
            .ok()
            .map(|m| Duration::from_secs(m * 60));
    }
    s.parse::<f64>().ok().map(Duration::from_secs_f64)
}

struct Args {
    clients: usize,
    duration: Duration,
    addr: Option<String>,
    workers: usize,
    queue: usize,
    mix: Mix,
    seed: u64,
    out: std::path::PathBuf,
    min_throughput: Option<f64>,
    json: bool,
    retry_overloaded: bool,
}

fn parse_args() -> Args {
    let default_out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results/loadtest.json");
    let mut args = Args {
        clients: 64,
        duration: Duration::from_secs(3),
        addr: None,
        workers: 4,
        queue: 128,
        mix: Mix::default_mix(),
        seed: 42,
        out: default_out,
        min_throughput: None,
        json: false,
        retry_overloaded: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value_of = |flag: &str| match it.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {flag} requires a value\n");
                usage();
            }
        };
        match flag.as_str() {
            "--clients" => match value_of("--clients").parse() {
                Ok(n) if n > 0 => args.clients = n,
                _ => usage(),
            },
            "--duration" => match parse_duration(&value_of("--duration")) {
                Some(d) if d > Duration::ZERO => args.duration = d,
                _ => usage(),
            },
            "--addr" => args.addr = Some(value_of("--addr")),
            "--workers" => match value_of("--workers").parse() {
                Ok(n) if n > 0 => args.workers = n,
                _ => usage(),
            },
            "--queue" => match value_of("--queue").parse() {
                Ok(n) if n > 0 => args.queue = n,
                _ => usage(),
            },
            "--mix" => match Mix::parse(&value_of("--mix")) {
                Ok(m) => args.mix = m,
                Err(e) => {
                    eprintln!("error: {e}\n");
                    usage();
                }
            },
            "--seed" => match value_of("--seed").parse() {
                Ok(n) => args.seed = n,
                _ => usage(),
            },
            "--out" => args.out = value_of("--out").into(),
            "--min-throughput" => match value_of("--min-throughput").parse() {
                Ok(f) if f >= 0.0 => args.min_throughput = Some(f),
                _ => usage(),
            },
            "--json" => args.json = true,
            "--retry-overloaded" => args.retry_overloaded = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag `{other}`\n");
                usage();
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();

    // Target: an external daemon, or an in-process server spawned for the
    // run (whose counters then cover exactly this load).
    let (addr, handle): (SocketAddr, Option<sdlo_service::ServerHandle>) = match &args.addr {
        Some(a) => match a.parse() {
            Ok(addr) => (addr, None),
            Err(_) => {
                eprintln!("error: `{a}` is not HOST:PORT");
                std::process::exit(2);
            }
        },
        None => {
            let config = ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: args.workers,
                queue: args.queue,
                ..ServerConfig::default()
            };
            match serve(config) {
                Ok(h) => (h.addr(), Some(h)),
                Err(e) => {
                    eprintln!("error: failed to spawn in-process server: {e}");
                    std::process::exit(1);
                }
            }
        }
    };
    let fresh_server = handle.is_some();

    let config = LoadConfig {
        addr,
        clients: args.clients,
        duration: args.duration,
        mix: args.mix.clone(),
        seed: args.seed,
        retry_overloaded: args.retry_overloaded.then(|| RetryPolicy {
            jitter_seed: args.seed,
            ..RetryPolicy::default()
        }),
    };
    let report = match run_load(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: load run failed: {e}");
            std::process::exit(1);
        }
    };
    if let Some(h) = handle {
        h.shutdown();
    }

    if let Some(dir) = args.out.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let json = report.to_json().render();
    if let Err(e) = std::fs::write(&args.out, format!("{json}\n")) {
        eprintln!("error: cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }

    if args.json {
        println!("{json}");
    } else {
        print!("{}", report.summary());
        println!("  report: {}", args.out.display());
    }

    // -- gates ---------------------------------------------------------------
    let mut failures: Vec<String> = Vec::new();
    if report.transport_errors > 0 {
        failures.push(format!("{} transport errors", report.transport_errors));
    }
    if report.protocol_errors > 0 {
        failures.push(format!("{} protocol errors", report.protocol_errors));
    }
    if report.ok == 0 {
        failures.push("no request succeeded".to_string());
    }
    failures.extend(report.consistency_failures(fresh_server));
    if let Some(floor) = args.min_throughput {
        if report.throughput_rps < floor {
            failures.push(format!(
                "throughput {:.0} req/s below floor {floor:.0}",
                report.throughput_rps
            ));
        }
    }
    if !failures.is_empty() {
        eprintln!("loadgen: FAILED: {}", failures.join("; "));
        std::process::exit(1);
    }
}
