//! Set-associative and direct-mapped LRU caches.
//!
//! The paper assumes a fully associative LRU cache (and uses tile copying to
//! make real caches behave like one). These concrete cache models power the
//! *ablation* experiments: how much do conflict misses distort the fully
//! associative prediction at realistic associativities?

/// Running hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
}

impl CacheStats {
    /// Hits.
    pub fn hits(&self) -> u64 {
        self.accesses - self.misses
    }

    /// Miss ratio in `[0,1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Capacities are expressed in **blocks** (cache lines); addresses are mapped
/// to blocks by the caller or via [`SetAssocCache::access_addr`] with a block
/// size in elements. `ways == total blocks` degenerates to fully associative,
/// `ways == 1` to direct-mapped.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<(u64, u64)>>, // (block id, last-used stamp)
    ways: usize,
    block_elems: u64,
    stamp: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Create a cache with `total_blocks` blocks, `ways`-way associative,
    /// `block_elems` elements per block.
    ///
    /// # Panics
    /// If `ways` is 0, `ways` does not divide `total_blocks`, or
    /// `block_elems` is 0.
    pub fn new(total_blocks: u64, ways: usize, block_elems: u64) -> Self {
        assert!(ways > 0, "ways must be positive");
        assert!(block_elems > 0, "block size must be positive");
        assert!(
            total_blocks.is_multiple_of(ways as u64),
            "ways ({ways}) must divide total blocks ({total_blocks})"
        );
        let n_sets = (total_blocks / ways as u64) as usize;
        assert!(n_sets > 0, "cache must have at least one set");
        SetAssocCache {
            sets: vec![Vec::with_capacity(ways); n_sets],
            ways,
            block_elems,
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// Direct-mapped cache.
    pub fn direct_mapped(total_blocks: u64, block_elems: u64) -> Self {
        Self::new(total_blocks, 1, block_elems)
    }

    /// Fully associative cache.
    pub fn fully_associative(total_blocks: u64, block_elems: u64) -> Self {
        Self::new(total_blocks, total_blocks as usize, block_elems)
    }

    /// Access an element address; returns `true` on hit.
    pub fn access_addr(&mut self, addr: u64) -> bool {
        self.access_block(addr / self.block_elems)
    }

    /// Access a pre-mapped block id; returns `true` on hit.
    pub fn access_block(&mut self, block: u64) -> bool {
        self.stamp += 1;
        self.stats.accesses += 1;
        let set_idx = (block % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|(b, _)| *b == block) {
            entry.1 = self.stamp;
            return true;
        }
        self.stats.misses += 1;
        if set.len() < self.ways {
            set.push((block, self.stamp));
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|(_, s)| *s)
                .expect("non-empty full set");
            *victim = (block, self.stamp);
        }
        false
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of sets.
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_associative_lru_evicts_oldest() {
        let mut c = SetAssocCache::fully_associative(2, 1);
        assert!(!c.access_addr(1));
        assert!(!c.access_addr(2));
        assert!(c.access_addr(1)); // 1 is MRU now
        assert!(!c.access_addr(3)); // evicts 2
        assert!(c.access_addr(1));
        assert!(!c.access_addr(2)); // 2 was evicted
        assert_eq!(c.stats().misses, 4);
        assert_eq!(c.stats().accesses, 6);
    }

    #[test]
    fn direct_mapped_conflicts() {
        // 4 blocks direct-mapped: addresses 0 and 4 conflict.
        let mut c = SetAssocCache::direct_mapped(4, 1);
        assert!(!c.access_addr(0));
        assert!(!c.access_addr(4));
        assert!(!c.access_addr(0)); // conflict miss despite only 2 blocks used
                                    // A 2-way cache of the same size would have hit:
        let mut c2 = SetAssocCache::new(4, 2, 1);
        assert!(!c2.access_addr(0));
        assert!(!c2.access_addr(4));
        assert!(c2.access_addr(0));
    }

    #[test]
    fn block_granularity_gives_spatial_hits() {
        let mut c = SetAssocCache::fully_associative(4, 8);
        assert!(!c.access_addr(0));
        assert!(c.access_addr(7)); // same 8-element block
        assert!(!c.access_addr(8)); // next block
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn fully_associative_matches_stack_distances() {
        // Cross-validate the two simulators on a random trace.
        let mut x = 123456789u64;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let trace: Vec<u64> = (0..2000).map(|_| rand() % 64).collect();
        for capacity in [1u64, 4, 16, 64] {
            let mut cache = SetAssocCache::fully_associative(capacity, 1);
            let mut engine = crate::StackDistanceEngine::with_dense_addresses(64);
            for &a in &trace {
                cache.access_addr(a);
                engine.access(a);
            }
            assert_eq!(
                cache.stats().misses,
                engine.histogram().misses(capacity),
                "capacity {capacity}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "ways")]
    fn rejects_non_dividing_ways() {
        let _ = SetAssocCache::new(10, 3, 1);
    }
}
