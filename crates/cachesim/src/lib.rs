//! # sdlo-cachesim
//!
//! Trace-driven cache simulation substrate, standing in for the paper's use
//! of SimpleScalar's `sim-cache`.
//!
//! Two complementary simulators:
//!
//! * [`StackDistanceEngine`] — exact LRU stack distances via an
//!   order-statistic treap; one pass over the trace yields miss counts for
//!   **every** fully associative capacity ([`StackDistHistogram::misses`]).
//!   This is the ground truth the paper's analytical model is validated
//!   against (Tables 2–3).
//! * [`SetAssocCache`] — concrete set-associative / direct-mapped LRU caches
//!   for conflict-miss ablations (the paper sidesteps conflicts by copying
//!   tiles; we can quantify what that buys).
//!
//! The `simulate_*` helpers drive either simulator from a compiled
//! [`sdlo_ir`] program without materializing the trace.

mod cache;
mod fenwick;
mod lru;
mod treap;

pub use cache::{CacheStats, SetAssocCache};
pub use fenwick::Fenwick;
pub use lru::{Distance, StackDistHistogram, StackDistanceEngine};
pub use treap::Treap;

use sdlo_ir::CompiledProgram;

/// Address granularity for stack-distance simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// One block per array element (the paper's accounting: arrays of
    /// `f64`, one element per cache block).
    Element,
    /// Cache lines of `n` elements (spatial locality).
    Line(u64),
}

impl Granularity {
    #[inline]
    fn map(self, addr: u64) -> u64 {
        match self {
            Granularity::Element => addr,
            Granularity::Line(n) => addr / n,
        }
    }

    fn blocks(self, elements: u64) -> u64 {
        match self {
            Granularity::Element => elements,
            Granularity::Line(n) => elements.div_ceil(n),
        }
    }
}

/// Run the exact LRU stack-distance simulation over a compiled program's
/// reference trace and return the stack-distance histogram.
pub fn simulate_stack_distances(
    program: &CompiledProgram,
    granularity: Granularity,
) -> StackDistHistogram {
    let span = sdlo_trace::span("cachesim.replay");
    span.attr("mode", "stack_distance");
    let blocks = granularity.blocks(program.total_elements());
    let mut engine = StackDistanceEngine::with_dense_addresses(blocks);
    program.walk(&mut |a| {
        engine.access(granularity.map(a.addr));
    });
    span.add("accesses", program.total_accesses());
    span.add("blocks", blocks);
    engine.into_histogram()
}

/// Misses of a fully associative LRU cache of `capacity_blocks` over the
/// program's trace (single capacity; use [`simulate_stack_distances`] to
/// query many capacities at once).
pub fn simulate_fully_associative(
    program: &CompiledProgram,
    capacity_blocks: u64,
    granularity: Granularity,
) -> u64 {
    simulate_stack_distances(program, granularity).misses(capacity_blocks)
}

/// Drive a concrete cache model over the program's trace.
pub fn simulate_cache(program: &CompiledProgram, cache: &mut SetAssocCache) -> CacheStats {
    let span = sdlo_trace::span("cachesim.replay");
    span.attr("mode", "set_assoc");
    program.walk(&mut |a| {
        cache.access_addr(a.addr);
    });
    span.add("accesses", program.total_accesses());
    cache.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdlo_ir::{programs, Bindings};

    fn square(n: i128) -> Bindings {
        Bindings::new().with("Ni", n).with("Nj", n).with("Nk", n)
    }

    #[test]
    fn matmul_whole_problem_fits_in_cache() {
        let p = programs::matmul();
        let c = CompiledProgram::compile(&p, &square(8)).unwrap();
        let h = simulate_stack_distances(&c, Granularity::Element);
        // With capacity ≥ total footprint, only cold misses remain: 3·N².
        assert_eq!(h.misses(c.total_elements()), 3 * 64);
        assert_eq!(h.total(), c.total_accesses());
    }

    #[test]
    fn matmul_miss_counts_make_sense() {
        let n = 16u64;
        let p = programs::matmul();
        let c = CompiledProgram::compile(&p, &square(n as i128)).unwrap();
        let h = simulate_stack_distances(&c, Granularity::Element);
        // Tiny cache: nearly every access misses except short-distance reuse.
        let tiny = h.misses(2);
        assert!(tiny > n * n * n, "tiny-cache misses {tiny}");
        // Huge cache: cold misses only.
        assert_eq!(h.misses(u64::MAX), h.cold);
        assert_eq!(h.cold, 3 * n * n);
    }

    #[test]
    fn line_granularity_reduces_misses() {
        let p = programs::matmul();
        let c = CompiledProgram::compile(&p, &square(16)).unwrap();
        let he = simulate_stack_distances(&c, Granularity::Element);
        let hl = simulate_stack_distances(&c, Granularity::Line(8));
        assert!(hl.cold < he.cold);
    }

    #[test]
    fn concrete_fa_cache_agrees_with_histogram() {
        let p = programs::matmul();
        let c = CompiledProgram::compile(&p, &square(6)).unwrap();
        let h = simulate_stack_distances(&c, Granularity::Element);
        for capacity in [4u64, 16, 64] {
            let mut cache = SetAssocCache::fully_associative(capacity, 1);
            let stats = simulate_cache(&c, &mut cache);
            assert_eq!(stats.misses, h.misses(capacity), "capacity {capacity}");
        }
    }
}
