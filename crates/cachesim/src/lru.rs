//! Exact LRU stack-distance simulation.
//!
//! For a fully associative cache with LRU replacement, an access **hits** in
//! a cache of capacity `C` blocks iff its stack distance — the number of
//! *distinct* blocks touched since the previous access to the same block —
//! is `< C`. Simulating stack distances once therefore yields exact miss
//! counts for *every* capacity at the same time, which is how the paper's
//! "actual misses" columns (SimpleScalar `sim-cache`, fully associative) are
//! reproduced here.
//!
//! ## Algorithm
//!
//! Bennett–Kruskal with slot compaction: every access is assigned a
//! monotonically increasing *slot*; a Fenwick tree marks the slots that are
//! the most recent access of some block. The stack distance of a reuse whose
//! previous access sits in slot `s₀` is the number of marked slots after
//! `s₀`, i.e. `active − prefix_sum(s₀)` — one `O(log S)` query. When the
//! slot array fills, live slots are compacted to the front; the array is kept
//! at least twice the number of live blocks, so compaction is amortized
//! `O(1)` per access. This is ~20× faster than a balanced-tree
//! implementation (see [`Treap`](crate::Treap), kept as the
//! reference/oracle).

use crate::fenwick::Fenwick;

/// Result of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distance {
    /// First-ever access to the block (infinite stack distance — always a
    /// miss; the paper writes ∞).
    Cold,
    /// Reuse with the given exclusive stack distance.
    Finite(u64),
}

const NO_SLOT: u32 = u32::MAX;

/// `block → slot` bookkeeping: dense table when the address space is compact
/// (our traces lay arrays out back-to-back, so it always is), hash map
/// otherwise.
#[derive(Debug, Clone)]
enum LastSlot {
    Dense(Vec<u32>),
    Sparse(std::collections::HashMap<u64, u32>),
}

impl LastSlot {
    #[inline]
    fn get(&self, addr: u64) -> u32 {
        match self {
            LastSlot::Dense(v) => v[addr as usize],
            LastSlot::Sparse(m) => m.get(&addr).copied().unwrap_or(NO_SLOT),
        }
    }

    #[inline]
    fn set(&mut self, addr: u64, slot: u32) {
        match self {
            LastSlot::Dense(v) => v[addr as usize] = slot,
            LastSlot::Sparse(m) => {
                m.insert(addr, slot);
            }
        }
    }
}

/// Histogram of stack distances, queryable for miss counts at any capacity.
#[derive(Debug, Clone, Default)]
pub struct StackDistHistogram {
    /// Cold (compulsory) accesses.
    pub cold: u64,
    /// `counts[d]` = number of reuses at exact distance `d`.
    counts: Vec<u64>,
    total: u64,
}

impl StackDistHistogram {
    /// Record one access.
    #[inline]
    pub fn record(&mut self, d: Distance) {
        self.total += 1;
        match d {
            Distance::Cold => self.cold += 1,
            Distance::Finite(x) => {
                let i = x as usize;
                if i >= self.counts.len() {
                    self.counts.resize(i + 1, 0);
                }
                self.counts[i] += 1;
            }
        }
    }

    /// Total number of accesses recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Misses of a fully associative LRU cache with `capacity` blocks:
    /// cold accesses plus reuses at distance ≥ capacity.
    pub fn misses(&self, capacity: u64) -> u64 {
        let from = (capacity as usize).min(self.counts.len());
        self.cold + self.counts[from..].iter().sum::<u64>()
    }

    /// Hits at the given capacity.
    pub fn hits(&self, capacity: u64) -> u64 {
        self.total - self.misses(capacity)
    }

    /// Miss ratio at the given capacity.
    pub fn miss_ratio(&self, capacity: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.misses(capacity) as f64 / self.total as f64
        }
    }

    /// Iterate `(distance, count)` pairs with nonzero counts in increasing
    /// distance order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c != 0)
            .map(|(d, c)| (d as u64, *c))
    }

    /// Largest finite distance observed, if any reuse occurred.
    pub fn max_distance(&self) -> Option<u64> {
        self.counts.iter().rposition(|c| *c != 0).map(|d| d as u64)
    }

    /// The capacities at which the miss count changes — i.e. every distinct
    /// observed distance `d` (capacity `d+1` hits what capacity `d` missed).
    pub fn knee_capacities(&self) -> Vec<u64> {
        self.iter().map(|(d, _)| d + 1).collect()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &StackDistHistogram) {
        self.cold += other.cold;
        self.total += other.total;
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (d, c) in other.counts.iter().enumerate() {
            self.counts[d] += c;
        }
    }
}

/// Exact LRU stack-distance engine.
///
/// ```
/// use sdlo_cachesim::{Distance, StackDistanceEngine};
/// let mut e = StackDistanceEngine::new();
/// assert_eq!(e.access(10), Distance::Cold);
/// assert_eq!(e.access(20), Distance::Cold);
/// assert_eq!(e.access(10), Distance::Finite(1)); // one distinct block (20) in between
/// ```
#[derive(Debug, Clone)]
pub struct StackDistanceEngine {
    last: LastSlot,
    /// slot → block address, for compaction.
    slot_addr: Vec<u64>,
    fenwick: Fenwick,
    next_slot: usize,
    active: u64,
    hist: StackDistHistogram,
}

const INITIAL_SLOTS: usize = 1 << 12;

impl Default for StackDistanceEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl StackDistanceEngine {
    /// Engine with hash-map address bookkeeping (arbitrary `u64` addresses).
    pub fn new() -> Self {
        Self::with_last(LastSlot::Sparse(std::collections::HashMap::new()))
    }

    /// Engine with a dense last-access table for addresses in
    /// `0..address_space`; noticeably faster for long traces.
    pub fn with_dense_addresses(address_space: u64) -> Self {
        Self::with_last(LastSlot::Dense(vec![NO_SLOT; address_space as usize]))
    }

    fn with_last(last: LastSlot) -> Self {
        StackDistanceEngine {
            last,
            slot_addr: vec![0; INITIAL_SLOTS],
            fenwick: Fenwick::new(INITIAL_SLOTS),
            next_slot: 0,
            active: 0,
            hist: StackDistHistogram::default(),
        }
    }

    /// Process one access and return its stack distance.
    #[inline]
    pub fn access(&mut self, addr: u64) -> Distance {
        let s0 = self.last.get(addr);
        let d = if s0 == NO_SLOT {
            Distance::Cold
        } else {
            // `prefix_sum(s0)` still counts s0's own mark, so
            // `active - below` is exactly the number of distinct blocks
            // accessed strictly after s0.
            let below = self.fenwick.prefix_sum(s0 as usize);
            self.fenwick.add(s0 as usize, -1);
            self.last.set(addr, NO_SLOT);
            self.active -= 1;
            Distance::Finite(self.active + 1 - below)
        };
        if self.next_slot == self.slot_addr.len() {
            self.compact();
        }
        let s = self.next_slot;
        self.next_slot += 1;
        self.fenwick.add(s, 1);
        self.slot_addr[s] = addr;
        self.last.set(addr, s as u32);
        self.active += 1;
        self.hist.record(d);
        d
    }

    /// Move live slots to the front, growing capacity if more than half the
    /// slots are live (keeps compaction amortized O(1) per access).
    fn compact(&mut self) {
        let live: Vec<u64> = (0..self.next_slot)
            .filter(|&s| {
                let addr = self.slot_addr[s];
                self.last.get(addr) == s as u32
            })
            .map(|s| self.slot_addr[s])
            .collect();
        debug_assert_eq!(live.len() as u64, self.active);
        let mut capacity = self.slot_addr.len();
        while live.len() * 2 > capacity {
            capacity *= 2;
        }
        self.slot_addr = vec![0; capacity];
        self.fenwick = Fenwick::new(capacity);
        for (s, &addr) in live.iter().enumerate() {
            self.slot_addr[s] = addr;
            self.last.set(addr, s as u32);
            self.fenwick.add(s, 1);
        }
        self.next_slot = live.len();
    }

    /// Number of distinct blocks seen so far.
    pub fn distinct_blocks(&self) -> u64 {
        self.active
    }

    /// The accumulated histogram.
    pub fn histogram(&self) -> &StackDistHistogram {
        &self.hist
    }

    /// Consume the engine, returning the histogram.
    pub fn into_histogram(self) -> StackDistHistogram {
        self.hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(n²) stack distance for validation.
    fn naive(trace: &[u64]) -> Vec<Distance> {
        let mut out = Vec::new();
        for (i, &a) in trace.iter().enumerate() {
            let prev = trace[..i].iter().rposition(|&x| x == a);
            match prev {
                None => out.push(Distance::Cold),
                Some(p) => {
                    let distinct: std::collections::BTreeSet<u64> =
                        trace[p + 1..i].iter().copied().collect();
                    out.push(Distance::Finite(distinct.len() as u64));
                }
            }
        }
        out
    }

    #[test]
    fn simple_reuse_pattern() {
        let mut e = StackDistanceEngine::new();
        assert_eq!(e.access(1), Distance::Cold);
        assert_eq!(e.access(2), Distance::Cold);
        assert_eq!(e.access(3), Distance::Cold);
        assert_eq!(e.access(1), Distance::Finite(2));
        assert_eq!(e.access(1), Distance::Finite(0));
        assert_eq!(e.access(2), Distance::Finite(2));
    }

    #[test]
    fn dense_and_sparse_agree_with_naive() {
        let mut x = 0xDEADBEEFu64;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let trace: Vec<u64> = (0..600).map(|_| rand() % 40).collect();
        let expect = naive(&trace);
        let mut dense = StackDistanceEngine::with_dense_addresses(40);
        let mut sparse = StackDistanceEngine::new();
        for (i, &a) in trace.iter().enumerate() {
            assert_eq!(dense.access(a), expect[i], "dense @{i}");
            assert_eq!(sparse.access(a), expect[i], "sparse @{i}");
        }
    }

    #[test]
    fn agrees_with_treap_reference_through_compactions() {
        // Enough accesses over enough blocks to force several compactions
        // (INITIAL_SLOTS is 4096).
        let mut x = 42u64;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut engine = StackDistanceEngine::new();
        // Treap-based reference implementation.
        let mut tree = crate::Treap::new();
        let mut last = std::collections::HashMap::new();
        for t in 0..40_000u64 {
            let addr = rand() % 3000;
            let expected = match last.get(&addr) {
                None => Distance::Cold,
                Some(&t0) => {
                    let d = tree.count_greater(t0);
                    tree.remove(t0);
                    Distance::Finite(d)
                }
            };
            tree.insert(t);
            last.insert(addr, t);
            assert_eq!(engine.access(addr), expected, "access {t}");
        }
    }

    #[test]
    fn histogram_miss_counts() {
        let mut e = StackDistanceEngine::new();
        // Cyclic scan of 4 blocks, 3 rounds: every reuse has distance 3.
        for _ in 0..3 {
            for a in 0..4 {
                e.access(a);
            }
        }
        let h = e.histogram();
        assert_eq!(h.total(), 12);
        assert_eq!(h.cold, 4);
        assert_eq!(h.misses(4), 4);
        assert_eq!(h.misses(3), 12);
        assert_eq!(h.hits(4), 8);
        assert!((h.miss_ratio(4) - 4.0 / 12.0).abs() < 1e-12);
        assert_eq!(h.max_distance(), Some(3));
        assert_eq!(h.knee_capacities(), vec![4]);
    }

    #[test]
    fn misses_monotone_in_capacity() {
        let mut e = StackDistanceEngine::new();
        let trace: Vec<u64> = (0..500u64).map(|i| (i * i) % 37).collect();
        for &a in &trace {
            e.access(a);
        }
        let h = e.histogram();
        let mut prev = u64::MAX;
        for c in 0..40 {
            let m = h.misses(c);
            assert!(m <= prev);
            prev = m;
        }
        assert_eq!(h.misses(u64::MAX), h.cold);
    }

    #[test]
    fn merge_histograms() {
        let mut a = StackDistHistogram::default();
        let mut b = StackDistHistogram::default();
        a.record(Distance::Cold);
        a.record(Distance::Finite(2));
        b.record(Distance::Finite(2));
        b.record(Distance::Finite(5));
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.misses(3), 2); // cold + the distance-5 reuse
        assert_eq!(a.misses(1), 4);
    }
}
