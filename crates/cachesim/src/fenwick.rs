//! Fenwick (binary indexed) tree over `u32` counters, used by the fast
//! stack-distance engine to count distinct blocks between two access times.

/// A Fenwick tree supporting point add and prefix-sum queries in `O(log n)`.
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    /// A tree over indices `0..n`, all zero.
    pub fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Capacity (number of indices).
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Whether the tree has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Add `delta` at `index`.
    #[inline]
    pub fn add(&mut self, index: usize, delta: i32) {
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u32);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of values at indices `0..=index`.
    #[inline]
    pub fn prefix_sum(&self, index: usize) -> u64 {
        let mut i = (index + 1).min(self.tree.len() - 1);
        let mut acc = 0u64;
        while i > 0 {
            acc += self.tree[i] as u64;
            i -= i & i.wrapping_neg();
        }
        acc
    }

    /// Sum over the half-open range `(lo, hi)` exclusive of both endpoints,
    /// i.e. indices `lo+1 ..= hi-1`.
    #[inline]
    pub fn sum_between_exclusive(&self, lo: usize, hi: usize) -> u64 {
        if hi <= lo + 1 {
            return 0;
        }
        self.prefix_sum(hi - 1) - self.prefix_sum(lo)
    }

    /// Reset all counters to zero, keeping capacity.
    pub fn clear(&mut self) {
        self.tree.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sums() {
        let mut f = Fenwick::new(10);
        f.add(0, 1);
        f.add(4, 2);
        f.add(9, 3);
        assert_eq!(f.prefix_sum(0), 1);
        assert_eq!(f.prefix_sum(3), 1);
        assert_eq!(f.prefix_sum(4), 3);
        assert_eq!(f.prefix_sum(9), 6);
    }

    #[test]
    fn range_between_exclusive() {
        let mut f = Fenwick::new(8);
        for i in 0..8 {
            f.add(i, 1);
        }
        // Between slots 2 and 6 exclusive: slots 3,4,5.
        assert_eq!(f.sum_between_exclusive(2, 6), 3);
        assert_eq!(f.sum_between_exclusive(2, 3), 0);
        assert_eq!(f.sum_between_exclusive(0, 7), 6);
    }

    #[test]
    fn add_and_remove() {
        let mut f = Fenwick::new(16);
        f.add(5, 1);
        f.add(7, 1);
        f.add(5, -1);
        assert_eq!(f.prefix_sum(15), 1);
    }
}
