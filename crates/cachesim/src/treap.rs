//! Arena-backed order-statistic treap over `u64` keys.
//!
//! This is the engine behind exact LRU stack-distance computation
//! (Bennett–Kruskal style): the tree holds the *last access time* of every
//! currently-tracked address, and the stack distance of a reuse is the number
//! of keys greater than the previous access time. All three operations —
//! insert (always a new maximum in our usage, but general keys are
//! supported), remove-by-key, and `count_greater` — are `O(log n)`.
//!
//! Nodes live in a `Vec` arena with an intrusive free list: no per-node
//! allocation, and the arena never exceeds the number of simultaneously
//! tracked addresses (one node per distinct address).

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    key: u64,
    priority: u64,
    left: u32,
    right: u32,
    /// Subtree size, including this node.
    size: u32,
}

/// Order-statistic treap. See module docs.
#[derive(Debug, Clone)]
pub struct Treap {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    rng: u64,
}

impl Default for Treap {
    fn default() -> Self {
        Self::new()
    }
}

impl Treap {
    /// An empty treap.
    pub fn new() -> Self {
        Treap {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Pre-allocate room for `n` simultaneous keys.
    pub fn with_capacity(n: usize) -> Self {
        let mut t = Self::new();
        t.nodes.reserve(n);
        t
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        if self.root == NIL {
            0
        } else {
            self.nodes[self.root as usize].size as usize
        }
    }

    /// Whether the treap is empty.
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    fn next_priority(&mut self) -> u64 {
        // xorshift64* — cheap, good enough for treap balance.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn alloc(&mut self, key: u64) -> u32 {
        let priority = self.next_priority();
        let node = Node {
            key,
            priority,
            left: NIL,
            right: NIL,
            size: 1,
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    #[inline]
    fn size(&self, n: u32) -> u32 {
        if n == NIL {
            0
        } else {
            self.nodes[n as usize].size
        }
    }

    #[inline]
    fn update(&mut self, n: u32) {
        let (l, r) = (self.nodes[n as usize].left, self.nodes[n as usize].right);
        self.nodes[n as usize].size = 1 + self.size(l) + self.size(r);
    }

    /// Merge two treaps where every key of `a` is smaller than every key of `b`.
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].priority > self.nodes[b as usize].priority {
            let ar = self.nodes[a as usize].right;
            let m = self.merge(ar, b);
            self.nodes[a as usize].right = m;
            self.update(a);
            a
        } else {
            let bl = self.nodes[b as usize].left;
            let m = self.merge(a, bl);
            self.nodes[b as usize].left = m;
            self.update(b);
            b
        }
    }

    /// Split into `(keys ≤ key, keys > key)`.
    fn split(&mut self, n: u32, key: u64) -> (u32, u32) {
        if n == NIL {
            return (NIL, NIL);
        }
        if self.nodes[n as usize].key <= key {
            let r = self.nodes[n as usize].right;
            let (a, b) = self.split(r, key);
            self.nodes[n as usize].right = a;
            self.update(n);
            (n, b)
        } else {
            let l = self.nodes[n as usize].left;
            let (a, b) = self.split(l, key);
            self.nodes[n as usize].left = b;
            self.update(n);
            (a, n)
        }
    }

    /// Insert `key` (must not already be present).
    pub fn insert(&mut self, key: u64) {
        debug_assert!(!self.contains(key), "duplicate key {key}");
        let node = self.alloc(key);
        // Fast path: strictly increasing keys append at the far right.
        if self.root == NIL {
            self.root = node;
            return;
        }
        let (a, b) = self.split(self.root, key);
        let ab = self.merge(a, node);
        self.root = self.merge(ab, b);
    }

    /// Remove `key`; returns whether it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        fn rec(t: &mut Treap, n: u32, key: u64, removed: &mut Option<u32>) -> u32 {
            if n == NIL {
                return NIL;
            }
            let nk = t.nodes[n as usize].key;
            if nk == key {
                *removed = Some(n);
                let (l, r) = (t.nodes[n as usize].left, t.nodes[n as usize].right);
                return t.merge(l, r);
            }
            if key < nk {
                let l = t.nodes[n as usize].left;
                let nl = rec(t, l, key, removed);
                t.nodes[n as usize].left = nl;
            } else {
                let r = t.nodes[n as usize].right;
                let nr = rec(t, r, key, removed);
                t.nodes[n as usize].right = nr;
            }
            t.update(n);
            n
        }
        let mut removed = None;
        self.root = rec(self, self.root, key, &mut removed);
        if let Some(i) = removed {
            self.free.push(i);
            true
        } else {
            false
        }
    }

    /// Number of stored keys strictly greater than `key`.
    pub fn count_greater(&self, key: u64) -> u64 {
        let mut n = self.root;
        let mut acc = 0u64;
        while n != NIL {
            let node = &self.nodes[n as usize];
            if node.key <= key {
                n = node.right;
            } else {
                acc += 1 + self.size(node.right) as u64;
                n = node.left;
            }
        }
        acc
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        let mut n = self.root;
        while n != NIL {
            let node = &self.nodes[n as usize];
            if node.key == key {
                return true;
            }
            n = if key < node.key {
                node.left
            } else {
                node.right
            };
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_count() {
        let mut t = Treap::new();
        for k in [5u64, 1, 9, 3, 7] {
            t.insert(k);
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.count_greater(0), 5);
        assert_eq!(t.count_greater(5), 2);
        assert_eq!(t.count_greater(9), 0);
        assert!(t.remove(5));
        assert!(!t.remove(5));
        assert_eq!(t.len(), 4);
        assert_eq!(t.count_greater(4), 2);
    }

    #[test]
    fn arena_reuses_freed_nodes() {
        let mut t = Treap::new();
        for k in 0..100u64 {
            t.insert(k);
        }
        for k in 0..50u64 {
            assert!(t.remove(k));
        }
        let arena_before = t.nodes.len();
        for k in 100..150u64 {
            t.insert(k);
        }
        assert_eq!(t.nodes.len(), arena_before, "free list must be reused");
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn matches_naive_on_random_ops() {
        let mut t = Treap::new();
        let mut reference: Vec<u64> = Vec::new();
        let mut x = 88172645463325252u64;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for step in 0..2000 {
            let op = rand() % 3;
            match op {
                0 => {
                    let k = rand() % 500;
                    if !reference.contains(&k) {
                        reference.push(k);
                        t.insert(k);
                    }
                }
                1 => {
                    if !reference.is_empty() {
                        let i = (rand() as usize) % reference.len();
                        let k = reference.swap_remove(i);
                        assert!(t.remove(k));
                    }
                }
                _ => {
                    let k = rand() % 500;
                    let expected = reference.iter().filter(|&&x| x > k).count() as u64;
                    assert_eq!(t.count_greater(k), expected, "step {step}");
                }
            }
            assert_eq!(t.len(), reference.len());
        }
    }
}
