//! Simulate the tiled two-index transform for one configuration.
//!
//! ```text
//! cargo run --release -p sdlo-cachesim --example probe2ix -- N Ti Tj Tm Tn CS
//! ```

use sdlo_cachesim::{simulate_stack_distances, Granularity};
use sdlo_ir::{programs, Bindings, CompiledProgram};

fn main() {
    let a: Vec<i128> = std::env::args()
        .skip(1)
        .map(|s| s.parse().expect("numeric argument"))
        .collect();
    assert_eq!(a.len(), 6, "usage: probe2ix N Ti Tj Tm Tn CS");
    let (n, ti, tj, tm, tn, cs) = (a[0], a[1], a[2], a[3], a[4], a[5] as u64);
    let b = Bindings::new()
        .with("Ni", n)
        .with("Nj", n)
        .with("Nm", n)
        .with("Nn", n)
        .with("Ti", ti)
        .with("Tj", tj)
        .with("Tm", tm)
        .with("Tn", tn);
    let c = CompiledProgram::compile(&programs::tiled_two_index(), &b).unwrap();
    let h = simulate_stack_distances(&c, Granularity::Element);
    println!(
        "Ti={ti} Tj={tj} Tm={tm} Tn={tn} CS={cs}: accesses={} misses={}",
        h.total(),
        h.misses(cs)
    );
}
