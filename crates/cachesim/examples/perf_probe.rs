//! Throughput probe for the stack-distance engine on the tiled matrix
//! multiplication trace.
//!
//! ```text
//! cargo run --release -p sdlo-cachesim --example perf_probe [N Ti Tj Tk CS]
//! ```

use sdlo_cachesim::{simulate_stack_distances, Granularity};
use sdlo_ir::{programs, Bindings, CompiledProgram};

fn main() {
    let args: Vec<i128> = std::env::args()
        .skip(1)
        .map(|s| s.parse().expect("numeric argument"))
        .collect();
    let n = args.first().copied().unwrap_or(256);
    let ti = args.get(1).copied().unwrap_or(64);
    let tj = args.get(2).copied().unwrap_or(64);
    let tk = args.get(3).copied().unwrap_or(64);
    let cs = args.get(4).copied().unwrap_or(8192) as u64;
    let b = Bindings::new()
        .with("Ni", n)
        .with("Nj", n)
        .with("Nk", n)
        .with("Ti", ti)
        .with("Tj", tj)
        .with("Tk", tk);
    let c = CompiledProgram::compile(&programs::tiled_matmul(), &b).unwrap();
    let t0 = std::time::Instant::now();
    let h = simulate_stack_distances(&c, Granularity::Element);
    let dt = t0.elapsed();
    println!(
        "N={n} tiles=({ti},{tj},{tk}): {} accesses, misses({cs})={}, cold={}, {:.2?} ({:.1} M acc/s)",
        h.total(),
        h.misses(cs),
        h.cold,
        dt,
        h.total() as f64 / dt.as_secs_f64() / 1e6
    );
}
