//! Property tests for `sdlo_ir::canon`: canonicalization must be *sound* —
//! scrambling everything it claims to normalize (loop index names, array
//! declaration order, array names, labels, the program name) must not change
//! the canonical program or its structural hash.

use proptest::prelude::*;
use sdlo_ir::canon::canonicalize;
use sdlo_ir::{ArrayId, ArrayRef, DimExpr, Expr, Node, Program, Stmt, StmtId, StmtKind, Sym};

/// Tiny splitmix-style generator so program shape is a pure function of the
/// proptest-provided seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.next().is_multiple_of(one_in)
    }
}

/// Build a random valid imperfectly nested program: 1–3 two-dimensional
/// arrays, a loop tree of depth ≥ 2 with optional sibling subtrees, and
/// statements whose subscripts use enclosing loop indices with stride 1 or a
/// symbolic tile stride `T`.
fn random_program(seed: u64) -> Program {
    let mut rng = Lcg(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut p = Program::new("random");
    let n_arrays = 1 + rng.pick(3);
    for a in 0..n_arrays {
        p.declare(format!("Arr{a}"), vec![Expr::var("N"), Expr::var("M")]);
    }

    struct Gen {
        next_stmt: usize,
        next_loop: usize,
        n_arrays: usize,
    }

    impl Gen {
        fn stmt(&mut self, rng: &mut Lcg, enclosing: &[Sym]) -> Node {
            let dim = |rng: &mut Lcg| {
                let idx = enclosing[rng.pick(enclosing.len())].clone();
                let stride = if rng.chance(3) {
                    Expr::var("T")
                } else {
                    Expr::one()
                };
                DimExpr {
                    parts: vec![(idx, stride)],
                }
            };
            let aref = |rng: &mut Lcg, write: bool| ArrayRef {
                array: ArrayId(rng.pick(self.n_arrays)),
                dims: vec![dim(rng), dim(rng)],
                is_write: write,
            };
            let (kind, refs) = if rng.chance(2) {
                (StmtKind::ZeroLhs, vec![aref(&mut *rng, true)])
            } else {
                (
                    StmtKind::Assign,
                    vec![aref(&mut *rng, true), aref(&mut *rng, false)],
                )
            };
            let id = StmtId(self.next_stmt);
            self.next_stmt += 1;
            Node::Stmt(Stmt {
                id,
                label: format!("s{}", id.0),
                refs,
                kind,
            })
        }

        fn looped(&mut self, rng: &mut Lcg, enclosing: &mut Vec<Sym>, depth: usize) -> Node {
            let index = Sym::new(format!("l{}", self.next_loop));
            self.next_loop += 1;
            let bound = match rng.pick(3) {
                0 => Expr::var("N"),
                1 => Expr::var("M"),
                _ => Expr::var("N").ceil_div(&Expr::var("T")),
            };
            enclosing.push(index.clone());
            let mut body = Vec::new();
            let children = 1 + rng.pick(2);
            for _ in 0..children {
                if depth < 3 && rng.chance(2) {
                    let child = self.looped(rng, enclosing, depth + 1);
                    body.push(child);
                } else if enclosing.len() >= 2 {
                    body.push(self.stmt(rng, enclosing));
                } else {
                    let child = self.looped(rng, enclosing, depth + 1);
                    body.push(child);
                }
            }
            enclosing.pop();
            Node::Loop(sdlo_ir::LoopNode { index, bound, body })
        }
    }

    let mut gen = Gen {
        next_stmt: 0,
        next_loop: 0,
        n_arrays,
    };
    let mut enclosing = Vec::new();
    p.root = vec![gen.looped(&mut rng, &mut enclosing, 0)];
    if rng.chance(2) {
        let sibling = gen.looped(&mut rng, &mut enclosing, 0);
        p.root.push(sibling);
    }
    assert_eq!(p.validate(), Ok(()), "generator must build valid programs");
    p
}

/// Apply every transformation canonicalization claims to erase: scoped loop
/// renames with fresh names, a random permutation of the array declarations
/// (with references remapped), new array names, garbled labels and name.
fn scramble(p: &Program, seed: u64) -> Program {
    let mut rng = Lcg(seed ^ 0xdead_beef_cafe_f00d);
    let mut q = p.clone();
    q.name = "scrambled".into();

    // Permute array declarations.
    let n = q.arrays.len();
    let mut perm: Vec<usize> = (0..n).collect(); // perm[old] = new
    for i in (1..n).rev() {
        perm.swap(i, rng.pick(i + 1));
    }
    let mut decls = vec![None; n];
    for (old, a) in q.arrays.iter().enumerate() {
        let mut d = a.clone();
        d.id = ArrayId(perm[old]);
        d.name = Sym::new(format!("X{}", perm[old]));
        decls[perm[old]] = Some(d);
    }
    q.arrays = decls.into_iter().map(|d| d.unwrap()).collect();

    // Scoped loop renames + reference remap.
    fn walk(n: &mut Node, scope: &mut Vec<(Sym, Sym)>, perm: &[usize], fresh: &mut usize) {
        match n {
            Node::Loop(l) => {
                let new = Sym::new(format!("z{fresh}"));
                *fresh += 1;
                scope.push((l.index.clone(), new.clone()));
                l.index = new;
                for c in &mut l.body {
                    walk(c, scope, perm, fresh);
                }
                scope.pop();
            }
            Node::Stmt(s) => {
                s.label = "scrambled".into();
                for r in &mut s.refs {
                    r.array = ArrayId(perm[r.array.0]);
                    for d in &mut r.dims {
                        for (idx, _) in &mut d.parts {
                            if let Some((_, new)) = scope.iter().rev().find(|(orig, _)| orig == idx)
                            {
                                *idx = new.clone();
                            }
                        }
                    }
                }
            }
        }
    }
    let mut scope = Vec::new();
    let mut fresh = 0;
    for node in &mut q.root {
        walk(node, &mut scope, &perm, &mut fresh);
    }
    assert_eq!(q.validate(), Ok(()), "scramble must preserve validity");
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The tentpole soundness property: canonicalization erases exactly the
    /// diagnostic choices, so scrambled variants share the canonical program
    /// and the stable hash.
    #[test]
    fn scrambled_programs_canonicalize_identically(
        seed in 0u64..u64::MAX,
        scramble_seed in 0u64..u64::MAX,
    ) {
        let p = random_program(seed);
        let q = scramble(&p, scramble_seed);
        let cp = canonicalize(&p);
        let cq = canonicalize(&q);
        prop_assert_eq!(cp.hash, cq.hash);
        prop_assert_eq!(&cp.program, &cq.program);
        // The correspondence maps back to each input's own ids.
        prop_assert_eq!(cp.array_map.len(), p.arrays.len());
        prop_assert_eq!(cq.array_map.len(), q.arrays.len());
    }

    /// Canonical forms are fixed points: canonicalizing again changes nothing.
    #[test]
    fn canonicalization_is_idempotent(seed in 0u64..u64::MAX) {
        let p = random_program(seed);
        let c1 = canonicalize(&p);
        let c2 = canonicalize(&c1.program);
        prop_assert_eq!(&c1.program, &c2.program);
        prop_assert_eq!(c1.hash, c2.hash);
        prop_assert_eq!(c1.program.validate(), Ok(()));
    }
}
