//! Property tests for `sdlo_ir::canon`: canonicalization must be *sound* —
//! scrambling everything it claims to normalize (loop index names, array
//! declaration order, array names, labels, the program name) must not change
//! the canonical program or its structural hash.

use proptest::prelude::*;
use sdlo_ir::canon::canonicalize;
use sdlo_ir::{ArrayId, ArrayRef, DimExpr, Expr, Node, Program, Stmt, StmtId, StmtKind, Sym};

/// Tiny splitmix-style generator so program shape is a pure function of the
/// proptest-provided seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.next().is_multiple_of(one_in)
    }
}

/// Build a random valid imperfectly nested program: 1–3 two-dimensional
/// arrays, a loop tree of depth ≥ 2 with optional sibling subtrees, and
/// statements whose subscripts use enclosing loop indices with stride 1 or a
/// symbolic tile stride `T`.
fn random_program(seed: u64) -> Program {
    let mut rng = Lcg(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut p = Program::new("random");
    let n_arrays = 1 + rng.pick(3);
    for a in 0..n_arrays {
        p.declare(format!("Arr{a}"), vec![Expr::var("N"), Expr::var("M")]);
    }

    struct Gen {
        next_stmt: usize,
        next_loop: usize,
        n_arrays: usize,
    }

    impl Gen {
        fn stmt(&mut self, rng: &mut Lcg, enclosing: &[Sym]) -> Node {
            let dim = |rng: &mut Lcg| {
                let idx = enclosing[rng.pick(enclosing.len())].clone();
                let stride = if rng.chance(3) {
                    Expr::var("T")
                } else {
                    Expr::one()
                };
                DimExpr {
                    parts: vec![(idx, stride)],
                }
            };
            let aref = |rng: &mut Lcg, write: bool| ArrayRef {
                array: ArrayId(rng.pick(self.n_arrays)),
                dims: vec![dim(rng), dim(rng)],
                is_write: write,
            };
            let (kind, refs) = if rng.chance(2) {
                (StmtKind::ZeroLhs, vec![aref(&mut *rng, true)])
            } else {
                (
                    StmtKind::Assign,
                    vec![aref(&mut *rng, true), aref(&mut *rng, false)],
                )
            };
            let id = StmtId(self.next_stmt);
            self.next_stmt += 1;
            Node::Stmt(Stmt {
                id,
                label: format!("s{}", id.0),
                refs,
                kind,
            })
        }

        fn looped(&mut self, rng: &mut Lcg, enclosing: &mut Vec<Sym>, depth: usize) -> Node {
            let index = Sym::new(format!("l{}", self.next_loop));
            self.next_loop += 1;
            let bound = match rng.pick(3) {
                0 => Expr::var("N"),
                1 => Expr::var("M"),
                _ => Expr::var("N").ceil_div(&Expr::var("T")),
            };
            enclosing.push(index.clone());
            let mut body = Vec::new();
            let children = 1 + rng.pick(2);
            for _ in 0..children {
                if depth < 3 && rng.chance(2) {
                    let child = self.looped(rng, enclosing, depth + 1);
                    body.push(child);
                } else if enclosing.len() >= 2 {
                    body.push(self.stmt(rng, enclosing));
                } else {
                    let child = self.looped(rng, enclosing, depth + 1);
                    body.push(child);
                }
            }
            enclosing.pop();
            Node::Loop(sdlo_ir::LoopNode { index, bound, body })
        }
    }

    let mut gen = Gen {
        next_stmt: 0,
        next_loop: 0,
        n_arrays,
    };
    let mut enclosing = Vec::new();
    p.root = vec![gen.looped(&mut rng, &mut enclosing, 0)];
    if rng.chance(2) {
        let sibling = gen.looped(&mut rng, &mut enclosing, 0);
        p.root.push(sibling);
    }
    assert_eq!(p.validate(), Ok(()), "generator must build valid programs");
    p
}

/// Apply every transformation canonicalization claims to erase: scoped loop
/// renames with fresh names, a random permutation of the array declarations
/// (with references remapped), new array names, garbled labels and name.
fn scramble(p: &Program, seed: u64) -> Program {
    let mut rng = Lcg(seed ^ 0xdead_beef_cafe_f00d);
    let mut q = p.clone();
    q.name = "scrambled".into();

    // Permute array declarations.
    let n = q.arrays.len();
    let mut perm: Vec<usize> = (0..n).collect(); // perm[old] = new
    for i in (1..n).rev() {
        perm.swap(i, rng.pick(i + 1));
    }
    let mut decls = vec![None; n];
    for (old, a) in q.arrays.iter().enumerate() {
        let mut d = a.clone();
        d.id = ArrayId(perm[old]);
        d.name = Sym::new(format!("X{}", perm[old]));
        decls[perm[old]] = Some(d);
    }
    q.arrays = decls.into_iter().map(|d| d.unwrap()).collect();

    // Scoped loop renames + reference remap.
    fn walk(n: &mut Node, scope: &mut Vec<(Sym, Sym)>, perm: &[usize], fresh: &mut usize) {
        match n {
            Node::Loop(l) => {
                let new = Sym::new(format!("z{fresh}"));
                *fresh += 1;
                scope.push((l.index.clone(), new.clone()));
                l.index = new;
                for c in &mut l.body {
                    walk(c, scope, perm, fresh);
                }
                scope.pop();
            }
            Node::Stmt(s) => {
                s.label = "scrambled".into();
                for r in &mut s.refs {
                    r.array = ArrayId(perm[r.array.0]);
                    for d in &mut r.dims {
                        for (idx, _) in &mut d.parts {
                            if let Some((_, new)) = scope.iter().rev().find(|(orig, _)| orig == idx)
                            {
                                *idx = new.clone();
                            }
                        }
                    }
                }
            }
        }
    }
    let mut scope = Vec::new();
    let mut fresh = 0;
    for node in &mut q.root {
        walk(node, &mut scope, &perm, &mut fresh);
    }
    assert_eq!(q.validate(), Ok(()), "scramble must preserve validity");
    q
}

// ---------------------------------------------------------------------------
// Near-collision fixtures: canonicalization must erase *only* diagnostic
// choices. Programs that differ in a semantic detail — a stride symbol, a
// write flag, subscript dimension order — must keep distinct canonical forms
// and hashes, otherwise the service's memoization cache would serve one
// program's analysis for another.
// ---------------------------------------------------------------------------

/// `for i in N { for j in M { A[i*si, j*sj] = B[i, j] } }` with the write
/// flags and dim order injectable per variant.
fn near_fixture(si: &str, sj: &str, writes: (bool, bool), swap_dims: bool) -> Program {
    let stride = |s: &str| {
        if s == "1" {
            Expr::one()
        } else {
            Expr::var(s)
        }
    };
    let mut p = Program::new("near");
    let a = p.declare("A", vec![Expr::var("N"), Expr::var("M")]);
    let b = p.declare("B", vec![Expr::var("N"), Expr::var("M")]);
    let mut a_dims = vec![
        DimExpr {
            parts: vec![(Sym::new("i"), stride(si))],
        },
        DimExpr {
            parts: vec![(Sym::new("j"), stride(sj))],
        },
    ];
    if swap_dims {
        a_dims.swap(0, 1);
    }
    let stmt = Stmt {
        id: StmtId(0),
        label: "s0".into(),
        kind: StmtKind::Assign,
        refs: vec![
            ArrayRef {
                array: a,
                dims: a_dims,
                is_write: writes.0,
            },
            ArrayRef {
                array: b,
                dims: vec![
                    DimExpr {
                        parts: vec![(Sym::new("i"), Expr::one())],
                    },
                    DimExpr {
                        parts: vec![(Sym::new("j"), Expr::one())],
                    },
                ],
                is_write: writes.1,
            },
        ],
    };
    p.root = vec![Node::Loop(sdlo_ir::LoopNode {
        index: Sym::new("i"),
        bound: Expr::var("N"),
        body: vec![Node::Loop(sdlo_ir::LoopNode {
            index: Sym::new("j"),
            bound: Expr::var("M"),
            body: vec![Node::Stmt(stmt)],
        })],
    })];
    assert_eq!(p.validate(), Ok(()));
    p
}

/// Canonicalization must distinguish the two programs *and* stay stable
/// under scrambling of each, so the difference is semantic, not cosmetic.
fn assert_distinct(p: &Program, q: &Program) {
    let cp = canonicalize(p);
    let cq = canonicalize(q);
    assert_ne!(cp.hash, cq.hash, "hashes must differ");
    assert_ne!(cp.program, cq.program, "canonical programs must differ");
    assert_eq!(cp.hash, canonicalize(&scramble(p, 7)).hash);
    assert_eq!(cq.hash, canonicalize(&scramble(q, 7)).hash);
}

#[test]
fn stride_symbols_are_not_erased() {
    // A[i*T, j] vs A[i*U, j]: same shape, different tile symbol.
    assert_distinct(
        &near_fixture("T", "1", (true, false), false),
        &near_fixture("U", "1", (true, false), false),
    );
    // A[i*T, j] vs A[i, j*T]: same symbols, stride on a different dim.
    assert_distinct(
        &near_fixture("T", "1", (true, false), false),
        &near_fixture("1", "T", (true, false), false),
    );
}

#[test]
fn write_flags_are_not_erased() {
    // A = B vs the flags swapped (B = A in effect): reuse analysis treats
    // reads and writes alike but the service must not conflate them.
    assert_distinct(
        &near_fixture("1", "1", (true, false), false),
        &near_fixture("1", "1", (false, true), false),
    );
}

#[test]
fn dim_order_is_not_erased() {
    // A[i,j] = B[i,j] vs A[j,i] = B[i,j]: transposed access pattern.
    assert_distinct(
        &near_fixture("1", "1", (true, false), false),
        &near_fixture("1", "1", (true, false), true),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The tentpole soundness property: canonicalization erases exactly the
    /// diagnostic choices, so scrambled variants share the canonical program
    /// and the stable hash.
    #[test]
    fn scrambled_programs_canonicalize_identically(
        seed in 0u64..u64::MAX,
        scramble_seed in 0u64..u64::MAX,
    ) {
        let p = random_program(seed);
        let q = scramble(&p, scramble_seed);
        let cp = canonicalize(&p);
        let cq = canonicalize(&q);
        prop_assert_eq!(cp.hash, cq.hash);
        prop_assert_eq!(&cp.program, &cq.program);
        // The correspondence maps back to each input's own ids.
        prop_assert_eq!(cp.array_map.len(), p.arrays.len());
        prop_assert_eq!(cq.array_map.len(), q.arrays.len());
    }

    /// Near-collision property: a *semantic* mutation — renaming the stride
    /// symbol, flipping a write flag, or reversing a subscript's dim order —
    /// must always change the canonical hash.
    #[test]
    fn semantic_mutations_change_the_hash(
        seed in 0u64..u64::MAX,
        mutation in 0usize..3,
    ) {
        let p = random_program(seed);
        let mut q = p.clone();

        fn stmts_mut(nodes: &mut [Node], f: &mut impl FnMut(&mut Stmt)) {
            for n in nodes {
                match n {
                    Node::Loop(l) => stmts_mut(&mut l.body, f),
                    Node::Stmt(s) => f(s),
                }
            }
        }

        let mut changed = false;
        match mutation {
            // Rename the tile stride symbol T -> U wherever it appears.
            0 => stmts_mut(&mut q.root, &mut |s| {
                for r in &mut s.refs {
                    for d in &mut r.dims {
                        for (_, stride) in &mut d.parts {
                            if *stride == Expr::var("T") {
                                *stride = Expr::var("U");
                                changed = true;
                            }
                        }
                    }
                }
            }),
            // Flip the first reference's write flag.
            1 => stmts_mut(&mut q.root, &mut |s| {
                if !changed {
                    s.refs[0].is_write = !s.refs[0].is_write;
                    changed = true;
                }
            }),
            // Reverse the dims of the first ref whose dims actually differ.
            _ => stmts_mut(&mut q.root, &mut |s| {
                for r in &mut s.refs {
                    if !changed && r.dims[0] != r.dims[1] {
                        r.dims.reverse();
                        changed = true;
                    }
                }
            }),
        }
        // Skip cases where the chosen mutation was a no-op for this program
        // (e.g. it uses no tile stride, or every ref has equal dims).
        if changed {
            prop_assert_eq!(q.validate(), Ok(()));
            prop_assert!(canonicalize(&p).hash != canonicalize(&q).hash);
        }
    }

    /// Canonical forms are fixed points: canonicalizing again changes nothing.
    #[test]
    fn canonicalization_is_idempotent(seed in 0u64..u64::MAX) {
        let p = random_program(seed);
        let c1 = canonicalize(&p);
        let c2 = canonicalize(&c1.program);
        prop_assert_eq!(&c1.program, &c2.program);
        prop_assert_eq!(c1.hash, c2.hash);
        prop_assert_eq!(c1.program.validate(), Ok(()));
    }
}
