//! # sdlo-ir
//!
//! Loop-nest intermediate representation for the class of programs the
//! paper's analysis targets: **imperfectly nested** loop structures with
//! **symbolic bounds** whose array subscripts are (strided sums of) loop
//! indices — exactly what the Tensor Contraction Engine emits after operation
//! minimization, loop fusion and tiling.
//!
//! The crate provides:
//!
//! * the loop tree itself ([`Program`], [`Node`], [`LoopNode`], [`Stmt`],
//!   [`ArrayRef`], [`DimExpr`]),
//! * program builders for the paper's workloads ([`programs`]): matrix
//!   multiplication (plain and tiled, Fig. 2/8), the fused and tiled
//!   two-index transform (Fig. 1/6), and the four-index transform (§2),
//! * a perfect-nest tiling transform ([`tile_perfect_nest`]),
//! * a compiler from (program, concrete bindings) to a flat, allocation-free
//!   walker that streams the exact memory reference trace ([`trace`]), and
//! * an interpreter executing statement semantics over `f64` arrays for
//!   end-to-end numerical checks ([`execute`]).
//!
//! Loops iterate `1..=bound` following the paper's notation. Tiled index
//! pairs are modelled as two loop indices contributing to one subscript
//! dimension with different strides: `A[iT+iI]` becomes the dimension
//! expression `(iT-1)*Ti + (iI-1) + 1`.

mod apply;
pub mod canon;
mod exec;
mod node;
mod program;
pub mod programs;
mod tile;
pub mod trace;

pub use apply::{apply_permute, apply_tile, perfect_segment, ApplyError};
pub use canon::{canonical_hash, canonicalize, Canonical};
pub use exec::{execute, ExecError, Memory};
pub use node::{ArrayRef, DimExpr, LoopNode, Node, Stmt, StmtKind};
pub use program::{ArrayDecl, ArrayId, Program, StmtId, ValidateError};
pub use tile::tile_perfect_nest;
pub use trace::{Access, CompileError, CompiledProgram};

pub use sdlo_symbolic::{Bindings, Expr, Sym};
