//! Loop-tree node types.

use crate::program::{ArrayId, StmtId};
use sdlo_symbolic::{Expr, Sym};

/// One subscript dimension of an array reference.
///
/// The value of the dimension at a given iteration point is
/// `1 + Σ (value(index_k) − 1) · stride_k`. A plain loop-index subscript
/// `A[i]` has one part `(i, 1)`; a tiled subscript `A[iT+iI]` has parts
/// `[(iT, Ti), (iI, 1)]` — tile loop `iT` selects the tile origin in element
/// units, intra-tile loop `iI` the offset inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimExpr {
    /// `(loop index, stride)` pairs; strides are symbolic expressions
    /// (typically `1` or a tile-size variable).
    pub parts: Vec<(Sym, Expr)>,
}

impl DimExpr {
    /// A single-index dimension with stride 1: `A[i]`.
    pub fn index(i: impl Into<Sym>) -> Self {
        DimExpr {
            parts: vec![(i.into(), Expr::one())],
        }
    }

    /// A tiled dimension `A[iT + iI]`: tile loop `t` with stride = tile size,
    /// intra loop `i` with stride 1.
    pub fn tiled(t: impl Into<Sym>, tile_size: Expr, i: impl Into<Sym>) -> Self {
        DimExpr {
            parts: vec![(t.into(), tile_size), (i.into(), Expr::one())],
        }
    }

    /// Every loop index contributing to this dimension.
    pub fn indices(&self) -> impl Iterator<Item = &Sym> {
        self.parts.iter().map(|(s, _)| s)
    }

    /// Whether loop index `sym` contributes to this dimension.
    pub fn uses(&self, sym: &Sym) -> bool {
        self.parts.iter().any(|(s, _)| s == sym)
    }
}

/// One array reference inside a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayRef {
    /// Which array is referenced.
    pub array: ArrayId,
    /// One [`DimExpr`] per array dimension.
    pub dims: Vec<DimExpr>,
    /// Whether the reference writes (LHS) — reads and writes are identical
    /// for the LRU analysis but matter for execution.
    pub is_write: bool,
}

impl ArrayRef {
    /// A read reference.
    pub fn read(array: ArrayId, dims: Vec<DimExpr>) -> Self {
        ArrayRef {
            array,
            dims,
            is_write: false,
        }
    }

    /// A write reference.
    pub fn write(array: ArrayId, dims: Vec<DimExpr>) -> Self {
        ArrayRef {
            array,
            dims,
            is_write: true,
        }
    }

    /// Whether loop index `sym` **appears** in the reference (paper's
    /// `Appears[]`): it contributes to some subscript dimension.
    pub fn appears(&self, sym: &Sym) -> bool {
        self.dims.iter().any(|d| d.uses(sym))
    }
}

/// Executable semantics of a statement, over the references in `refs` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtKind {
    /// `refs[0] = 0`.
    ZeroLhs,
    /// `refs[0] += refs[1] * refs[2]`.
    MulAddAssign,
    /// `refs[0] = refs[1]`.
    Assign,
}

/// A statement: an ordered list of array references plus semantics.
///
/// References are listed in the order they are touched during one execution
/// of the statement (reads before the write for `+=`), which is the order the
/// trace generator emits them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Program-order statement number (assigned by [`Program`](crate::Program)).
    pub id: StmtId,
    /// Human-readable form for diagnostics and table output.
    pub label: String,
    /// References in access order.
    pub refs: Vec<ArrayRef>,
    /// Executable semantics.
    pub kind: StmtKind,
}

/// A loop with its symbolic trip count; iterates `1..=bound`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNode {
    /// The loop index variable (unique within a program).
    pub index: Sym,
    /// Number of iterations (symbolic).
    pub bound: Expr,
    /// Loop body — a sequence of loops and/or statements (imperfect nesting).
    pub body: Vec<Node>,
}

/// A node of the loop tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A `for` loop.
    Loop(LoopNode),
    /// A statement.
    Stmt(Stmt),
}

impl Node {
    /// Build a loop node.
    pub fn loop_(index: impl Into<Sym>, bound: Expr, body: Vec<Node>) -> Self {
        Node::Loop(LoopNode {
            index: index.into(),
            bound,
            body,
        })
    }

    /// Visit every statement in program order.
    pub fn for_each_stmt<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        match self {
            Node::Loop(l) => {
                for n in &l.body {
                    n.for_each_stmt(f);
                }
            }
            Node::Stmt(s) => f(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_expr_uses() {
        let d = DimExpr::tiled("iT", Expr::var("Ti"), "iI");
        assert!(d.uses(&Sym::new("iT")));
        assert!(d.uses(&Sym::new("iI")));
        assert!(!d.uses(&Sym::new("j")));
        assert_eq!(d.indices().count(), 2);
    }

    #[test]
    fn array_ref_appears() {
        let r = ArrayRef::read(ArrayId(0), vec![DimExpr::index("i"), DimExpr::index("j")]);
        assert!(r.appears(&Sym::new("i")));
        assert!(!r.appears(&Sym::new("k")));
    }

    #[test]
    fn for_each_stmt_walks_in_order() {
        let s = |id: usize| {
            Node::Stmt(Stmt {
                id: StmtId(id),
                label: format!("s{id}"),
                refs: vec![],
                kind: StmtKind::ZeroLhs,
            })
        };
        let tree = Node::loop_(
            "i",
            Expr::var("N"),
            vec![s(0), Node::loop_("j", Expr::var("N"), vec![s(1)]), s(2)],
        );
        let mut ids = vec![];
        tree.for_each_stmt(&mut |st| ids.push(st.id.0));
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
