//! Whole-program container: array declarations plus the loop tree.

use crate::node::{Node, Stmt};
use sdlo_symbolic::{Expr, Sym};
use std::collections::BTreeSet;

/// Identifier of a declared array (index into [`Program::arrays`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub usize);

/// Program-order statement number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub usize);

/// A declared array with symbolic per-dimension extents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Stable identifier.
    pub id: ArrayId,
    /// Array name (`A`, `B`, `C1`, `T`, …).
    pub name: Sym,
    /// Extent of each dimension, row-major (first dimension slowest).
    pub dims: Vec<Expr>,
}

impl ArrayDecl {
    /// Total number of elements (symbolic product of extents).
    pub fn size(&self) -> Expr {
        self.dims.iter().fold(Expr::one(), |acc, d| acc * d.clone())
    }
}

/// Structural problems detected by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// Two array declarations share a name.
    DuplicateArray { name: Sym },
    /// An array was declared with no dimensions (scalars are declared with a
    /// single extent-1 dimension, not zero dimensions).
    ZeroDimArray { name: Sym },
    /// A reference used a loop index not bound by an enclosing loop.
    UnboundIndex { stmt: StmtId, index: Sym },
    /// Two loops in the same nesting path share an index name.
    DuplicateIndex { index: Sym },
    /// A reference's dimension count does not match the declaration.
    DimMismatch {
        stmt: StmtId,
        array: Sym,
        expected: usize,
        got: usize,
    },
    /// A statement's reference count does not fit its [`StmtKind`](crate::StmtKind).
    RefCount {
        stmt: StmtId,
        expected: usize,
        got: usize,
    },
    /// Statement ids are not 0..n in program order.
    BadStmtNumbering { expected: usize, got: usize },
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::DuplicateArray { name } => {
                write!(f, "array `{name}` declared more than once")
            }
            ValidateError::ZeroDimArray { name } => {
                write!(f, "array `{name}` declared with zero dimensions")
            }
            ValidateError::UnboundIndex { stmt, index } => {
                write!(f, "statement {} uses unbound index `{index}`", stmt.0)
            }
            ValidateError::DuplicateIndex { index } => {
                write!(f, "loop index `{index}` shadowed along one nesting path")
            }
            ValidateError::DimMismatch {
                stmt,
                array,
                expected,
                got,
            } => write!(
                f,
                "statement {} references `{array}` with {got} dims, declared {expected}",
                stmt.0
            ),
            ValidateError::RefCount {
                stmt,
                expected,
                got,
            } => write!(
                f,
                "statement {} has {got} references, its kind requires {expected}",
                stmt.0
            ),
            ValidateError::BadStmtNumbering { expected, got } => {
                write!(
                    f,
                    "statement numbered {got}, expected {expected} in program order"
                )
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// A complete program of the TCE class: declarations + imperfect loop nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Diagnostic name (`"tiled-matmul"`, …).
    pub name: String,
    /// All arrays touched by the program.
    pub arrays: Vec<ArrayDecl>,
    /// Top-level sequence of loops/statements.
    pub root: Vec<Node>,
}

impl Program {
    /// Create an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            arrays: Vec::new(),
            root: Vec::new(),
        }
    }

    /// Declare an array and get its id.
    pub fn declare(&mut self, name: impl Into<Sym>, dims: Vec<Expr>) -> ArrayId {
        let id = ArrayId(self.arrays.len());
        self.arrays.push(ArrayDecl {
            id,
            name: name.into(),
            dims,
        });
        id
    }

    /// Look up an array declaration.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0]
    }

    /// Find an array by name.
    pub fn array_by_name(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name.name() == name)
    }

    /// Visit every statement in program order.
    pub fn for_each_stmt<'a>(&'a self, mut f: impl FnMut(&'a Stmt)) {
        for n in &self.root {
            n.for_each_stmt(&mut f);
        }
    }

    /// All statements in program order.
    pub fn stmts(&self) -> Vec<&Stmt> {
        let mut v = Vec::new();
        self.for_each_stmt(|s| v.push(s));
        v
    }

    /// Number of statements.
    pub fn stmt_count(&self) -> usize {
        let mut n = 0;
        self.for_each_stmt(|_| n += 1);
        n
    }

    /// All free symbols of the program: loop bounds, strides, array extents.
    /// (Loop index variables are *not* free — they are bound by their loops.)
    pub fn free_symbols(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        for a in &self.arrays {
            for d in &a.dims {
                d.collect_vars(&mut out);
            }
        }
        fn walk(node: &Node, out: &mut BTreeSet<Sym>, bound: &mut Vec<Sym>) {
            match node {
                Node::Loop(l) => {
                    l.bound.collect_vars(out);
                    bound.push(l.index.clone());
                    for n in &l.body {
                        walk(n, out, bound);
                    }
                    bound.pop();
                }
                Node::Stmt(s) => {
                    for r in &s.refs {
                        for d in &r.dims {
                            for (_, stride) in &d.parts {
                                stride.collect_vars(out);
                            }
                        }
                    }
                }
            }
        }
        let mut bound = Vec::new();
        for n in &self.root {
            walk(n, &mut out, &mut bound);
        }
        for s in &bound {
            out.remove(s);
        }
        out
    }

    /// Structural validation; returns the first problem found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        fn walk(
            prog: &Program,
            node: &Node,
            enclosing: &mut Vec<Sym>,
            next_stmt: &mut usize,
        ) -> Result<(), ValidateError> {
            match node {
                Node::Loop(l) => {
                    if enclosing.contains(&l.index) {
                        return Err(ValidateError::DuplicateIndex {
                            index: l.index.clone(),
                        });
                    }
                    enclosing.push(l.index.clone());
                    for n in &l.body {
                        walk(prog, n, enclosing, next_stmt)?;
                    }
                    enclosing.pop();
                    Ok(())
                }
                Node::Stmt(s) => {
                    if s.id.0 != *next_stmt {
                        return Err(ValidateError::BadStmtNumbering {
                            expected: *next_stmt,
                            got: s.id.0,
                        });
                    }
                    *next_stmt += 1;
                    let expected_refs = match s.kind {
                        crate::StmtKind::ZeroLhs => 1,
                        crate::StmtKind::Assign => 2,
                        crate::StmtKind::MulAddAssign => 3,
                    };
                    if s.refs.len() != expected_refs {
                        return Err(ValidateError::RefCount {
                            stmt: s.id,
                            expected: expected_refs,
                            got: s.refs.len(),
                        });
                    }
                    for r in &s.refs {
                        let decl = prog.array(r.array);
                        if r.dims.len() != decl.dims.len() {
                            return Err(ValidateError::DimMismatch {
                                stmt: s.id,
                                array: decl.name.clone(),
                                expected: decl.dims.len(),
                                got: r.dims.len(),
                            });
                        }
                        for d in &r.dims {
                            for idx in d.indices() {
                                if !enclosing.contains(idx) {
                                    return Err(ValidateError::UnboundIndex {
                                        stmt: s.id,
                                        index: idx.clone(),
                                    });
                                }
                            }
                        }
                    }
                    Ok(())
                }
            }
        }
        let mut seen = BTreeSet::new();
        for a in &self.arrays {
            if !seen.insert(a.name.clone()) {
                return Err(ValidateError::DuplicateArray {
                    name: a.name.clone(),
                });
            }
            if a.dims.is_empty() {
                return Err(ValidateError::ZeroDimArray {
                    name: a.name.clone(),
                });
            }
        }
        let mut enclosing = Vec::new();
        let mut next_stmt = 0;
        for n in &self.root {
            walk(self, n, &mut enclosing, &mut next_stmt)?;
        }
        Ok(())
    }

    /// Pretty-print the loop structure (for docs, examples and debugging).
    pub fn render(&self) -> String {
        fn walk(node: &Node, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            match node {
                Node::Loop(l) => {
                    out.push_str(&format!("{pad}for {} = 1..={}\n", l.index, l.bound));
                    for n in &l.body {
                        walk(n, depth + 1, out);
                    }
                }
                Node::Stmt(s) => {
                    out.push_str(&format!("{pad}S{}: {}\n", s.id.0, s.label));
                }
            }
        }
        let mut out = String::new();
        for n in &self.root {
            walk(n, 0, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{ArrayRef, DimExpr, Stmt, StmtKind};

    fn tiny() -> Program {
        let mut p = Program::new("tiny");
        let a = p.declare("A", vec![Expr::var("N")]);
        p.root = vec![Node::loop_(
            "i",
            Expr::var("N"),
            vec![Node::Stmt(Stmt {
                id: StmtId(0),
                label: "A[i] = 0".into(),
                refs: vec![ArrayRef::write(a, vec![DimExpr::index("i")])],
                kind: StmtKind::ZeroLhs,
            })],
        )];
        p
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert_eq!(tiny().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_unbound_index() {
        let mut p = tiny();
        if let Node::Loop(l) = &mut p.root[0] {
            if let Node::Stmt(s) = &mut l.body[0] {
                s.refs[0].dims[0] = DimExpr::index("q");
            }
        }
        assert!(matches!(
            p.validate(),
            Err(ValidateError::UnboundIndex { .. })
        ));
    }

    #[test]
    fn validate_rejects_dim_mismatch() {
        let mut p = tiny();
        if let Node::Loop(l) = &mut p.root[0] {
            if let Node::Stmt(s) = &mut l.body[0] {
                s.refs[0].dims.push(DimExpr::index("i"));
            }
        }
        assert!(matches!(
            p.validate(),
            Err(ValidateError::DimMismatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_duplicate_array_names() {
        let mut p = tiny();
        p.declare("A", vec![Expr::var("M")]);
        assert_eq!(
            p.validate(),
            Err(ValidateError::DuplicateArray {
                name: Sym::new("A")
            })
        );
    }

    #[test]
    fn validate_rejects_zero_dim_arrays() {
        let mut p = tiny();
        p.declare("Z", vec![]);
        assert_eq!(
            p.validate(),
            Err(ValidateError::ZeroDimArray {
                name: Sym::new("Z")
            })
        );
    }

    #[test]
    fn validate_rejects_bad_numbering() {
        let mut p = tiny();
        if let Node::Loop(l) = &mut p.root[0] {
            if let Node::Stmt(s) = &mut l.body[0] {
                s.id = StmtId(7);
            }
        }
        assert!(matches!(
            p.validate(),
            Err(ValidateError::BadStmtNumbering { .. })
        ));
    }

    #[test]
    fn free_symbols_excludes_loop_indices() {
        let p = tiny();
        let syms = p.free_symbols();
        assert!(syms.contains(&Sym::new("N")));
        assert!(!syms.contains(&Sym::new("i")));
    }

    #[test]
    fn render_shows_structure() {
        let text = tiny().render();
        assert!(text.contains("for i = 1..=N"));
        assert!(text.contains("S0: A[i] = 0"));
    }
}
