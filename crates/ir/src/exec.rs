//! Direct execution of compiled programs over `f64` arrays.
//!
//! The analysis never looks at data values, but the *transformations* we
//! reproduce (fusion, tiling, parallelization) must preserve program
//! semantics; this interpreter gives every test a numerical ground truth.

use crate::node::StmtKind;
use crate::program::ArrayId;
use crate::trace::{CNode, CompiledProgram};

/// Flat storage for all of a compiled program's arrays.
#[derive(Debug, Clone)]
pub struct Memory {
    data: Vec<Vec<f64>>,
}

/// Errors from [`execute`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The memory's shape does not match the compiled program.
    ShapeMismatch,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::ShapeMismatch => write!(f, "memory shape does not match program"),
        }
    }
}

impl std::error::Error for ExecError {}

impl Memory {
    /// Allocate zero-initialized storage matching `program`'s arrays.
    pub fn zeroed(program: &CompiledProgram) -> Self {
        Memory {
            data: program
                .arrays
                .iter()
                .map(|a| vec![0.0; a.size as usize])
                .collect(),
        }
    }

    /// Read-only view of one array's elements (row-major).
    pub fn array(&self, id: ArrayId) -> &[f64] {
        &self.data[id.0]
    }

    /// Mutable view of one array's elements (row-major).
    pub fn array_mut(&mut self, id: ArrayId) -> &mut [f64] {
        &mut self.data[id.0]
    }

    /// Fill an array from an iterator (for deterministic test inputs).
    pub fn fill_with(&mut self, id: ArrayId, f: impl Fn(usize) -> f64) {
        for (i, x) in self.data[id.0].iter_mut().enumerate() {
            *x = f(i);
        }
    }
}

/// Run `program` over `mem`, interpreting each statement's [`StmtKind`].
pub fn execute(program: &CompiledProgram, mem: &mut Memory) -> Result<(), ExecError> {
    if mem.data.len() != program.arrays.len()
        || mem
            .data
            .iter()
            .zip(&program.arrays)
            .any(|(v, a)| v.len() != a.size as usize)
    {
        return Err(ExecError::ShapeMismatch);
    }
    let mut iv = vec![0u64; program.n_slots];
    for n in &program.root {
        exec_node(program, n, &mut iv, mem);
    }
    Ok(())
}

/// Within-array offset of a reference at the current iteration point.
/// (`CRef::terms` hold only loop contributions, so summing them yields the
/// offset relative to the array base.)
fn local_addr(_program: &CompiledProgram, r: &crate::trace::CRef, iv: &[u64]) -> (usize, usize) {
    let mut addr = 0u64;
    for (slot, coef) in &r.terms {
        addr += iv[*slot] * coef;
    }
    (r.array.0, addr as usize)
}

fn exec_node(program: &CompiledProgram, node: &CNode, iv: &mut [u64], mem: &mut Memory) {
    match node {
        CNode::Loop { bound, slot, body } => {
            for i in 0..*bound {
                iv[*slot] = i;
                for n in body {
                    exec_node(program, n, iv, mem);
                }
            }
        }
        CNode::Stmt { kind, refs, .. } => match kind {
            StmtKind::ZeroLhs => {
                let (a, off) = local_addr(program, &refs[0], iv);
                mem.data[a][off] = 0.0;
            }
            StmtKind::Assign => {
                let (sa, soff) = local_addr(program, &refs[1], iv);
                let v = mem.data[sa][soff];
                let (da, doff) = local_addr(program, &refs[0], iv);
                mem.data[da][doff] = v;
            }
            StmtKind::MulAddAssign => {
                let (xa, xoff) = local_addr(program, &refs[1], iv);
                let (ya, yoff) = local_addr(program, &refs[2], iv);
                let v = mem.data[xa][xoff] * mem.data[ya][yoff];
                let (da, doff) = local_addr(program, &refs[0], iv);
                mem.data[da][doff] += v;
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use crate::CompiledProgram;
    use sdlo_symbolic::Bindings;

    fn square(n: i128) -> Bindings {
        Bindings::new()
            .with("Ni", n)
            .with("Nj", n)
            .with("Nk", n)
            .with("Nm", n)
            .with("Nn", n)
    }

    #[test]
    fn matmul_computes_product() {
        let p = programs::matmul();
        let c = CompiledProgram::compile(&p, &square(3)).unwrap();
        let mut mem = Memory::zeroed(&c);
        let a_id = p.array_by_name("A").unwrap().id;
        let b_id = p.array_by_name("B").unwrap().id;
        let c_id = p.array_by_name("C").unwrap().id;
        mem.fill_with(a_id, |i| i as f64 + 1.0);
        mem.fill_with(b_id, |i| (i as f64) * 0.5);
        execute(&c, &mut mem).unwrap();
        // Naive reference.
        let (a, b) = (mem.array(a_id).to_vec(), mem.array(b_id).to_vec());
        let n = 3;
        for i in 0..n {
            for k in 0..n {
                let mut acc = 0.0;
                for j in 0..n {
                    acc += a[i * n + j] * b[j * n + k];
                }
                assert!((mem.array(c_id)[i * n + k] - acc).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn tiled_matmul_equals_untiled() {
        let n = 8;
        let pu = programs::matmul();
        let cu = CompiledProgram::compile(&pu, &square(n as i128)).unwrap();
        let pt = programs::tiled_matmul();
        let ct = CompiledProgram::compile(
            &pt,
            &square(n as i128).with("Ti", 4).with("Tj", 2).with("Tk", 8),
        )
        .unwrap();

        let mut mu = Memory::zeroed(&cu);
        let mut mt = Memory::zeroed(&ct);
        for (p, m, c) in [(&pu, &mut mu, &cu), (&pt, &mut mt, &ct)] {
            let _ = c;
            let a_id = p.array_by_name("A").unwrap().id;
            let b_id = p.array_by_name("B").unwrap().id;
            m.fill_with(a_id, |i| (i % 17) as f64 - 4.0);
            m.fill_with(b_id, |i| (i % 13) as f64 * 0.25);
        }
        execute(&cu, &mut mu).unwrap();
        execute(&ct, &mut mt).unwrap();
        let cu_id = pu.array_by_name("C").unwrap().id;
        let ct_id = pt.array_by_name("C").unwrap().id;
        assert_eq!(mu.array(cu_id), mt.array(ct_id));
    }

    #[test]
    fn fused_two_index_equals_unfused() {
        let n = 6;
        let pf = programs::two_index_fused();
        let pu = programs::two_index_unfused();
        let cf = CompiledProgram::compile(&pf, &square(n as i128)).unwrap();
        let cu = CompiledProgram::compile(&pu, &square(n as i128)).unwrap();
        let mut mf = Memory::zeroed(&cf);
        let mut mu = Memory::zeroed(&cu);
        for (p, m) in [(&pf, &mut mf), (&pu, &mut mu)] {
            for name in ["A", "C1", "C2"] {
                let id = p.array_by_name(name).unwrap().id;
                m.fill_with(id, |i| ((i * 7 + 3) % 19) as f64 - 9.0);
            }
        }
        execute(&cf, &mut mf).unwrap();
        execute(&cu, &mut mu).unwrap();
        let bf = mf.array(pf.array_by_name("B").unwrap().id);
        let bu = mu.array(pu.array_by_name("B").unwrap().id);
        for (x, y) in bf.iter().zip(bu) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn tiled_two_index_equals_unfused() {
        let n = 8;
        let pt = programs::tiled_two_index();
        let pu = programs::two_index_unfused();
        let bt = square(n as i128)
            .with("Ti", 2)
            .with("Tj", 4)
            .with("Tm", 8)
            .with("Tn", 2);
        let ct = CompiledProgram::compile(&pt, &bt).unwrap();
        let cu = CompiledProgram::compile(&pu, &square(n as i128)).unwrap();
        let mut mt = Memory::zeroed(&ct);
        let mut mu = Memory::zeroed(&cu);
        for (p, m) in [(&pt, &mut mt), (&pu, &mut mu)] {
            for name in ["A", "C1", "C2"] {
                let id = p.array_by_name(name).unwrap().id;
                m.fill_with(id, |i| ((i * 5 + 1) % 23) as f64 * 0.5 - 5.0);
            }
        }
        execute(&ct, &mut mt).unwrap();
        execute(&cu, &mut mu).unwrap();
        let b1 = mt.array(pt.array_by_name("B").unwrap().id);
        let b2 = mu.array(pu.array_by_name("B").unwrap().id);
        for (x, y) in b1.iter().zip(b2) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn shape_mismatch_detected() {
        let p = programs::matmul();
        let c3 = CompiledProgram::compile(&p, &square(3)).unwrap();
        let c4 = CompiledProgram::compile(&p, &square(4)).unwrap();
        let mut mem = Memory::zeroed(&c3);
        assert_eq!(execute(&c4, &mut mem), Err(ExecError::ShapeMismatch));
    }
}
