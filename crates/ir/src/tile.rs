//! Tiling of perfectly nested loops.
//!
//! Splits every loop `x` (trip count `Nx`) of a perfect nest into a tile loop
//! `xT` (trip count `ceil(Nx/Tx)`) and an intra-tile loop `xI` (trip count
//! `Tx`), placing all tile loops outermost in original order followed by all
//! intra loops in original order — the classic rectangular tiling the paper
//! applies to matrix multiplication (Fig. 2). Array subscripts using `x`
//! become `xT + xI` dimension pairs; array extents are padded to whole tiles.

use crate::node::{DimExpr, Node};
use crate::program::Program;
use sdlo_symbolic::{Expr, Sym};

/// Error from [`tile_perfect_nest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TileError {
    /// The program is not a single perfectly nested loop around one statement.
    NotPerfectNest,
    /// A requested tile variable does not correspond to any loop.
    NoSuchLoop(Sym),
}

impl std::fmt::Display for TileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TileError::NotPerfectNest => write!(f, "program is not a perfect nest"),
            TileError::NoSuchLoop(s) => write!(f, "no loop with index `{s}`"),
        }
    }
}

impl std::error::Error for TileError {}

/// Tile a perfect nest. `tiles` maps loop index name → tile-size symbol name.
/// Loops not mentioned keep a degenerate tile equal to their full extent...
/// no: loops not mentioned are left untiled (they stay as a single loop placed
/// with the intra loops).
pub fn tile_perfect_nest(program: &Program, tiles: &[(&str, &str)]) -> Result<Program, TileError> {
    // Collect the perfect nest: a chain of loops ending in exactly one stmt.
    let mut chain = Vec::new();
    let mut cur = &program.root;
    let stmt = loop {
        match cur.as_slice() {
            [Node::Loop(l)] => {
                chain.push(l);
                cur = &l.body;
            }
            [Node::Stmt(s)] => break s,
            _ => return Err(TileError::NotPerfectNest),
        }
    };
    for (idx, _) in tiles {
        if !chain.iter().any(|l| l.index.name() == *idx) {
            return Err(TileError::NoSuchLoop(Sym::new(*idx)));
        }
    }

    let tile_for = |index: &Sym| -> Option<&str> {
        tiles
            .iter()
            .find(|(i, _)| *i == index.name())
            .map(|(_, t)| *t)
    };

    let mut out = Program::new(format!("{}-tiled", program.name));
    // Pad tiled array extents to whole tiles. An extent is tied to a loop by
    // scanning the statement's references: dimension d of array a is padded
    // with tile t iff some reference subscripts it with a tiled index.
    let mut padded_dims: Vec<Vec<Expr>> = program.arrays.iter().map(|a| a.dims.clone()).collect();
    for r in &stmt.refs {
        for (d, dim) in r.dims.iter().enumerate() {
            for (idx, _) in &dim.parts {
                if let Some(t) = tile_for(idx) {
                    let orig = program.arrays[r.array.0].dims[d].clone();
                    padded_dims[r.array.0][d] = orig.ceil_div(&Expr::var(t)) * Expr::var(t);
                }
            }
        }
    }
    for (a, dims) in program.arrays.iter().zip(padded_dims) {
        out.declare(a.name.clone(), dims);
    }

    // Rewrite the statement's subscripts.
    let mut new_stmt = stmt.clone();
    for r in &mut new_stmt.refs {
        for dim in &mut r.dims {
            let mut parts = Vec::new();
            for (idx, stride) in &dim.parts {
                match tile_for(idx) {
                    Some(t) => {
                        debug_assert!(
                            stride.as_const() == Some(1),
                            "tiling pre-tiled subscripts is unsupported"
                        );
                        parts.push((Sym::new(format!("{idx}T")), Expr::var(t)));
                        parts.push((Sym::new(format!("{idx}I")), Expr::one()));
                    }
                    None => parts.push((idx.clone(), stride.clone())),
                }
            }
            *dim = DimExpr { parts };
        }
    }

    // Build tile loops (outer, original order) then intra loops.
    let mut node = Node::Stmt(new_stmt);
    for l in chain.iter().rev() {
        node = match tile_for(&l.index) {
            Some(t) => Node::loop_(format!("{}I", l.index), Expr::var(t), vec![node]),
            None => Node::loop_(l.index.clone(), l.bound.clone(), vec![node]),
        };
    }
    for l in chain.iter().rev() {
        if let Some(t) = tile_for(&l.index) {
            node = Node::loop_(
                format!("{}T", l.index),
                l.bound.ceil_div(&Expr::var(t)),
                vec![node],
            );
        }
    }
    out.root = vec![node];
    out.validate().expect("tiling preserves well-formedness");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use crate::{execute, Bindings, CompiledProgram, Memory};

    #[test]
    fn tiling_matmul_matches_handbuilt() {
        let tiled = tile_perfect_nest(
            &programs::matmul(),
            &[("i", "Ti"), ("j", "Tj"), ("k", "Tk")],
        )
        .unwrap();
        // Structure: 3 tile loops then 3 intra loops, single statement.
        let text = tiled.render();
        assert!(text.contains("for iT"), "{text}");
        assert!(text.contains("for kI"), "{text}");
        // Equivalent to the hand-built tiled_matmul modulo loop naming:
        // verify by execution.
        let b = Bindings::new()
            .with("Ni", 8)
            .with("Nj", 8)
            .with("Nk", 8)
            .with("Ti", 4)
            .with("Tj", 2)
            .with("Tk", 8);
        let cg = CompiledProgram::compile(&tiled, &b).unwrap();
        let ch = CompiledProgram::compile(&programs::tiled_matmul(), &b).unwrap();
        let mut mg = Memory::zeroed(&cg);
        let mut mh = Memory::zeroed(&ch);
        for (p, m) in [(&tiled, &mut mg), (&programs::tiled_matmul(), &mut mh)] {
            for name in ["A", "B"] {
                let id = p.array_by_name(name).unwrap().id;
                m.fill_with(id, |i| ((i * 3 + 2) % 11) as f64);
            }
        }
        execute(&cg, &mut mg).unwrap();
        execute(&ch, &mut mh).unwrap();
        assert_eq!(
            mg.array(tiled.array_by_name("C").unwrap().id),
            mh.array(programs::tiled_matmul().array_by_name("C").unwrap().id)
        );
    }

    #[test]
    fn partial_tiling_leaves_untiled_loops_inner() {
        let tiled = tile_perfect_nest(&programs::matmul(), &[("i", "Ti")]).unwrap();
        let text = tiled.render();
        // iT outermost, then j, k untiled, then iI.
        let it = text.find("for iT").unwrap();
        let j = text.find("for j").unwrap();
        assert!(it < j, "{text}");
        tiled.validate().unwrap();
    }

    #[test]
    fn rejects_imperfect_nest() {
        assert_eq!(
            tile_perfect_nest(&programs::two_index_fused(), &[("i", "Ti")]).unwrap_err(),
            TileError::NotPerfectNest
        );
    }

    #[test]
    fn rejects_unknown_loop() {
        assert!(matches!(
            tile_perfect_nest(&programs::matmul(), &[("z", "Tz")]),
            Err(TileError::NoSuchLoop(_))
        ));
    }
}
