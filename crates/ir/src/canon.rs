//! Structural canonicalization of programs.
//!
//! Two programs that differ only in *diagnostic* choices — loop index names,
//! array names, the order arrays were declared in, statement labels, the
//! program name — describe the same loop nest and produce the same
//! stack-distance analysis. [`canonicalize`] maps every member of such an
//! equivalence class to one representative:
//!
//! * loop indices are renamed `i0, i1, …` in preorder (renaming is *scoped*,
//!   so sibling loops that reuse an index name are handled correctly),
//! * arrays are reordered by first reference in preorder and renamed
//!   `A0, A1, …` (arrays never referenced are appended afterwards, ordered by
//!   their extent structure),
//! * statement ids are renumbered in program order and labels are regenerated
//!   from the reference structure,
//! * the program name is dropped (replaced by `"canonical"`).
//!
//! **Free symbols are deliberately kept verbatim.** They are the program's
//! parameters — callers bind them *by name* (`N = 512`, `Ti = 64`) — so a
//! program over `N` and a structurally identical one over `M` are different
//! shapes as far as a memoizing cache is concerned. This keeps the canonical
//! form exact (equal canonical forms ⟺ interchangeable analyses) without
//! needing graph canonization over symmetric parameter uses.
//!
//! [`Canonical::hash`] is a *stable* 64-bit FNV-1a structural hash of the
//! canonical form: it does not depend on platform, process, or `Hash` impl
//! details, so it can key an external cache or travel over the wire.

use crate::node::{ArrayRef, DimExpr, LoopNode, Node, Stmt, StmtKind};
use crate::program::{ArrayDecl, ArrayId, Program, StmtId};
use sdlo_symbolic::{Atom, Expr, Sym};
use std::collections::BTreeMap;

/// Result of [`canonicalize`]: the representative program, the array
/// correspondence, and a stable structural hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Canonical {
    /// The canonical representative. Always passes
    /// [`Program::validate`](crate::Program::validate) when the input does.
    pub program: Program,
    /// `array_map[k]` is the **original** [`ArrayId`] of canonical array
    /// `Ak`, so per-array analysis results on the canonical program can be
    /// reported under the caller's array names.
    pub array_map: Vec<ArrayId>,
    /// Stable FNV-1a structural hash of `program` (name and labels excluded).
    pub hash: u64,
}

/// Canonicalize `p`. See the [module docs](self) for what is normalized.
pub fn canonicalize(p: &Program) -> Canonical {
    let mut cx = Cx {
        scope: Vec::new(),
        next_loop: 0,
        next_stmt: 0,
        array_order: Vec::new(),
        array_remap: BTreeMap::new(),
    };
    let root: Vec<Node> = p.root.iter().map(|n| cx.node(n)).collect();

    // Referenced arrays in first-reference order, then unreferenced ones
    // ordered by extent structure (stable under declaration reordering).
    let mut arrays: Vec<ArrayDecl> = Vec::with_capacity(p.arrays.len());
    let mut array_map = cx.array_order.clone();
    for (k, orig) in cx.array_order.iter().enumerate() {
        arrays.push(ArrayDecl {
            id: ArrayId(k),
            name: Sym::new(format!("A{k}")),
            dims: p.array(*orig).dims.clone(),
        });
    }
    let mut unreferenced: Vec<&ArrayDecl> = p
        .arrays
        .iter()
        .filter(|a| !cx.array_remap.contains_key(&a.id))
        .collect();
    unreferenced.sort_by_key(|a| {
        (
            a.dims.iter().map(|d| d.to_string()).collect::<Vec<_>>(),
            a.name.clone(),
        )
    });
    for a in unreferenced {
        let k = arrays.len();
        arrays.push(ArrayDecl {
            id: ArrayId(k),
            name: Sym::new(format!("A{k}")),
            dims: a.dims.clone(),
        });
        array_map.push(a.id);
    }

    let program = Program {
        name: "canonical".into(),
        arrays,
        root,
    };
    let hash = structural_hash(&program);
    Canonical {
        program,
        array_map,
        hash,
    }
}

/// Stable structural hash of a program, as produced by [`canonicalize`].
/// Convenience for `canonicalize(p).hash`.
pub fn canonical_hash(p: &Program) -> u64 {
    canonicalize(p).hash
}

struct Cx {
    /// Innermost-last stack of `(original index, canonical index)`.
    scope: Vec<(Sym, Sym)>,
    next_loop: usize,
    next_stmt: usize,
    /// Original ids of referenced arrays, in first-reference order.
    array_order: Vec<ArrayId>,
    array_remap: BTreeMap<ArrayId, usize>,
}

impl Cx {
    fn node(&mut self, n: &Node) -> Node {
        match n {
            Node::Loop(l) => {
                let canon = Sym::new(format!("i{}", self.next_loop));
                self.next_loop += 1;
                // Rename the bound *before* pushing: the loop's own index is
                // not in scope inside its bound expression.
                let bound = self.expr(&l.bound);
                self.scope.push((l.index.clone(), canon.clone()));
                let body = l.body.iter().map(|n| self.node(n)).collect();
                self.scope.pop();
                Node::Loop(LoopNode {
                    index: canon,
                    bound,
                    body,
                })
            }
            Node::Stmt(s) => {
                let id = StmtId(self.next_stmt);
                self.next_stmt += 1;
                let refs: Vec<ArrayRef> = s.refs.iter().map(|r| self.array_ref(r)).collect();
                let label = render_label(s.kind, &refs);
                Node::Stmt(Stmt {
                    id,
                    label,
                    refs,
                    kind: s.kind,
                })
            }
        }
    }

    fn array_ref(&mut self, r: &ArrayRef) -> ArrayRef {
        let k = *self.array_remap.entry(r.array).or_insert_with(|| {
            self.array_order.push(r.array);
            self.array_order.len() - 1
        });
        ArrayRef {
            array: ArrayId(k),
            dims: r
                .dims
                .iter()
                .map(|d| DimExpr {
                    parts: d
                        .parts
                        .iter()
                        .map(|(idx, stride)| (self.rename_index(idx), self.expr(stride)))
                        .collect(),
                })
                .collect(),
            is_write: r.is_write,
        }
    }

    /// Canonical name of a loop index — innermost binding wins. Unbound
    /// indices (only possible in programs that fail `validate`) pass through.
    fn rename_index(&self, s: &Sym) -> Sym {
        self.scope
            .iter()
            .rev()
            .find(|(orig, _)| orig == s)
            .map(|(_, canon)| canon.clone())
            .unwrap_or_else(|| s.clone())
    }

    /// Rename loop-index occurrences inside an expression (bounds and
    /// strides may mention enclosing loop indices); free symbols unchanged.
    fn expr(&self, e: &Expr) -> Expr {
        // Rebuild multiplicatively through the smart constructors so the
        // result is normalized even when renaming reorders factors.
        let mut acc = Expr::zero();
        for t in e.terms() {
            let mut prod = Expr::from(t.coeff);
            for (a, exp) in &t.factors {
                let sub = match a {
                    Atom::Var(s) => Expr::var(self.rename_index(s)),
                    Atom::CeilDiv(n, d) => self.expr(n).ceil_div(&self.expr(d)),
                    Atom::FloorDiv(n, d) => self.expr(n).floor_div(&self.expr(d)),
                    Atom::Min(es) => es
                        .iter()
                        .map(|x| self.expr(x))
                        .reduce(|a, b| a.min(&b))
                        .expect("min atom has operands"),
                    Atom::Max(es) => es
                        .iter()
                        .map(|x| self.expr(x))
                        .reduce(|a, b| a.max(&b))
                        .expect("max atom has operands"),
                };
                prod *= sub.pow(*exp);
            }
            acc += prod;
        }
        acc
    }
}

fn render_label(kind: StmtKind, refs: &[ArrayRef]) -> String {
    let fmt_ref = |r: &ArrayRef| {
        let dims: Vec<String> = r
            .dims
            .iter()
            .map(|d| {
                d.parts
                    .iter()
                    .map(|(idx, stride)| {
                        if stride.as_const() == Some(1) {
                            idx.name().to_string()
                        } else {
                            format!("{idx}*({stride})")
                        }
                    })
                    .collect::<Vec<_>>()
                    .join("+")
            })
            .collect();
        format!("A{}[{}]", r.array.0, dims.join(","))
    };
    match kind {
        StmtKind::ZeroLhs => format!("{} = 0", fmt_ref(&refs[0])),
        StmtKind::Assign => format!("{} = {}", fmt_ref(&refs[0]), fmt_ref(&refs[1])),
        StmtKind::MulAddAssign => format!(
            "{} += {} * {}",
            fmt_ref(&refs[0]),
            fmt_ref(&refs[1]),
            fmt_ref(&refs[2])
        ),
    }
}

// ---------------------------------------------------------------------------
// Stable hashing
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a. Explicit rather than `DefaultHasher` so the value is stable
/// across Rust versions, platforms and processes.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= u64::from(x);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// Hash a (canonical) program's structure: arrays with extents, the loop
/// tree, and reference structure. Program name and statement labels are
/// excluded — they are diagnostic.
fn structural_hash(p: &Program) -> u64 {
    let mut h = Fnv64::new();
    h.u64(p.arrays.len() as u64);
    for a in &p.arrays {
        h.str(a.name.name());
        h.u64(a.dims.len() as u64);
        for d in &a.dims {
            h.str(&d.to_string());
        }
    }
    fn node(n: &Node, h: &mut Fnv64) {
        match n {
            Node::Loop(l) => {
                h.bytes(b"L");
                h.str(l.index.name());
                h.str(&l.bound.to_string());
                h.u64(l.body.len() as u64);
                for c in &l.body {
                    node(c, h);
                }
            }
            Node::Stmt(s) => {
                h.bytes(b"S");
                h.u64(match s.kind {
                    StmtKind::ZeroLhs => 0,
                    StmtKind::MulAddAssign => 1,
                    StmtKind::Assign => 2,
                });
                h.u64(s.refs.len() as u64);
                for r in &s.refs {
                    h.u64(r.array.0 as u64);
                    h.u64(u64::from(r.is_write));
                    h.u64(r.dims.len() as u64);
                    for d in &r.dims {
                        h.u64(d.parts.len() as u64);
                        for (idx, stride) in &d.parts {
                            h.str(idx.name());
                            h.str(&stride.to_string());
                        }
                    }
                }
            }
        }
    }
    h.u64(p.root.len() as u64);
    for n in &p.root {
        node(n, &mut h);
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    #[test]
    fn canonical_program_validates() {
        for p in [
            programs::matmul(),
            programs::tiled_matmul(),
            programs::two_index_unfused(),
            programs::two_index_fused(),
            programs::tiled_two_index(),
        ] {
            let c = canonicalize(&p);
            assert_eq!(c.program.validate(), Ok(()), "{}", p.name);
            assert_eq!(c.program.stmt_count(), p.stmt_count());
            assert_eq!(c.array_map.len(), p.arrays.len());
        }
    }

    #[test]
    fn idempotent() {
        let p = programs::tiled_two_index();
        let c1 = canonicalize(&p);
        let c2 = canonicalize(&c1.program);
        assert_eq!(c1.program, c2.program);
        assert_eq!(c1.hash, c2.hash);
    }

    #[test]
    fn renaming_loop_indices_is_invisible() {
        let mut p = programs::matmul();
        let c0 = canonicalize(&p);
        // Rename i/j/k -> a/b/c throughout (scoped walk unnecessary: names
        // are unique here).
        fn rename(n: &mut Node) {
            match n {
                Node::Loop(l) => {
                    let new = match l.index.name() {
                        "i" => "a",
                        "j" => "b",
                        "k" => "c",
                        other => other,
                    };
                    l.index = Sym::new(new);
                    for c in &mut l.body {
                        rename(c);
                    }
                }
                Node::Stmt(s) => {
                    for r in &mut s.refs {
                        for d in &mut r.dims {
                            for (idx, _) in &mut d.parts {
                                let new = match idx.name() {
                                    "i" => "a",
                                    "j" => "b",
                                    "k" => "c",
                                    other => other,
                                };
                                *idx = Sym::new(new);
                            }
                        }
                    }
                }
            }
        }
        for n in &mut p.root {
            rename(n);
        }
        let c1 = canonicalize(&p);
        assert_eq!(c0.program, c1.program);
        assert_eq!(c0.hash, c1.hash);
    }

    #[test]
    fn reordering_declarations_is_invisible() {
        let p = programs::matmul();
        let c0 = canonicalize(&p);
        // Reverse the declaration order and remap every reference.
        let n = p.arrays.len();
        let mut q = p.clone();
        q.arrays.reverse();
        for (k, a) in q.arrays.iter_mut().enumerate() {
            a.id = ArrayId(k);
        }
        fn remap(node: &mut Node, n: usize) {
            match node {
                Node::Loop(l) => {
                    for c in &mut l.body {
                        remap(c, n);
                    }
                }
                Node::Stmt(s) => {
                    for r in &mut s.refs {
                        r.array = ArrayId(n - 1 - r.array.0);
                    }
                }
            }
        }
        for node in &mut q.root {
            remap(node, n);
        }
        assert_eq!(q.validate(), Ok(()));
        let c1 = canonicalize(&q);
        assert_eq!(c0.program, c1.program);
        assert_eq!(c0.hash, c1.hash);
        // But the array correspondence differs.
        assert_ne!(c0.array_map, c1.array_map);
    }

    #[test]
    fn free_symbols_are_identity() {
        // Renaming a *free* symbol is a different shape on purpose.
        let p = programs::matmul();
        let mut q = p.clone();
        fn swap_bound(n: &mut Node) {
            if let Node::Loop(l) = n {
                if l.bound == Expr::var("Ni") {
                    l.bound = Expr::var("Mi");
                }
                for c in &mut l.body {
                    swap_bound(c);
                }
            }
        }
        for n in &mut q.root {
            swap_bound(n);
        }
        assert_ne!(p, q, "swap must have changed the program");
        assert_ne!(canonicalize(&p).hash, canonicalize(&q).hash);
    }

    #[test]
    fn structural_changes_change_the_hash() {
        let base = canonical_hash(&programs::matmul());
        assert_ne!(base, canonical_hash(&programs::tiled_matmul()));
        assert_ne!(base, canonical_hash(&programs::two_index_fused()));
    }

    #[test]
    fn hash_is_deterministic_and_nonzero() {
        // The hash keys external caches, so it must not depend on process
        // state (no `DefaultHasher`, no address-based identity).
        let h = canonical_hash(&programs::tiled_matmul());
        assert_eq!(h, canonical_hash(&programs::tiled_matmul()));
        assert_ne!(h, 0);
    }
}
