//! Applying linter fix-its to the loop tree: loop permutation and tiling of
//! a statement's **perfect segment**.
//!
//! The perfect segment of a statement is the maximal suffix `l_k .. l_n` of
//! its enclosing loop chain in which every loop except the innermost has
//! exactly one child (the next loop of the suffix). Every statement under
//! `l_k` therefore sits under the whole segment, which makes the segment the
//! largest band of loops that can be permuted — or strip-mined with the tile
//! loops hoisted to the top of the band — by rewriting loop headers alone,
//! without restructuring sibling statements.
//!
//! Neither function checks *dependence* legality; that is `sdlo-deps`'
//! [`permutation_legality`](../sdlo_deps/struct.DepGraph.html) /
//! [`tiling_legality`](../sdlo_deps/struct.DepGraph.html). These appliers
//! enforce only structural validity and return a fresh, validated program.

use crate::node::{DimExpr, Node};
use crate::program::{Program, StmtId, ValidateError};
use sdlo_symbolic::{Expr, Sym};
use std::collections::BTreeSet;

/// Error from [`apply_permute`] / [`apply_tile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// The statement does not exist.
    NoSuchStmt(StmtId),
    /// The requested order is not a permutation of the perfect segment.
    NotAPermutation,
    /// A loop named in a tiling request is not in the perfect segment.
    NotInSegment(Sym),
    /// A subscript using a tiled index has a non-unit stride (already
    /// tiled); re-tiling is unsupported.
    NonUnitStride(Sym),
    /// A generated loop index (`xT` / `xI`) collides with an existing one.
    NameClash(Sym),
    /// The rewritten program failed validation (indicates a bug here).
    Validate(ValidateError),
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::NoSuchStmt(s) => write!(f, "no statement S{}", s.0),
            ApplyError::NotAPermutation => {
                write!(f, "order is not a permutation of the perfect segment")
            }
            ApplyError::NotInSegment(s) => {
                write!(f, "loop `{s}` is not in the statement's perfect segment")
            }
            ApplyError::NonUnitStride(s) => {
                write!(f, "subscripts using `{s}` have non-unit stride")
            }
            ApplyError::NameClash(s) => {
                write!(
                    f,
                    "generated loop index `{s}` collides with an existing name"
                )
            }
            ApplyError::Validate(e) => write!(f, "rewritten program is invalid: {e}"),
        }
    }
}

impl std::error::Error for ApplyError {}

/// Child-index path from `program.root` down to the statement node.
fn path_to_stmt(program: &Program, stmt: StmtId) -> Option<Vec<usize>> {
    fn rec(nodes: &[Node], stmt: StmtId, path: &mut Vec<usize>) -> bool {
        for (i, n) in nodes.iter().enumerate() {
            path.push(i);
            match n {
                Node::Stmt(s) if s.id == stmt => return true,
                Node::Loop(l) => {
                    if rec(&l.body, stmt, path) {
                        return true;
                    }
                }
                Node::Stmt(_) => {}
            }
            path.pop();
        }
        false
    }
    let mut path = Vec::new();
    rec(&program.root, stmt, &mut path).then_some(path)
}

/// The perfect segment of `stmt`: index names of the maximal permutable
/// loop band ending at the statement's innermost enclosing loop, outermost
/// first. Empty when the statement sits outside any loop; `None` when the
/// statement does not exist.
pub fn perfect_segment(program: &Program, stmt: StmtId) -> Option<Vec<Sym>> {
    let path = path_to_stmt(program, stmt)?;
    let mut cur = &program.root;
    let mut chain: Vec<(Sym, usize)> = Vec::new();
    for p in &path[..path.len().saturating_sub(1)] {
        let Node::Loop(l) = &cur[*p] else {
            return None;
        };
        chain.push((l.index.clone(), l.body.len()));
        cur = &l.body;
    }
    let n = chain.len();
    if n == 0 {
        return Some(Vec::new());
    }
    let mut k = n - 1; // the innermost loop is always in its own segment
    while k > 0 && chain[k - 1].1 == 1 {
        k -= 1;
    }
    Some(chain[k..].iter().map(|(s, _)| s.clone()).collect())
}

/// Reorder the perfect segment around `stmt` to `order` (outermost first).
/// Only loop headers move: bodies, statements and subscripts are untouched,
/// which is exactly loop interchange over a perfect band.
pub fn apply_permute(
    program: &Program,
    stmt: StmtId,
    order: &[Sym],
) -> Result<Program, ApplyError> {
    let seg = perfect_segment(program, stmt).ok_or(ApplyError::NoSuchStmt(stmt))?;
    if order.len() != seg.len()
        || !seg.iter().all(|s| order.contains(s))
        || !order.iter().all(|s| seg.contains(s))
    {
        return Err(ApplyError::NotAPermutation);
    }
    let path = path_to_stmt(program, stmt).ok_or(ApplyError::NoSuchStmt(stmt))?;
    let chain_len = path.len() - 1;
    let seg_start = chain_len - seg.len();

    // Collect each segment loop's bound, keyed by index name.
    let mut bounds: Vec<(Sym, Expr)> = Vec::new();
    let mut cur = &program.root;
    for (depth, p) in path[..chain_len].iter().enumerate() {
        let Node::Loop(l) = &cur[*p] else {
            unreachable!("path_to_stmt returns loop-only prefixes");
        };
        if depth >= seg_start {
            bounds.push((l.index.clone(), l.bound.clone()));
        }
        cur = &l.body;
    }

    let mut out = program.clone();
    let mut cur = &mut out.root;
    for (depth, p) in path[..chain_len].iter().enumerate() {
        let Node::Loop(l) = &mut cur[*p] else {
            unreachable!("path_to_stmt returns loop-only prefixes");
        };
        if depth >= seg_start {
            let s = &order[depth - seg_start];
            let (_, bound) = bounds
                .iter()
                .find(|(idx, _)| idx == s)
                .expect("order is a permutation of the segment");
            l.index = s.clone();
            l.bound = bound.clone();
        }
        cur = &mut l.body;
    }
    out.validate().map_err(ApplyError::Validate)?;
    Ok(out)
}

/// Strip-mine the loops named in `tiles` (pairs of segment loop index →
/// tile-size symbol), hoisting the new tile loops `xT` to the top of the
/// perfect segment in segment order and shrinking each tiled loop to an
/// intra-tile loop `xI` in place. Subscripts `(x, 1)` become
/// `(xT, Tx), (xI, 1)` pairs and tiled array extents are padded to whole
/// tiles — the imperfect-nest generalization of
/// [`tile_perfect_nest`](crate::tile_perfect_nest).
pub fn apply_tile(
    program: &Program,
    stmt: StmtId,
    tiles: &[(Sym, Sym)],
) -> Result<Program, ApplyError> {
    let seg = perfect_segment(program, stmt).ok_or(ApplyError::NoSuchStmt(stmt))?;
    for (x, _) in tiles {
        if !seg.contains(x) {
            return Err(ApplyError::NotInSegment(x.clone()));
        }
    }
    let path = path_to_stmt(program, stmt).ok_or(ApplyError::NoSuchStmt(stmt))?;
    let chain_len = path.len() - 1;
    let seg_start = chain_len - seg.len();

    // Generated names must be fresh among all loop indices and free symbols.
    let mut taken: BTreeSet<Sym> = program.free_symbols();
    fn indices(nodes: &[Node], out: &mut BTreeSet<Sym>) {
        for n in nodes {
            if let Node::Loop(l) = n {
                out.insert(l.index.clone());
                indices(&l.body, out);
            }
        }
    }
    indices(&program.root, &mut taken);
    let tile_for = |x: &Sym| -> Option<&Sym> { tiles.iter().find(|(i, _)| i == x).map(|(_, t)| t) };
    for (x, _) in tiles {
        for gen in [format!("{x}T"), format!("{x}I")] {
            let gen = Sym::new(gen);
            if taken.contains(&gen) {
                return Err(ApplyError::NameClash(gen));
            }
        }
    }

    let mut out = program.clone();

    // Detach the segment's outermost loop, peel the segment chain off it,
    // and rebuild: tile loops (segment order) outermost, then the original
    // segment with tiled loops shrunk to their intra loops. Padding and
    // subscript rewriting stay scoped to this subtree — sibling nests may
    // legally reuse a tiled index name and must not be touched.
    let mut cur = &mut out.root;
    for p in &path[..seg_start] {
        let Node::Loop(l) = &mut cur[*p] else {
            unreachable!("path_to_stmt returns loop-only prefixes");
        };
        cur = &mut l.body;
    }
    let outer_pos = path[seg_start];
    let placeholder = Node::loop_("__apply_tile_hole", Expr::one(), Vec::new());
    let mut rest = std::mem::replace(&mut cur[outer_pos], placeholder);
    let mut headers: Vec<(Sym, Expr)> = Vec::with_capacity(seg.len());
    let mut inner_body = Vec::new();
    for level in 0..seg.len() {
        let Node::Loop(l) = rest else {
            unreachable!("segment chain is loop-only");
        };
        headers.push((l.index, l.bound));
        let mut body = l.body;
        if level + 1 < seg.len() {
            debug_assert_eq!(body.len(), 1, "segment loops have a single child");
            rest = body.pop().expect("non-empty segment body");
        } else {
            inner_body = body;
            rest = Node::loop_("__apply_tile_done", Expr::one(), Vec::new());
        }
    }
    let _ = rest;

    // Pad tiled array extents (once per array dimension and tile variable)
    // and rewrite the subtree's subscripts.
    let mut padded: BTreeSet<(usize, usize, Sym)> = BTreeSet::new();
    fn scan(
        nodes: &[Node],
        tiles: &[(Sym, Sym)],
        padded: &mut BTreeSet<(usize, usize, Sym)>,
    ) -> Result<(), ApplyError> {
        for n in nodes {
            match n {
                Node::Loop(l) => scan(&l.body, tiles, padded)?,
                Node::Stmt(s) => {
                    for r in &s.refs {
                        for (d, dim) in r.dims.iter().enumerate() {
                            for (idx, stride) in &dim.parts {
                                if let Some((_, t)) = tiles.iter().find(|(i, _)| i == idx) {
                                    if stride.as_const() != Some(1) {
                                        return Err(ApplyError::NonUnitStride(idx.clone()));
                                    }
                                    padded.insert((r.array.0, d, t.clone()));
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
    scan(&inner_body, tiles, &mut padded)?;
    for (a, d, t) in &padded {
        let orig = out.arrays[*a].dims[*d].clone();
        out.arrays[*a].dims[*d] = orig.ceil_div(&Expr::var(t.name())) * Expr::var(t.name());
    }
    fn rewrite(nodes: &mut [Node], tiles: &[(Sym, Sym)]) {
        for n in nodes {
            match n {
                Node::Loop(l) => rewrite(&mut l.body, tiles),
                Node::Stmt(s) => {
                    for r in &mut s.refs {
                        for dim in &mut r.dims {
                            let mut parts = Vec::new();
                            for (idx, stride) in &dim.parts {
                                match tiles.iter().find(|(i, _)| i == idx) {
                                    Some((_, t)) => {
                                        parts.push((
                                            Sym::new(format!("{idx}T")),
                                            Expr::var(t.name()),
                                        ));
                                        parts.push((Sym::new(format!("{idx}I")), Expr::one()));
                                    }
                                    None => parts.push((idx.clone(), stride.clone())),
                                }
                            }
                            *dim = DimExpr { parts };
                        }
                    }
                }
            }
        }
    }
    let mut body = inner_body;
    rewrite(&mut body, tiles);
    for (idx, bound) in headers.iter().rev() {
        let node = match tile_for(idx) {
            Some(t) => Node::loop_(format!("{idx}I"), Expr::var(t.name()), body),
            None => Node::loop_(idx.clone(), bound.clone(), body),
        };
        body = vec![node];
    }
    for (idx, bound) in headers.iter().rev() {
        if let Some(t) = tile_for(idx) {
            body = vec![Node::loop_(
                format!("{idx}T"),
                bound.ceil_div(&Expr::var(t.name())),
                body,
            )];
        }
    }
    cur[outer_pos] = body.pop().expect("segment rebuild yields one root");
    out.validate().map_err(ApplyError::Validate)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use crate::{execute, Bindings, CompiledProgram, Memory};

    #[test]
    fn segments_of_builtins() {
        let seg = |p: &Program, s: usize| {
            perfect_segment(p, StmtId(s))
                .unwrap()
                .iter()
                .map(|x| x.name().to_string())
                .collect::<Vec<_>>()
        };
        let p = programs::matmul();
        assert_eq!(seg(&p, 0), ["i", "j", "k"]);
        let p = programs::two_index_fused();
        assert_eq!(seg(&p, 0), ["i", "n"]);
        assert_eq!(seg(&p, 1), ["j"]);
        assert_eq!(seg(&p, 2), ["m"]);
        let p = programs::tiled_two_index();
        assert_eq!(seg(&p, 3), ["mT", "iI", "nI", "mI"]);
        assert!(perfect_segment(&p, StmtId(99)).is_none());
    }

    #[test]
    fn permute_matmul_reorders_headers_only() {
        let p = programs::matmul();
        let order: Vec<Sym> = ["k", "i", "j"].iter().map(Sym::new).collect();
        let q = apply_permute(&p, StmtId(0), &order).unwrap();
        let text = q.render();
        let pos = |needle: &str| text.find(needle).unwrap();
        assert!(pos("for k") < pos("for i"), "{text}");
        assert!(pos("for i") < pos("for j"), "{text}");
        // Same trace multiset: execution produces identical results.
        let b = Bindings::new().with("Ni", 5).with("Nj", 4).with("Nk", 3);
        let cp = CompiledProgram::compile(&p, &b).unwrap();
        let cq = CompiledProgram::compile(&q, &b).unwrap();
        let mut mp = Memory::zeroed(&cp);
        let mut mq = Memory::zeroed(&cq);
        for (prog, m) in [(&p, &mut mp), (&q, &mut mq)] {
            for name in ["A", "B"] {
                let id = prog.array_by_name(name).unwrap().id;
                m.fill_with(id, |i| ((i * 7 + 3) % 13) as f64);
            }
        }
        execute(&cp, &mut mp).unwrap();
        execute(&cq, &mut mq).unwrap();
        assert_eq!(
            mp.array(p.array_by_name("C").unwrap().id),
            mq.array(q.array_by_name("C").unwrap().id)
        );
    }

    #[test]
    fn permute_rejects_non_permutations() {
        let p = programs::matmul();
        let order: Vec<Sym> = ["i", "j"].iter().map(Sym::new).collect();
        assert_eq!(
            apply_permute(&p, StmtId(0), &order),
            Err(ApplyError::NotAPermutation)
        );
        let order: Vec<Sym> = ["i", "j", "z"].iter().map(Sym::new).collect();
        assert_eq!(
            apply_permute(&p, StmtId(0), &order),
            Err(ApplyError::NotAPermutation)
        );
    }

    #[test]
    fn tile_matmul_matches_tile_perfect_nest() {
        let p = programs::matmul();
        let tiles: Vec<(Sym, Sym)> = [("i", "Ti"), ("j", "Tj"), ("k", "Tk")]
            .iter()
            .map(|(a, b)| (Sym::new(*a), Sym::new(*b)))
            .collect();
        let via_apply = apply_tile(&p, StmtId(0), &tiles).unwrap();
        let via_nest =
            crate::tile_perfect_nest(&p, &[("i", "Ti"), ("j", "Tj"), ("k", "Tk")]).unwrap();
        assert_eq!(via_apply.root, via_nest.root);
        assert_eq!(via_apply.arrays.len(), via_nest.arrays.len());
        for (a, b) in via_apply.arrays.iter().zip(&via_nest.arrays) {
            assert_eq!(a.dims, b.dims);
        }
    }

    #[test]
    fn tile_imperfect_segment_keeps_siblings() {
        // two_index_fused S1's segment is just `j`; tiling it inserts jT
        // directly around the shrunk j-intra loop without disturbing the
        // sibling statements under `n`.
        let p = programs::two_index_fused();
        let tiles = vec![(Sym::new("j"), Sym::new("Tj"))];
        let q = apply_tile(&p, StmtId(1), &tiles).unwrap();
        q.validate().unwrap();
        let text = q.render();
        assert!(text.contains("for jT"), "{text}");
        assert!(text.contains("for jI"), "{text}");
        assert_eq!(q.stmt_count(), p.stmt_count());
        // Execution equivalence when the tile divides the bound.
        let b = Bindings::new()
            .with("Ni", 3)
            .with("Nn", 4)
            .with("Nj", 6)
            .with("Nm", 2)
            .with("Tj", 3);
        let cp = CompiledProgram::compile(&p, &b).unwrap();
        let cq = CompiledProgram::compile(&q, &b).unwrap();
        let mut mp = Memory::zeroed(&cp);
        let mut mq = Memory::zeroed(&cq);
        for (prog, m) in [(&p, &mut mp), (&q, &mut mq)] {
            for a in &prog.arrays {
                if a.name.name() != "T"
                    && !prog.stmts().iter().any(|s| {
                        s.refs
                            .first()
                            .is_some_and(|r| r.array == a.id && r.is_write)
                    })
                {
                    m.fill_with(a.id, |i| ((i * 5 + 1) % 9) as f64);
                }
            }
        }
        execute(&cp, &mut mp).unwrap();
        execute(&cq, &mut mq).unwrap();
        for a in &p.arrays {
            let qa = q.array_by_name(a.name.name()).unwrap();
            assert_eq!(mp.array(a.id), mq.array(qa.id), "array {}", a.name);
        }
    }

    #[test]
    fn tile_rejects_out_of_segment_loops() {
        let p = programs::two_index_fused();
        let tiles = vec![(Sym::new("i"), Sym::new("Ti"))];
        assert_eq!(
            apply_tile(&p, StmtId(1), &tiles),
            Err(ApplyError::NotInSegment(Sym::new("i")))
        );
    }

    #[test]
    fn tile_rejects_name_clashes() {
        // tiled_two_index already has loops named iT/iI … tiling mI would
        // generate mIT/mII (fresh), but tiling a synthetic loop named `i`
        // when `iT` exists must fail. Build that case directly.
        let p = programs::tiled_two_index();
        let tiles = vec![(Sym::new("mI"), Sym::new("TmI"))];
        let q = apply_tile(&p, StmtId(3), &tiles).unwrap();
        assert!(q.render().contains("for mIT"), "{}", q.render());
    }
}
