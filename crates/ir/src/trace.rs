//! Compilation of a [`Program`] against concrete bindings into a flat,
//! allocation-free walker that streams the program's exact memory reference
//! trace.
//!
//! The paper validates its analytical model against a trace-driven simulator
//! (SimpleScalar's `sim-cache`). Our traces come straight from the IR: every
//! statement instance emits one [`Access`] per array reference, in reference
//! order. Traces for the paper's configurations reach hundreds of millions of
//! accesses, so they are *never* materialized — the walker invokes a callback
//! per access, and all per-access address arithmetic is pre-folded into
//! affine `(loop-slot, coefficient)` terms at compile time.

use crate::node::{Node, StmtKind};
use crate::program::{ArrayId, Program, StmtId};
use sdlo_symbolic::Bindings;

/// One memory reference of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The array referenced.
    pub array: ArrayId,
    /// Global element address (arrays laid out back-to-back, element units).
    pub addr: u64,
    /// Whether this reference writes.
    pub is_write: bool,
    /// The statement performing the access.
    pub stmt: StmtId,
}

/// Errors from [`CompiledProgram::compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A bound, stride or extent failed to evaluate.
    Eval(sdlo_symbolic::EvalError),
    /// A loop bound or array extent evaluated to a non-positive value.
    NonPositive { what: String, value: i64 },
    /// A reference can address past the end of its array.
    OutOfRange {
        array: String,
        max_index: u64,
        size: u64,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Eval(e) => write!(f, "evaluation failed: {e}"),
            CompileError::NonPositive { what, value } => {
                write!(f, "{what} evaluated to non-positive value {value}")
            }
            CompileError::OutOfRange {
                array,
                max_index,
                size,
            } => write!(
                f,
                "reference to `{array}` reaches element {max_index}, array has {size}"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<sdlo_symbolic::EvalError> for CompileError {
    fn from(e: sdlo_symbolic::EvalError) -> Self {
        CompileError::Eval(e)
    }
}

/// An array with concrete extents and a base address in the global element
/// address space.
#[derive(Debug, Clone)]
pub struct CompiledArray {
    /// Original id.
    pub id: ArrayId,
    /// First element's global address.
    pub base: u64,
    /// Concrete extents, row-major.
    pub dims: Vec<u64>,
    /// Total elements.
    pub size: u64,
}

/// Pre-folded affine reference: `addr = base + Σ coef·iv[slot]` where
/// `iv[slot]` is the 0-based counter of the loop occupying `slot`.
#[derive(Debug, Clone)]
pub(crate) struct CRef {
    pub array: ArrayId,
    pub is_write: bool,
    pub base: u64,
    pub terms: Vec<(usize, u64)>,
}

#[derive(Debug, Clone)]
pub(crate) enum CNode {
    Loop {
        bound: u64,
        slot: usize,
        body: Vec<CNode>,
    },
    Stmt {
        stmt: StmtId,
        kind: StmtKind,
        refs: Vec<CRef>,
    },
}

/// A program specialized to concrete bounds/tile sizes, ready to stream its
/// reference trace or be executed.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    pub(crate) arrays: Vec<CompiledArray>,
    pub(crate) root: Vec<CNode>,
    pub(crate) n_slots: usize,
    total_accesses: u64,
}

impl CompiledProgram {
    /// Specialize `program` to `bindings` (which must bind every free symbol).
    pub fn compile(program: &Program, bindings: &Bindings) -> Result<Self, CompileError> {
        // Lay arrays out back-to-back in one element address space.
        let mut arrays = Vec::with_capacity(program.arrays.len());
        let mut base = 0u64;
        for decl in &program.arrays {
            let mut dims = Vec::with_capacity(decl.dims.len());
            for d in &decl.dims {
                let v = d.eval(bindings)?;
                if v <= 0 {
                    return Err(CompileError::NonPositive {
                        what: format!("extent of `{}`", decl.name),
                        value: v,
                    });
                }
                dims.push(v as u64);
            }
            let size = dims.iter().product::<u64>();
            arrays.push(CompiledArray {
                id: decl.id,
                base,
                dims,
                size,
            });
            base += size;
        }

        struct Ctx<'a> {
            program: &'a Program,
            bindings: &'a Bindings,
            arrays: &'a [CompiledArray],
            // (index, slot, bound) for enclosing loops.
            loops: Vec<(sdlo_symbolic::Sym, usize, u64)>,
            n_slots: usize,
            total: u64,
        }

        fn compile_node(node: &Node, ctx: &mut Ctx<'_>) -> Result<CNode, CompileError> {
            match node {
                Node::Loop(l) => {
                    let b = l.bound.eval(ctx.bindings)?;
                    if b <= 0 {
                        return Err(CompileError::NonPositive {
                            what: format!("bound of loop `{}`", l.index),
                            value: b,
                        });
                    }
                    let slot = ctx.loops.len();
                    ctx.n_slots = ctx.n_slots.max(slot + 1);
                    ctx.loops.push((l.index.clone(), slot, b as u64));
                    let body = l
                        .body
                        .iter()
                        .map(|n| compile_node(n, ctx))
                        .collect::<Result<Vec<_>, _>>()?;
                    ctx.loops.pop();
                    Ok(CNode::Loop {
                        bound: b as u64,
                        slot,
                        body,
                    })
                }
                Node::Stmt(s) => {
                    let mut iterations = 1u64;
                    for (_, _, b) in &ctx.loops {
                        iterations = iterations.saturating_mul(*b);
                    }
                    ctx.total = ctx
                        .total
                        .saturating_add(iterations.saturating_mul(s.refs.len() as u64));
                    let mut refs = Vec::with_capacity(s.refs.len());
                    for r in &s.refs {
                        let arr = &ctx.arrays[r.array.0];
                        // Row-major factors: factor[d] = product of extents after d.
                        let mut factor = vec![1u64; arr.dims.len()];
                        for d in (0..arr.dims.len().saturating_sub(1)).rev() {
                            factor[d] = factor[d + 1] * arr.dims[d + 1];
                        }
                        let mut terms: Vec<(usize, u64)> = Vec::new();
                        let mut max_linear = 0u64;
                        for (d, dim) in r.dims.iter().enumerate() {
                            for (idx, stride) in &dim.parts {
                                let (_, slot, bound) = ctx
                                    .loops
                                    .iter()
                                    .find(|(s2, _, _)| s2 == idx)
                                    .expect("validated: index bound by enclosing loop");
                                let stride = stride.eval(ctx.bindings)?;
                                if stride <= 0 {
                                    return Err(CompileError::NonPositive {
                                        what: format!("stride of `{idx}`"),
                                        value: stride,
                                    });
                                }
                                let coef = stride as u64 * factor[d];
                                max_linear += (bound - 1) * coef;
                                match terms.iter_mut().find(|(s3, _)| *s3 == *slot) {
                                    Some(t) => t.1 += coef,
                                    None => terms.push((*slot, coef)),
                                }
                            }
                        }
                        if max_linear >= arr.size {
                            let name = ctx.program.array(r.array).name.clone();
                            return Err(CompileError::OutOfRange {
                                array: name.name().to_string(),
                                max_index: max_linear,
                                size: arr.size,
                            });
                        }
                        refs.push(CRef {
                            array: r.array,
                            is_write: r.is_write,
                            base: arr.base,
                            terms,
                        });
                    }
                    Ok(CNode::Stmt {
                        stmt: s.id,
                        kind: s.kind,
                        refs,
                    })
                }
            }
        }

        let mut ctx = Ctx {
            program,
            bindings,
            arrays: &arrays,
            loops: Vec::new(),
            n_slots: 0,
            total: 0,
        };
        let root = program
            .root
            .iter()
            .map(|n| compile_node(n, &mut ctx))
            .collect::<Result<Vec<_>, _>>()?;
        let (n_slots, total_accesses) = (ctx.n_slots, ctx.total);
        Ok(CompiledProgram {
            arrays,
            root,
            n_slots,
            total_accesses,
        })
    }

    /// Array layout produced by compilation.
    pub fn arrays(&self) -> &[CompiledArray] {
        &self.arrays
    }

    /// Total number of accesses the trace will contain.
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Total elements across all arrays (footprint, element units).
    pub fn total_elements(&self) -> u64 {
        self.arrays.iter().map(|a| a.size).sum()
    }

    /// Stream the reference trace, invoking `f` once per access in exact
    /// program execution order.
    pub fn walk(&self, f: &mut impl FnMut(Access)) {
        let mut iv = vec![0u64; self.n_slots];
        for n in &self.root {
            walk_node(n, &mut iv, f);
        }
    }
}

fn walk_node(node: &CNode, iv: &mut [u64], f: &mut impl FnMut(Access)) {
    match node {
        CNode::Loop { bound, slot, body } => {
            for i in 0..*bound {
                iv[*slot] = i;
                for n in body {
                    walk_node(n, iv, f);
                }
            }
        }
        CNode::Stmt { stmt, refs, .. } => {
            for r in refs {
                let mut addr = r.base;
                for (slot, coef) in &r.terms {
                    addr += iv[*slot] * coef;
                }
                f(Access {
                    array: r.array,
                    addr,
                    is_write: r.is_write,
                    stmt: *stmt,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use sdlo_symbolic::Expr;

    #[test]
    fn matmul_trace_has_expected_length_and_addresses() {
        let p = programs::matmul();
        let b = Bindings::new().with("Ni", 3).with("Nj", 3).with("Nk", 3);
        let c = CompiledProgram::compile(&p, &b).unwrap();
        // N^2 zero stmts (1 ref) + N^3 mul-add stmts (3 refs each... C read+write
        // folded to refs in access order).
        let mut n = 0u64;
        let mut max_addr = 0;
        c.walk(&mut |a| {
            n += 1;
            max_addr = max_addr.max(a.addr);
        });
        assert_eq!(n, c.total_accesses());
        assert!(max_addr < c.total_elements());
    }

    #[test]
    fn addresses_are_row_major() {
        // A[i,j] with N=2: addresses 0,1,2,3 as (i,j) = (1,1),(1,2),(2,1),(2,2).
        let mut p = Program::new("rm");
        let a = p.declare("A", vec![Expr::var("N"), Expr::var("N")]);
        p.root = vec![Node::loop_(
            "i",
            Expr::var("N"),
            vec![Node::loop_(
                "j",
                Expr::var("N"),
                vec![Node::Stmt(crate::Stmt {
                    id: StmtId(0),
                    label: "A[i,j] = 0".into(),
                    refs: vec![crate::ArrayRef::write(
                        a,
                        vec![crate::DimExpr::index("i"), crate::DimExpr::index("j")],
                    )],
                    kind: StmtKind::ZeroLhs,
                })],
            )],
        )];
        p.validate().unwrap();
        let c = CompiledProgram::compile(&p, &Bindings::new().with("N", 2)).unwrap();
        let mut addrs = vec![];
        c.walk(&mut |a| addrs.push(a.addr));
        assert_eq!(addrs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn tiled_dims_fold_to_affine_addresses() {
        // A[iT+iI] with N=4, Ti=2 must produce 0,1,2,3 across the two tiles.
        let ti = Expr::var("Ti");
        let mut p = Program::new("tiled1d");
        let a = p.declare("A", vec![Expr::var("N")]);
        p.root = vec![Node::loop_(
            "iT",
            Expr::var("N").ceil_div(&ti),
            vec![Node::loop_(
                "iI",
                ti.clone(),
                vec![Node::Stmt(crate::Stmt {
                    id: StmtId(0),
                    label: "A[iT+iI] = 0".into(),
                    refs: vec![crate::ArrayRef::write(
                        a,
                        vec![crate::DimExpr::tiled("iT", ti.clone(), "iI")],
                    )],
                    kind: StmtKind::ZeroLhs,
                })],
            )],
        )];
        p.validate().unwrap();
        let c = CompiledProgram::compile(&p, &Bindings::new().with("N", 4).with("Ti", 2)).unwrap();
        let mut addrs = vec![];
        c.walk(&mut |a| addrs.push(a.addr));
        assert_eq!(addrs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn compile_rejects_missing_binding() {
        let p = programs::matmul();
        assert!(matches!(
            CompiledProgram::compile(&p, &Bindings::new()),
            Err(CompileError::Eval(_))
        ));
    }

    #[test]
    fn compile_rejects_out_of_range() {
        // A declared with extent N but indexed by i in 1..=2N.
        let mut p = Program::new("oor");
        let a = p.declare("A", vec![Expr::var("N")]);
        p.root = vec![Node::loop_(
            "i",
            Expr::var("N") * Expr::from(2),
            vec![Node::Stmt(crate::Stmt {
                id: StmtId(0),
                label: "A[i] = 0".into(),
                refs: vec![crate::ArrayRef::write(a, vec![crate::DimExpr::index("i")])],
                kind: StmtKind::ZeroLhs,
            })],
        )];
        assert!(matches!(
            CompiledProgram::compile(&p, &Bindings::new().with("N", 4)),
            Err(CompileError::OutOfRange { .. })
        ));
    }
}
