//! Builders for the paper's workloads.
//!
//! * [`matmul`] / [`tiled_matmul`] — Fig. 2/8: `C[i,k] += A[i,j] * B[j,k]`,
//!   untiled (loop order `i, j, k`) and tiled (`iT, jT, kT, iI, jI, kI`).
//! * [`two_index_unfused`] — Fig. 1(a): the two-index transform with a full
//!   `T[Nn, Ni]` intermediate array.
//! * [`two_index_fused`] — Fig. 1(c): loops `i, n` fused, `T` contracted to a
//!   scalar.
//! * [`tiled_two_index`] — Fig. 6: the tiled two-index transform with a
//!   tile-local `T[Ti, Tn]` buffer, the paper's main workload.
//!
//! All tiled builders pad array extents to whole tiles
//! (`ceil(N/T)*T`), matching the model's whole-tile iteration spaces.

use crate::node::{ArrayRef, DimExpr, Node, Stmt, StmtKind};
use crate::program::{Program, StmtId};
use sdlo_symbolic::Expr;

fn v(name: &str) -> Expr {
    Expr::var(name)
}

/// Names of all builtin workloads, in presentation order. Tools that accept a
/// program by name (the service's ops, `tables lint`) resolve against this
/// list via [`builtin`].
pub const BUILTIN_NAMES: [&str; 5] = [
    "matmul",
    "tiled_matmul",
    "two_index_unfused",
    "two_index_fused",
    "tiled_two_index",
];

/// Look up a builtin workload by its [`BUILTIN_NAMES`] entry.
pub fn builtin(name: &str) -> Option<Program> {
    match name {
        "matmul" => Some(matmul()),
        "tiled_matmul" => Some(tiled_matmul()),
        "two_index_unfused" => Some(two_index_unfused()),
        "two_index_fused" => Some(two_index_fused()),
        "tiled_two_index" => Some(tiled_two_index()),
        _ => None,
    }
}

/// Padded extent `ceil(bound/tile)*tile` for tiled array dimensions.
fn padded(bound: &str, tile: &str) -> Expr {
    v(bound).ceil_div(&v(tile)) * v(tile)
}

struct StmtFactory {
    next: usize,
}

impl StmtFactory {
    fn new() -> Self {
        StmtFactory { next: 0 }
    }

    fn stmt(&mut self, label: &str, kind: StmtKind, refs: Vec<ArrayRef>) -> Node {
        let id = StmtId(self.next);
        self.next += 1;
        Node::Stmt(Stmt {
            id,
            label: label.to_string(),
            refs,
            kind,
        })
    }
}

/// Untiled matrix multiplication, loop order `i, j, k` (paper Fig. 8):
///
/// ```text
/// for i = 1..=Ni, j = 1..=Nj, k = 1..=Nk:
///     C[i,k] += A[i,j] * B[j,k]
/// ```
///
/// Free symbols: `Ni`, `Nj`, `Nk` (bind them equal for the paper's square
/// cases).
pub fn matmul() -> Program {
    let mut p = Program::new("matmul");
    let c = p.declare("C", vec![v("Ni"), v("Nk")]);
    let a = p.declare("A", vec![v("Ni"), v("Nj")]);
    let b = p.declare("B", vec![v("Nj"), v("Nk")]);
    let mut f = StmtFactory::new();
    let body = f.stmt(
        "C[i,k] += A[i,j] * B[j,k]",
        StmtKind::MulAddAssign,
        vec![
            ArrayRef::write(c, vec![DimExpr::index("i"), DimExpr::index("k")]),
            ArrayRef::read(a, vec![DimExpr::index("i"), DimExpr::index("j")]),
            ArrayRef::read(b, vec![DimExpr::index("j"), DimExpr::index("k")]),
        ],
    );
    p.root = vec![Node::loop_(
        "i",
        v("Ni"),
        vec![Node::loop_(
            "j",
            v("Nj"),
            vec![Node::loop_("k", v("Nk"), vec![body])],
        )],
    )];
    debug_assert_eq!(p.validate(), Ok(()));
    p
}

/// Tiled matrix multiplication (paper Fig. 2, the Table 1/3 workload):
///
/// ```text
/// for iT, jT, kT:            # ceil(N/T) tile origins each
///   for iI, jI, kI:          # Ti, Tj, Tk iterations each
///     C[iT+iI, kT+kI] += A[iT+iI, jT+jI] * B[jT+jI, kT+kI]
/// ```
///
/// Free symbols: bounds `Ni, Nj, Nk`; tile sizes `Ti, Tj, Tk`.
pub fn tiled_matmul() -> Program {
    let mut p = Program::new("tiled-matmul");
    let c = p.declare("C", vec![padded("Ni", "Ti"), padded("Nk", "Tk")]);
    let a = p.declare("A", vec![padded("Ni", "Ti"), padded("Nj", "Tj")]);
    let b = p.declare("B", vec![padded("Nj", "Tj"), padded("Nk", "Tk")]);
    let (ti, tj, tk) = (v("Ti"), v("Tj"), v("Tk"));
    let di = DimExpr::tiled("iT", ti.clone(), "iI");
    let dj = DimExpr::tiled("jT", tj.clone(), "jI");
    let dk = DimExpr::tiled("kT", tk.clone(), "kI");
    let mut f = StmtFactory::new();
    let body = f.stmt(
        "C[iT+iI,kT+kI] += A[iT+iI,jT+jI] * B[jT+jI,kT+kI]",
        StmtKind::MulAddAssign,
        vec![
            ArrayRef::write(c, vec![di.clone(), dk.clone()]),
            ArrayRef::read(a, vec![di, dj.clone()]),
            ArrayRef::read(b, vec![dj, dk]),
        ],
    );
    let inner = Node::loop_(
        "iI",
        ti.clone(),
        vec![Node::loop_(
            "jI",
            tj.clone(),
            vec![Node::loop_("kI", tk.clone(), vec![body])],
        )],
    );
    p.root = vec![Node::loop_(
        "iT",
        v("Ni").ceil_div(&ti),
        vec![Node::loop_(
            "jT",
            v("Nj").ceil_div(&tj),
            vec![Node::loop_("kT", v("Nk").ceil_div(&tk), vec![inner])],
        )],
    )];
    debug_assert_eq!(p.validate(), Ok(()));
    p
}

/// Unfused two-index transform (paper Fig. 1(a)): full intermediate
/// `T[Nn, Ni]`.
///
/// ```text
/// for i, n, j:  T[n,i] += C2[n,j] * A[i,j]
/// for i, n, m:  B[m,n] += C1[m,i] * T[n,i]
/// ```
///
/// Free symbols: `Ni, Nj, Nm, Nn`. (The paper's `V`/`N` orbital ranges map to
/// these bounds.)
pub fn two_index_unfused() -> Program {
    let mut p = Program::new("two-index-unfused");
    let t = p.declare("T", vec![v("Nn"), v("Ni")]);
    let b = p.declare("B", vec![v("Nm"), v("Nn")]);
    let a = p.declare("A", vec![v("Ni"), v("Nj")]);
    let c2 = p.declare("C2", vec![v("Nn"), v("Nj")]);
    let c1 = p.declare("C1", vec![v("Nm"), v("Ni")]);
    let mut f = StmtFactory::new();
    let s1 = f.stmt(
        "T[n,i] += C2[n,j] * A[i,j]",
        StmtKind::MulAddAssign,
        vec![
            ArrayRef::write(t, vec![DimExpr::index("n"), DimExpr::index("i")]),
            ArrayRef::read(c2, vec![DimExpr::index("n"), DimExpr::index("j")]),
            ArrayRef::read(a, vec![DimExpr::index("i"), DimExpr::index("j")]),
        ],
    );
    let s2 = f.stmt(
        "B[m,n] += C1[m,i] * T[n,i]",
        StmtKind::MulAddAssign,
        vec![
            ArrayRef::write(b, vec![DimExpr::index("m"), DimExpr::index("n")]),
            ArrayRef::read(c1, vec![DimExpr::index("m"), DimExpr::index("i")]),
            ArrayRef::read(t, vec![DimExpr::index("n"), DimExpr::index("i")]),
        ],
    );
    p.root = vec![
        Node::loop_(
            "i",
            v("Ni"),
            vec![Node::loop_(
                "n",
                v("Nn"),
                vec![Node::loop_("j", v("Nj"), vec![s1])],
            )],
        ),
        // Sibling nest reuses names `i`, `n` (distinct loops; matching names
        // let the analysis relate T's producer and consumer instances).
        Node::loop_(
            "i",
            v("Ni"),
            vec![Node::loop_(
                "n",
                v("Nn"),
                vec![Node::loop_("m", v("Nm"), vec![s2])],
            )],
        ),
    ];
    debug_assert_eq!(p.validate(), Ok(()));
    p
}

/// Fused two-index transform (paper Fig. 1(c)): loops `i, n` fused across the
/// two contractions, `T` contracted to a scalar.
///
/// ```text
/// for i, n:
///   T = 0
///   for j:  T += C2[n,j] * A[i,j]
///   for m:  B[m,n] += C1[m,i] * T
/// ```
pub fn two_index_fused() -> Program {
    let mut p = Program::new("two-index-fused");
    let t = p.declare("T", vec![Expr::one()]);
    let b = p.declare("B", vec![v("Nm"), v("Nn")]);
    let a = p.declare("A", vec![v("Ni"), v("Nj")]);
    let c2 = p.declare("C2", vec![v("Nn"), v("Nj")]);
    let c1 = p.declare("C1", vec![v("Nm"), v("Ni")]);
    let scalar = || DimExpr { parts: vec![] };
    let mut f = StmtFactory::new();
    let s0 = f.stmt(
        "T = 0",
        StmtKind::ZeroLhs,
        vec![ArrayRef::write(t, vec![scalar()])],
    );
    let s1 = f.stmt(
        "T += C2[n,j] * A[i,j]",
        StmtKind::MulAddAssign,
        vec![
            ArrayRef::write(t, vec![scalar()]),
            ArrayRef::read(c2, vec![DimExpr::index("n"), DimExpr::index("j")]),
            ArrayRef::read(a, vec![DimExpr::index("i"), DimExpr::index("j")]),
        ],
    );
    let s2 = f.stmt(
        "B[m,n] += C1[m,i] * T",
        StmtKind::MulAddAssign,
        vec![
            ArrayRef::write(b, vec![DimExpr::index("m"), DimExpr::index("n")]),
            ArrayRef::read(c1, vec![DimExpr::index("m"), DimExpr::index("i")]),
            ArrayRef::read(t, vec![scalar()]),
        ],
    );
    p.root = vec![Node::loop_(
        "i",
        v("Ni"),
        vec![Node::loop_(
            "n",
            v("Nn"),
            vec![
                s0,
                Node::loop_("j", v("Nj"), vec![s1]),
                Node::loop_("m", v("Nm"), vec![s2]),
            ],
        )],
    )];
    debug_assert_eq!(p.validate(), Ok(()));
    p
}

/// Tiled two-index transform (paper Fig. 6, the Table 2/4 and Fig. 10/11
/// workload):
///
/// ```text
/// S0: for mT, nT, mI, nI:        B[mT+mI, nT+nI] = 0
///     for iT, nT:
/// S1:   for iI, nI:              T[iI, nI] = 0
/// S2:   for jT, iI, nI, jI:      T[iI, nI] += A[iT+iI, jT+jI] * C2[nT+nI, jT+jI]
/// S3:   for mT, iI, nI, mI:      B[mT+mI, nT+nI] += T[iI, nI] * C1[mT+mI, iT+iI]
/// ```
///
/// `T` is a tile-local `Ti × Tn` buffer. Free symbols: bounds
/// `Ni, Nj, Nm, Nn`; tile sizes `Ti, Tj, Tm, Tn` (the paper's tile tuples are
/// written in this order, e.g. `(64,16,16,128)` = `(Ti,Tj,Tm,Tn)`).
pub fn tiled_two_index() -> Program {
    let mut p = Program::new("tiled-two-index");
    let t = p.declare("T", vec![v("Ti"), v("Tn")]);
    let b = p.declare("B", vec![padded("Nm", "Tm"), padded("Nn", "Tn")]);
    let a = p.declare("A", vec![padded("Ni", "Ti"), padded("Nj", "Tj")]);
    let c2 = p.declare("C2", vec![padded("Nn", "Tn"), padded("Nj", "Tj")]);
    let c1 = p.declare("C1", vec![padded("Nm", "Tm"), padded("Ni", "Ti")]);
    let (ti, tj, tm, tn) = (v("Ti"), v("Tj"), v("Tm"), v("Tn"));
    // Sibling nests deliberately reuse the paper's index names (`iI`, `nI`,
    // `mT`, `nT`, …): distinct loops may share a name as long as they are not
    // nested inside one another, and the shared names are what lets the
    // analysis match `T[iI,nI]` instances across S1/S2/S3 (paper Fig. 7).
    let di = DimExpr::tiled("iT", ti.clone(), "iI");
    let dj = DimExpr::tiled("jT", tj.clone(), "jI");
    let dm = DimExpr::tiled("mT", tm.clone(), "mI");
    let dn = DimExpr::tiled("nT", tn.clone(), "nI");
    let d_t = vec![DimExpr::index("iI"), DimExpr::index("nI")];

    let mut f = StmtFactory::new();
    let s0 = f.stmt(
        "B[mT+mI, nT+nI] = 0",
        StmtKind::ZeroLhs,
        vec![ArrayRef::write(b, vec![dm.clone(), dn.clone()])],
    );
    let s1 = f.stmt(
        "T[iI, nI] = 0",
        StmtKind::ZeroLhs,
        vec![ArrayRef::write(t, d_t.clone())],
    );
    let s2 = f.stmt(
        "T[iI, nI] += A[iT+iI, jT+jI] * C2[nT+nI, jT+jI]",
        StmtKind::MulAddAssign,
        vec![
            ArrayRef::write(t, d_t.clone()),
            ArrayRef::read(a, vec![di.clone(), dj.clone()]),
            ArrayRef::read(c2, vec![dn.clone(), dj.clone()]),
        ],
    );
    let s3 = f.stmt(
        "B[mT+mI, nT+nI] += T[iI, nI] * C1[mT+mI, iT+iI]",
        StmtKind::MulAddAssign,
        vec![
            ArrayRef::write(b, vec![dm.clone(), dn.clone()]),
            ArrayRef::read(t, d_t),
            ArrayRef::read(c1, vec![dm, di]),
        ],
    );

    let init_nest = Node::loop_(
        "mT",
        v("Nm").ceil_div(&tm),
        vec![Node::loop_(
            "nT",
            v("Nn").ceil_div(&tn),
            vec![Node::loop_(
                "mI",
                tm.clone(),
                vec![Node::loop_("nI", tn.clone(), vec![s0])],
            )],
        )],
    );
    let zero_t = Node::loop_(
        "iI",
        ti.clone(),
        vec![Node::loop_("nI", tn.clone(), vec![s1])],
    );
    let produce_t = Node::loop_(
        "jT",
        v("Nj").ceil_div(&tj),
        vec![Node::loop_(
            "iI",
            ti.clone(),
            vec![Node::loop_(
                "nI",
                tn.clone(),
                vec![Node::loop_("jI", tj.clone(), vec![s2])],
            )],
        )],
    );
    let consume_t = Node::loop_(
        "mT",
        v("Nm").ceil_div(&tm),
        vec![Node::loop_(
            "iI",
            ti.clone(),
            vec![Node::loop_(
                "nI",
                tn.clone(),
                vec![Node::loop_("mI", tm.clone(), vec![s3])],
            )],
        )],
    );
    p.root = vec![
        init_nest,
        Node::loop_(
            "iT",
            v("Ni").ceil_div(&ti),
            vec![Node::loop_(
                "nT",
                v("Nn").ceil_div(&tn),
                vec![zero_t, produce_t, consume_t],
            )],
        ),
    ];
    debug_assert_eq!(p.validate(), Ok(()));
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdlo_symbolic::{Bindings, Sym};

    fn square_bindings(n: i128) -> Bindings {
        Bindings::new()
            .with("Ni", n)
            .with("Nj", n)
            .with("Nk", n)
            .with("Nm", n)
            .with("Nn", n)
    }

    #[test]
    fn all_builders_validate() {
        for p in [
            matmul(),
            tiled_matmul(),
            two_index_unfused(),
            two_index_fused(),
            tiled_two_index(),
        ] {
            assert_eq!(p.validate(), Ok(()), "{} failed validation", p.name);
        }
    }

    #[test]
    fn matmul_access_count() {
        let p = matmul();
        let c = crate::CompiledProgram::compile(&p, &square_bindings(4)).unwrap();
        // N^3 statement instances × 3 refs.
        assert_eq!(c.total_accesses(), 64 * 3);
    }

    #[test]
    fn tiled_matmul_matches_untiled_access_count() {
        let b = square_bindings(8).with("Ti", 4).with("Tj", 2).with("Tk", 8);
        let c = crate::CompiledProgram::compile(&tiled_matmul(), &b).unwrap();
        assert_eq!(c.total_accesses(), 512 * 3);
    }

    #[test]
    fn tiled_two_index_access_count() {
        let b = square_bindings(4)
            .with("Ti", 2)
            .with("Tj", 2)
            .with("Tm", 2)
            .with("Tn", 2);
        let c = crate::CompiledProgram::compile(&tiled_two_index(), &b).unwrap();
        // S0: Nm*Nn = 16 accesses; S1: (Ni/Ti)*(Nn/Tn)*Ti*Tn = 16;
        // S2 and S3: N^3 stmt instances × 3 refs = 192 each.
        assert_eq!(c.total_accesses(), 16 + 16 + 192 + 192);
    }

    #[test]
    fn tiled_two_index_free_symbols() {
        let syms = tiled_two_index().free_symbols();
        for s in ["Ni", "Nj", "Nm", "Nn", "Ti", "Tj", "Tm", "Tn"] {
            assert!(syms.contains(&Sym::new(s)), "missing {s}");
        }
        assert!(!syms.contains(&Sym::new("iT")));
    }

    #[test]
    fn builtin_registry_is_consistent() {
        for name in BUILTIN_NAMES {
            let p = builtin(name).expect("every listed name resolves");
            p.validate().expect("builtins are well-formed");
        }
        assert!(builtin("no_such_program").is_none());
    }

    #[test]
    fn fused_scalar_t_has_single_address() {
        let p = two_index_fused();
        let c = crate::CompiledProgram::compile(&p, &square_bindings(3)).unwrap();
        let t_id = p.array_by_name("T").unwrap().id;
        let mut t_addrs = std::collections::BTreeSet::new();
        c.walk(&mut |a| {
            if a.array == t_id {
                t_addrs.insert(a.addr);
            }
        });
        assert_eq!(t_addrs.len(), 1);
    }
}
