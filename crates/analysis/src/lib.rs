//! # sdlo-analysis
//!
//! Static diagnostics for the TCE loop class: a rule registry over the
//! [`sdlo_ir`] loop tree that reports **model-assumption violations** (inputs
//! outside the class the paper's stack-distance characterization is sound
//! for) and **locality anti-patterns** (structurally detectable sources of
//! avoidable capacity misses), each as a structured [`Diagnostic`] with a
//! rule id, severity, source span and optional machine-readable fix-it.
//!
//! The paper's miss characterization (§4–5) assumes subscripts that are plain
//! loop indices or `tile+intra` pairs, rectangular symbolic bounds, and reuse
//! induced by absent indices. Nothing downstream re-checks those assumptions:
//! [`sdlo_core::MissModel::build`] will happily produce numbers for an
//! out-of-class program. This crate makes the boundary explicit — the
//! **error** tier is exactly "the model is unsound on this input", the
//! **warning** tier is "the model is sound and predicts poor locality", and
//! the **info** tier is "noteworthy structure" (e.g. the paper's
//! non-constant-dependence triggers).
//!
//! [`Program::validate`] is folded in as the first, gating rule
//! ([`rules::STRUCTURE`]): if the program is not even structurally
//! well-formed, only that diagnostic is reported and the remaining rules
//! (which assume validity) are skipped.
//!
//! ```
//! use sdlo_analysis::{lint, Severity};
//! use sdlo_ir::programs;
//!
//! // The untiled matmul is in-class (no errors) but carries reuse no cache
//! // can hold for large N — the linter proposes tiling.
//! let diags = lint(&programs::matmul());
//! assert!(diags.iter().all(|d| d.severity != Severity::Error));
//! assert!(diags.iter().any(|d| d.rule == "untiled-reuse"));
//! ```

pub mod rules;

use sdlo_ir::{Program, StmtId, Sym};

pub use sdlo_deps::Legality;

/// How bad a diagnostic is.
///
/// Ordering is by decreasing severity (`Error < Warning < Info`) so that
/// sorting a report lists errors first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The program is outside the analyzable class: any stack-distance
    /// prediction for it is unsound. CI gates fail on these.
    Error,
    /// The program is in-class but exhibits a locality anti-pattern the
    /// model predicts will miss.
    Warning,
    /// Structural observation useful when reading a report (e.g. which
    /// component kind a loop-invariant reference induces).
    Info,
}

impl Severity {
    /// Lower-case name as used in wire formats and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Where in the program a diagnostic points. All fields are optional — a
/// rule fills in whichever coordinates it has (an array-level rule has no
/// statement, a bound-level rule has no reference).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Span {
    /// Statement containing the offending reference, if any.
    pub stmt: Option<StmtId>,
    /// Index of the reference within the statement's `refs`.
    pub ref_idx: Option<usize>,
    /// Subscript dimension within the reference.
    pub dim: Option<usize>,
    /// Loop index variable the diagnostic is about.
    pub loop_index: Option<Sym>,
    /// Array the diagnostic is about.
    pub array: Option<Sym>,
}

impl Span {
    /// Span pointing at a whole statement.
    pub fn stmt(id: StmtId) -> Self {
        Span {
            stmt: Some(id),
            ..Span::default()
        }
    }

    /// Span pointing at one subscript dimension of one reference.
    pub fn dim(stmt: StmtId, ref_idx: usize, dim: usize) -> Self {
        Span {
            stmt: Some(stmt),
            ref_idx: Some(ref_idx),
            dim: Some(dim),
            ..Span::default()
        }
    }

    /// Span pointing at a loop.
    pub fn loop_(index: Sym) -> Self {
        Span {
            loop_index: Some(index),
            ..Span::default()
        }
    }

    /// Span pointing at an array declaration.
    pub fn array(name: Sym) -> Self {
        Span {
            array: Some(name),
            ..Span::default()
        }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        if let Some(s) = self.stmt {
            parts.push(format!("S{}", s.0));
        }
        if let Some(r) = self.ref_idx {
            parts.push(format!("ref {r}"));
        }
        if let Some(d) = self.dim {
            parts.push(format!("dim {d}"));
        }
        if let Some(l) = &self.loop_index {
            parts.push(format!("loop `{l}`"));
        }
        if let Some(a) = &self.array {
            parts.push(format!("array `{a}`"));
        }
        if parts.is_empty() {
            f.write_str("<program>")
        } else {
            f.write_str(&parts.join(", "))
        }
    }
}

/// The exact transformation a fix-it proposes, in the form
/// [`sdlo_ir`]'s appliers consume. Present only when the proposal lies
/// inside the statement's perfect segment and is therefore
/// machine-applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixTarget {
    /// Reorder the perfect segment around `stmt` to `order` (outermost
    /// first) via [`sdlo_ir::apply_permute`].
    Permute {
        /// Statement whose segment is reordered.
        stmt: StmtId,
        /// New loop order, outermost first.
        order: Vec<Sym>,
    },
    /// Strip-mine segment loops via [`sdlo_ir::apply_tile`].
    Tile {
        /// Statement whose segment is tiled.
        stmt: StmtId,
        /// `(loop index, tile-size symbol)` pairs.
        loops: Vec<(Sym, Sym)>,
    },
}

impl FixTarget {
    /// Statement the transform anchors on.
    pub fn stmt(&self) -> StmtId {
        match self {
            FixTarget::Permute { stmt, .. } | FixTarget::Tile { stmt, .. } => *stmt,
        }
    }

    /// Apply the transform, returning the rewritten program.
    pub fn apply(&self, program: &Program) -> Result<Program, sdlo_ir::ApplyError> {
        match self {
            FixTarget::Permute { stmt, order } => sdlo_ir::apply_permute(program, *stmt, order),
            FixTarget::Tile { stmt, loops } => sdlo_ir::apply_tile(program, *stmt, loops),
        }
    }
}

/// A machine-readable repair suggestion attached to a diagnostic.
///
/// Every fix-it carries a dependence-legality verdict from `sdlo-deps`:
/// `proven` fix-its are safe to auto-apply (and the test suite verifies
/// trace equivalence after applying them); `assumed` fix-its could not be
/// proven safe (conservative dependence directions, or a proposal outside
/// the statement's perfect segment); fix-its that would provably reverse a
/// dependence are never emitted — the `illegal-transform` rule reports the
/// suppression instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixIt {
    /// Stable action verb (`"permute-loops"`, `"tile-loop"`, …) a driver can
    /// dispatch on.
    pub action: &'static str,
    /// Human-readable instantiation of the action for this site.
    pub detail: String,
    /// Dependence-legality verdict for the proposed transform.
    pub legality: Legality,
    /// Machine-applicable payload, when the proposal is inside the perfect
    /// segment (absent ⇒ `legality` is at best `assumed`).
    pub target: Option<FixTarget>,
}

/// One finding of the linter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (kebab-case, see [`rules`]).
    pub rule: &'static str,
    /// Severity tier.
    pub severity: Severity,
    /// Source location.
    pub span: Span,
    /// Human-readable message.
    pub message: String,
    /// Optional structured repair suggestion.
    pub fixit: Option<FixIt>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.rule, self.span, self.message
        )?;
        if let Some(fx) = &self.fixit {
            write!(f, " (fix[{}]: {})", fx.legality, fx.detail)?;
        }
        Ok(())
    }
}

/// A lint rule: a named, documented check over a whole program.
///
/// Rules observe the program only through the shared [`sdlo_ir`] API and push
/// any findings into `out`; the [`Linter`] owns ordering and gating.
pub trait Rule {
    /// Stable kebab-case identifier reported in [`Diagnostic::rule`].
    fn id(&self) -> &'static str;
    /// One-line description for the rule catalog.
    fn description(&self) -> &'static str;
    /// The severity tier(s) this rule emits at, as the documented label
    /// (`"error"`, `"warning"`, `"info"`, or `"error/warning"` for mixed
    /// rules). The doc-sync test checks this against the README catalog.
    fn severity_label(&self) -> &'static str;
    /// Run the rule. The program has passed [`Program::validate`] (the
    /// [`rules::STRUCTURE`] rule gates on it) unless this *is* the structure
    /// rule.
    fn check(&self, program: &Program, out: &mut Vec<Diagnostic>);
}

/// The rule registry: an ordered collection of [`Rule`]s with the structure
/// (validation) rule first as a gate.
pub struct Linter {
    rules: Vec<Box<dyn Rule>>,
}

impl Default for Linter {
    fn default() -> Self {
        Linter::new()
    }
}

impl Linter {
    /// Registry with the full built-in rule set (see [`rules::all`]).
    pub fn new() -> Self {
        Linter {
            rules: rules::all(),
        }
    }

    /// Registry with an explicit rule list (first rule gates if it errors).
    pub fn with_rules(rules: Vec<Box<dyn Rule>>) -> Self {
        Linter { rules }
    }

    /// `(id, severity label, description)` of every registered rule, in
    /// execution order.
    pub fn catalog(&self) -> Vec<(&'static str, &'static str, &'static str)> {
        self.rules
            .iter()
            .map(|r| (r.id(), r.severity_label(), r.description()))
            .collect()
    }

    /// Run every rule over `program`.
    ///
    /// The first rule (structure/validation) gates: if it reports anything,
    /// its diagnostics are returned alone because the remaining rules assume
    /// a structurally valid tree. Diagnostics are sorted by severity, then
    /// statement, then rule id.
    pub fn lint(&self, program: &Program) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (k, rule) in self.rules.iter().enumerate() {
            rule.check(program, &mut out);
            if k == 0 && !out.is_empty() {
                return out;
            }
        }
        out.sort_by(|a, b| {
            (a.severity, a.span.stmt, a.rule).cmp(&(b.severity, b.span.stmt, b.rule))
        });
        out
    }
}

/// Lint with the default registry.
pub fn lint(program: &Program) -> Vec<Diagnostic> {
    Linter::new().lint(program)
}

/// Count of diagnostics at each severity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeverityCounts {
    /// Number of `error` diagnostics.
    pub errors: usize,
    /// Number of `warning` diagnostics.
    pub warnings: usize,
    /// Number of `info` diagnostics.
    pub infos: usize,
}

impl SeverityCounts {
    /// Tally a diagnostic list.
    pub fn of(diags: &[Diagnostic]) -> Self {
        let mut c = SeverityCounts::default();
        for d in diags {
            match d.severity {
                Severity::Error => c.errors += 1,
                Severity::Warning => c.warnings += 1,
                Severity::Info => c.infos += 1,
            }
        }
        c
    }
}

/// Human-readable report: one line per diagnostic plus a summary trailer.
pub fn render_report(program: &Program, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!("{}: {d}\n", program.name));
    }
    let c = SeverityCounts::of(diags);
    out.push_str(&format!(
        "{}: {} error(s), {} warning(s), {} info(s)\n",
        program.name, c.errors, c.warnings, c.infos
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdlo_ir::programs;

    #[test]
    fn severity_orders_errors_first() {
        assert!(Severity::Error < Severity::Warning);
        assert!(Severity::Warning < Severity::Info);
    }

    #[test]
    fn catalog_has_at_least_eight_rules() {
        let l = Linter::new();
        let cat = l.catalog();
        assert!(cat.len() >= 8, "only {} rules registered", cat.len());
        // Ids are unique and kebab-case.
        let mut ids: Vec<_> = cat.iter().map(|(id, _, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), cat.len());
        for (id, sev, desc) in &cat {
            assert!(id.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            assert!(!desc.is_empty());
            assert!(
                ["error", "warning", "info", "error/warning"].contains(sev),
                "{id}: bad severity label {sev}"
            );
        }
    }

    #[test]
    fn report_renders_summary() {
        let p = programs::matmul();
        let diags = lint(&p);
        let text = render_report(&p, &diags);
        assert!(text.contains("matmul:"));
        assert!(text.contains("0 error(s)"));
    }
}
