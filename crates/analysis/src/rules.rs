//! The built-in rule set.
//!
//! | id | severity | checks |
//! |----|----------|--------|
//! | `structure`          | error | [`Program::validate`] (gating) |
//! | `subscript-class`    | error | every subscript is scalar, plain index, or one tile+intra pair |
//! | `tile-consistency`   | error | tile strides agree with intra-loop bounds and across references |
//! | `bound-sanity`       | error/warning | bounds positive and rectangular; no unused loop index |
//! | `model-class`        | error | no repeated indices per reference, no index-dependent strides |
//! | `invariant-ref`      | info | references missing surrounding indices + induced component kind |
//! | `stride-innermost`   | warning | innermost loop absent from fastest-varying dimension (fix-it: permute, legality-vetted) |
//! | `untiled-reuse`      | warning | carried reuse whose stack distance grows with problem size (fix-it: tile, legality-vetted) |
//! | `illegal-transform`  | warning | proposed permute/tile fix-its that would reverse a dependence (suppressed) |
//! | `loop-carried-dep`   | info | loops carrying flow/anti/output dependences, with counts |
//! | `parallelizable-loop`| info | loops carrying no dependence: iterations safe to run in parallel |
//! | `dead-array`         | warning | arrays never referenced or written but never read |

use crate::{Diagnostic, FixIt, FixTarget, Rule, Severity, Span};
use sdlo_core::{components_for, ComponentKind, MissModel, StackDistance};
use sdlo_deps::{analyze, DepGraph, DepKind, Legality};
use sdlo_ir::{perfect_segment, DimExpr, Expr, LoopNode, Node, Program, Stmt, StmtId, Sym};
use std::collections::{BTreeMap, BTreeSet};

/// Rule id of the gating structural-validation rule.
pub const STRUCTURE: &str = "structure";

/// All built-in rules in execution order ([`STRUCTURE`] first — it gates).
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(Structure),
        Box::new(SubscriptClass),
        Box::new(TileConsistency),
        Box::new(BoundSanity),
        Box::new(ModelClass),
        Box::new(InvariantRef),
        Box::new(StrideInnermost),
        Box::new(UntiledReuse),
        Box::new(IllegalTransform),
        Box::new(LoopCarriedDep),
        Box::new(ParallelizableLoop),
        Box::new(DeadArray),
    ]
}

/// Visit every statement together with its enclosing loops, outermost first.
fn for_each_stmt_with_loops<'p>(
    program: &'p Program,
    f: &mut impl FnMut(&'p Stmt, &[&'p LoopNode]),
) {
    fn walk<'p>(
        node: &'p Node,
        loops: &mut Vec<&'p LoopNode>,
        f: &mut impl FnMut(&'p Stmt, &[&'p LoopNode]),
    ) {
        match node {
            Node::Loop(l) => {
                loops.push(l);
                for n in &l.body {
                    walk(n, loops, f);
                }
                loops.pop();
            }
            Node::Stmt(s) => f(s, loops),
        }
    }
    let mut loops = Vec::new();
    for n in &program.root {
        walk(n, &mut loops, f);
    }
}

/// Visit every loop together with its enclosing loops, outermost first
/// (the visited loop is *not* in the slice).
fn for_each_loop<'p>(program: &'p Program, f: &mut impl FnMut(&'p LoopNode, &[&'p LoopNode])) {
    fn walk<'p>(
        node: &'p Node,
        loops: &mut Vec<&'p LoopNode>,
        f: &mut impl FnMut(&'p LoopNode, &[&'p LoopNode]),
    ) {
        if let Node::Loop(l) = node {
            f(l, loops);
            loops.push(l);
            for n in &l.body {
                walk(n, loops, f);
            }
            loops.pop();
        }
    }
    let mut loops = Vec::new();
    for n in &program.root {
        walk(n, &mut loops, f);
    }
}

/// Every loop index bound anywhere in the program.
fn all_loop_indices(program: &Program) -> BTreeSet<Sym> {
    let mut out = BTreeSet::new();
    for_each_loop(program, &mut |l, _| {
        out.insert(l.index.clone());
    });
    out
}

/// One `(index, stride)` term of a subscript.
type Part = (Sym, Expr);

/// Split a two-part dimension into `(tile part, intra part)` if it has the
/// class shape: exactly one stride-1 part and one non-unit-stride part.
fn tile_intra(dim: &DimExpr) -> Option<(&Part, &Part)> {
    if dim.parts.len() != 2 {
        return None;
    }
    let unit = |p: &Part| p.1.as_const() == Some(1);
    match (unit(&dim.parts[0]), unit(&dim.parts[1])) {
        (false, true) => Some((&dim.parts[0], &dim.parts[1])),
        (true, false) => Some((&dim.parts[1], &dim.parts[0])),
        _ => None,
    }
}

/// `structure` — [`Program::validate`] folded into the framework as its
/// error tier. Runs first and gates the remaining rules.
pub struct Structure;

impl Rule for Structure {
    fn id(&self) -> &'static str {
        STRUCTURE
    }

    fn description(&self) -> &'static str {
        "structural validity (Program::validate): bound indices, arities, numbering"
    }

    fn severity_label(&self) -> &'static str {
        "error"
    }

    fn check(&self, program: &Program, out: &mut Vec<Diagnostic>) {
        use sdlo_ir::ValidateError as V;
        if let Err(e) = program.validate() {
            let span = match &e {
                V::DuplicateArray { name } | V::ZeroDimArray { name } => Span::array(name.clone()),
                V::UnboundIndex { stmt, index } => Span {
                    stmt: Some(*stmt),
                    loop_index: Some(index.clone()),
                    ..Span::default()
                },
                V::DuplicateIndex { index } => Span::loop_(index.clone()),
                V::DimMismatch { stmt, array, .. } => Span {
                    stmt: Some(*stmt),
                    array: Some(array.clone()),
                    ..Span::default()
                },
                V::RefCount { stmt, .. } => Span::stmt(*stmt),
                V::BadStmtNumbering { .. } => Span::default(),
            };
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Error,
                span,
                message: e.to_string(),
                fixit: None,
            });
        }
    }
}

/// `subscript-class` — every subscript dimension must be a scalar (no
/// parts), a plain stride-1 index, or a tile+intra pair; anything else
/// (diagonal sums, 3+ indices, lone strided indices) is outside the class
/// the stack-distance model analyzes.
pub struct SubscriptClass;

impl Rule for SubscriptClass {
    fn id(&self) -> &'static str {
        "subscript-class"
    }

    fn description(&self) -> &'static str {
        "subscripts are scalar, plain stride-1 indices, or one tile+intra pair"
    }

    fn severity_label(&self) -> &'static str {
        "error"
    }

    fn check(&self, program: &Program, out: &mut Vec<Diagnostic>) {
        for_each_stmt_with_loops(program, &mut |s, _| {
            for (ri, r) in s.refs.iter().enumerate() {
                let name = &program.array(r.array).name;
                for (di, d) in r.dims.iter().enumerate() {
                    let problem = match d.parts.as_slice() {
                        [] => None,
                        [(_, stride)] if stride.as_const() == Some(1) => None,
                        [(idx, stride)] => Some(format!(
                            "single-index subscript `{idx}` has stride `{stride}`; \
                             a lone index must have stride 1"
                        )),
                        [_, _] => tile_intra(d).map_or_else(
                            || {
                                let (a, b) = (&d.parts[0], &d.parts[1]);
                                Some(format!(
                                    "two-index subscript `{}*{} + {}*{}` is not a tile+intra \
                                     pair (need exactly one stride-1 intra index and one \
                                     non-unit tile stride)",
                                    a.0, a.1, b.0, b.1
                                ))
                            },
                            |_| None,
                        ),
                        parts => Some(format!(
                            "subscript combines {} loop indices; at most a tile+intra \
                             pair is analyzable",
                            parts.len()
                        )),
                    };
                    if let Some(message) = problem {
                        out.push(Diagnostic {
                            rule: self.id(),
                            severity: Severity::Error,
                            span: Span {
                                array: Some(name.clone()),
                                ..Span::dim(s.id, ri, di)
                            },
                            message,
                            fixit: None,
                        });
                    }
                }
            }
        });
    }
}

/// `tile-consistency` — the tile stride of a tiled subscript must equal the
/// trip count of its intra loop (the intra loop sweeps exactly one tile),
/// and a tile loop must be used with the same stride everywhere.
pub struct TileConsistency;

impl Rule for TileConsistency {
    fn id(&self) -> &'static str {
        "tile-consistency"
    }

    fn description(&self) -> &'static str {
        "tile strides match intra-loop bounds and agree across references"
    }

    fn severity_label(&self) -> &'static str {
        "error"
    }

    fn check(&self, program: &Program, out: &mut Vec<Diagnostic>) {
        let mut strides: BTreeMap<Sym, (Expr, Span)> = BTreeMap::new();
        for_each_stmt_with_loops(program, &mut |s, loops| {
            for (ri, r) in s.refs.iter().enumerate() {
                for (di, d) in r.dims.iter().enumerate() {
                    let Some(((tile_idx, stride), (intra_idx, _))) = tile_intra(d) else {
                        continue;
                    };
                    let span = Span {
                        loop_index: Some(tile_idx.clone()),
                        ..Span::dim(s.id, ri, di)
                    };
                    if let Some(intra) = loops.iter().find(|l| &l.index == intra_idx) {
                        if &intra.bound != stride {
                            out.push(Diagnostic {
                                rule: self.id(),
                                severity: Severity::Error,
                                span: span.clone(),
                                message: format!(
                                    "tile stride `{stride}` of `{tile_idx}` disagrees with \
                                     intra loop `{intra_idx}`'s trip count `{}`",
                                    intra.bound
                                ),
                                fixit: None,
                            });
                        }
                    }
                    match strides.get(tile_idx) {
                        None => {
                            strides.insert(tile_idx.clone(), (stride.clone(), span));
                        }
                        Some((prev, first_span)) if prev != stride => {
                            out.push(Diagnostic {
                                rule: self.id(),
                                severity: Severity::Error,
                                span,
                                message: format!(
                                    "tile loop `{tile_idx}` used with stride `{stride}` here \
                                     but stride `{prev}` at {first_span}"
                                ),
                                fixit: None,
                            });
                        }
                        Some(_) => {}
                    }
                }
            }
        });
    }
}

/// `bound-sanity` — trip counts must be positive and independent of
/// enclosing loop indices (rectangular spaces); a loop whose index is never
/// used by any subscript in its body is flagged as suspect.
pub struct BoundSanity;

impl Rule for BoundSanity {
    fn id(&self) -> &'static str {
        "bound-sanity"
    }

    fn description(&self) -> &'static str {
        "positive rectangular trip counts; every loop index used in its body"
    }

    fn severity_label(&self) -> &'static str {
        "error/warning"
    }

    fn check(&self, program: &Program, out: &mut Vec<Diagnostic>) {
        for_each_loop(program, &mut |l, enclosing| {
            if let Some(c) = l.bound.as_const() {
                if c <= 0 {
                    out.push(Diagnostic {
                        rule: self.id(),
                        severity: Severity::Error,
                        span: Span::loop_(l.index.clone()),
                        message: format!(
                            "loop `{}` has non-positive constant trip count {c}",
                            l.index
                        ),
                        fixit: None,
                    });
                }
            }
            for enc in enclosing.iter().chain(std::iter::once(&l)) {
                if l.bound.involves(&enc.index) {
                    out.push(Diagnostic {
                        rule: self.id(),
                        severity: Severity::Error,
                        span: Span::loop_(l.index.clone()),
                        message: format!(
                            "bound `{}` of loop `{}` depends on loop index `{}`; \
                             only rectangular iteration spaces are analyzable",
                            l.bound, l.index, enc.index
                        ),
                        fixit: None,
                    });
                }
            }
            let mut used = false;
            let mut count = 0usize;
            for n in &l.body {
                n.for_each_stmt(&mut |s| {
                    count += 1;
                    used = used || s.refs.iter().any(|r| r.appears(&l.index));
                });
            }
            if count > 0 && !used {
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: Severity::Warning,
                    span: Span::loop_(l.index.clone()),
                    message: format!(
                        "loop index `{}` is used by no subscript in its body: every \
                         iteration repeats the same accesses",
                        l.index
                    ),
                    fixit: None,
                });
            }
        });
    }
}

/// `model-class` — subscript patterns the stack-distance partition is
/// unsound for even though they pass structural validation: one loop index
/// driving several dimensions (coupled subscripts like `A[i,i]`) and strides
/// that vary with a loop index.
pub struct ModelClass;

impl Rule for ModelClass {
    fn id(&self) -> &'static str {
        "model-class"
    }

    fn description(&self) -> &'static str {
        "no coupled subscripts, no iteration-dependent strides"
    }

    fn severity_label(&self) -> &'static str {
        "error"
    }

    fn check(&self, program: &Program, out: &mut Vec<Diagnostic>) {
        let loop_indices = all_loop_indices(program);
        for_each_stmt_with_loops(program, &mut |s, _| {
            for (ri, r) in s.refs.iter().enumerate() {
                let name = &program.array(r.array).name;
                let mut seen: BTreeMap<&Sym, usize> = BTreeMap::new();
                for (di, d) in r.dims.iter().enumerate() {
                    let mut in_dim: BTreeSet<&Sym> = BTreeSet::new();
                    for (idx, stride) in &d.parts {
                        if !in_dim.insert(idx) {
                            out.push(Diagnostic {
                                rule: self.id(),
                                severity: Severity::Error,
                                span: Span {
                                    array: Some(name.clone()),
                                    ..Span::dim(s.id, ri, di)
                                },
                                message: format!(
                                    "index `{idx}` contributes twice to one subscript of \
                                     `{name}`; accesses alias within the dimension"
                                ),
                                fixit: None,
                            });
                        }
                        if let Some(first) = seen.get(idx) {
                            if *first != di {
                                out.push(Diagnostic {
                                    rule: self.id(),
                                    severity: Severity::Error,
                                    span: Span {
                                        array: Some(name.clone()),
                                        loop_index: Some(idx.clone()),
                                        ..Span::dim(s.id, ri, di)
                                    },
                                    message: format!(
                                        "index `{idx}` drives dimensions {first} and {di} of \
                                         `{name}` (coupled subscript): distinct-element counts \
                                         assume independent dimensions"
                                    ),
                                    fixit: None,
                                });
                            }
                        } else {
                            seen.insert(idx, di);
                        }
                        for v in stride.vars() {
                            if loop_indices.contains(&v) {
                                out.push(Diagnostic {
                                    rule: self.id(),
                                    severity: Severity::Error,
                                    span: Span {
                                        array: Some(name.clone()),
                                        loop_index: Some(v.clone()),
                                        ..Span::dim(s.id, ri, di)
                                    },
                                    message: format!(
                                        "stride `{stride}` of `{idx}` varies with loop index \
                                         `{v}`; strides must be iteration-invariant"
                                    ),
                                    fixit: None,
                                });
                            }
                        }
                    }
                }
            }
        });
    }
}

/// `invariant-ref` — a reference missing one or more surrounding loop
/// indices is the paper's non-constant-dependence trigger: its reuse is
/// carried by the absent loops (or crosses statements). Reported at `info`
/// with the component kinds the partition actually assigns.
pub struct InvariantRef;

impl Rule for InvariantRef {
    fn id(&self) -> &'static str {
        "invariant-ref"
    }

    fn description(&self) -> &'static str {
        "references missing surrounding indices, with their induced reuse components"
    }

    fn severity_label(&self) -> &'static str {
        "info"
    }

    fn check(&self, program: &Program, out: &mut Vec<Diagnostic>) {
        for_each_stmt_with_loops(program, &mut |s, loops| {
            for (ri, r) in s.refs.iter().enumerate() {
                let missing: Vec<&Sym> = loops
                    .iter()
                    .map(|l| &l.index)
                    .filter(|idx| !r.appears(idx))
                    .collect();
                if missing.is_empty() {
                    continue;
                }
                let kinds: Vec<String> = components_for(program, s, ri)
                    .iter()
                    .map(|c| match &c.kind {
                        ComponentKind::Compulsory => "Compulsory".to_string(),
                        ComponentKind::Carried { loop_index, .. } => {
                            format!("Carried({loop_index})")
                        }
                        ComponentKind::CrossStmt { source_stmt } => {
                            format!("CrossStmt(from S{})", source_stmt.0)
                        }
                    })
                    .collect();
                let name = &program.array(r.array).name;
                let missing: Vec<String> = missing.iter().map(|m| format!("`{m}`")).collect();
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: Severity::Info,
                    span: Span {
                        stmt: Some(s.id),
                        ref_idx: Some(ri),
                        array: Some(name.clone()),
                        ..Span::default()
                    },
                    message: format!(
                        "`{name}` is invariant in loop(s) {}: reuse components [{}]",
                        missing.join(", "),
                        kinds.join(", ")
                    ),
                    fixit: None,
                });
            }
        });
    }
}

/// A reference site where the innermost loop strides a slow dimension —
/// the trigger for `stride-innermost` and half the input of
/// `illegal-transform`.
struct PermuteSite {
    stmt: StmtId,
    ref_idx: usize,
    slow_dim: usize,
    array: Sym,
    inner: Sym,
    fast: Vec<Sym>,
}

/// All `stride-innermost` trigger sites of the program.
fn permute_sites(program: &Program) -> Vec<PermuteSite> {
    let mut sites = Vec::new();
    for_each_stmt_with_loops(program, &mut |s, loops| {
        let Some(inner) = loops.last() else { return };
        for (ri, r) in s.refs.iter().enumerate() {
            if r.dims.len() < 2 || !r.appears(&inner.index) {
                continue;
            }
            let last = r.dims.last().expect("len >= 2");
            if last.uses(&inner.index) {
                continue;
            }
            let slow_dim = r
                .dims
                .iter()
                .position(|d| d.uses(&inner.index))
                .expect("appears implies some dim uses it");
            sites.push(PermuteSite {
                stmt: s.id,
                ref_idx: ri,
                slow_dim,
                array: program.array(r.array).name.clone(),
                inner: inner.index.clone(),
                fast: last.indices().cloned().collect(),
            });
        }
    });
    sites
}

/// Verdict of vetting one proposed transform against the dependence graph.
enum Vetted {
    /// Emit the fix-it: verdict plus, when applicable, the applier payload
    /// and the concrete choice made (innermost loop / tile-size symbol).
    Emit {
        legality: Legality,
        chosen: Option<(Sym, FixTarget)>,
    },
    /// Every candidate provably reverses a dependence — suppress the
    /// fix-it; `illegal-transform` reports it.
    Suppressed,
}

/// Pick a legal loop order placing one of `site.fast` innermost: the first
/// `proven` candidate wins, else the first `assumed`; if every in-segment
/// candidate is illegal the fix-it is suppressed. Fast indices outside the
/// statement's perfect segment cannot be vetted or applied → `assumed`
/// with no payload.
fn vet_permute(program: &Program, graph: &DepGraph, site: &PermuteSite) -> Vetted {
    let Some(seg) = perfect_segment(program, site.stmt) else {
        return Vetted::Emit {
            legality: Legality::Assumed,
            chosen: None,
        };
    };
    let in_seg: Vec<&Sym> = site.fast.iter().filter(|f| seg.contains(f)).collect();
    if in_seg.is_empty() {
        return Vetted::Emit {
            legality: Legality::Assumed,
            chosen: None,
        };
    }
    let mut fallback: Option<(Sym, FixTarget)> = None;
    let mut any_vetted = false;
    for f in in_seg {
        let mut order: Vec<Sym> = seg.iter().filter(|x| *x != f).cloned().collect();
        order.push(f.clone());
        let target = FixTarget::Permute {
            stmt: site.stmt,
            order: order.clone(),
        };
        match graph.permutation_legality(program, site.stmt, &order) {
            Ok(Legality::Proven) => {
                return Vetted::Emit {
                    legality: Legality::Proven,
                    chosen: Some((f.clone(), target)),
                };
            }
            Ok(Legality::Assumed) => {
                any_vetted = true;
                if fallback.is_none() {
                    fallback = Some((f.clone(), target));
                }
            }
            Ok(Legality::Illegal) => any_vetted = true,
            Err(_) => {}
        }
    }
    match fallback {
        Some(chosen) => Vetted::Emit {
            legality: Legality::Assumed,
            chosen: Some(chosen),
        },
        None if any_vetted => Vetted::Suppressed,
        None => Vetted::Emit {
            legality: Legality::Assumed,
            chosen: None,
        },
    }
}

/// Names a generated symbol must avoid: loop indices, free symbols, arrays.
fn taken_names(program: &Program) -> BTreeSet<Sym> {
    let mut taken = program.free_symbols();
    for_each_loop(program, &mut |l, _| {
        taken.insert(l.index.clone());
    });
    for a in &program.arrays {
        taken.insert(a.name.clone());
    }
    taken
}

/// A fresh tile-size symbol for tiling `loop_index`: `T<loop>`, suffixed
/// with a counter if taken.
fn fresh_tile_sym(taken: &BTreeSet<Sym>, loop_index: &Sym) -> Sym {
    let base = format!("T{loop_index}");
    let mut candidate = Sym::new(base.clone());
    let mut n = 2usize;
    while taken.contains(&candidate) {
        candidate = Sym::new(format!("{base}{n}"));
        n += 1;
    }
    candidate
}

/// Vet tiling `loop_index` for the statement owning a carried-reuse
/// component. Applicable only when the loop lies in the statement's perfect
/// segment and the generated `xT`/`xI` names are fresh.
fn vet_tile(program: &Program, graph: &DepGraph, stmt: StmtId, loop_index: &Sym) -> Vetted {
    let assumed = Vetted::Emit {
        legality: Legality::Assumed,
        chosen: None,
    };
    let Some(seg) = perfect_segment(program, stmt) else {
        return assumed;
    };
    if !seg.contains(loop_index) {
        return assumed;
    }
    let taken = taken_names(program);
    if taken.contains(&Sym::new(format!("{loop_index}T")))
        || taken.contains(&Sym::new(format!("{loop_index}I")))
    {
        return assumed;
    }
    // Tiling stays in the analyzable class only while every subscript use
    // of the loop is a plain stride-1 index: re-tiling the intra loop of an
    // existing tile+intra pair would put three indices in one dimension.
    let mut plain = true;
    program.for_each_stmt(|s| {
        for r in &s.refs {
            for d in &r.dims {
                if d.uses(loop_index) && d.parts.len() != 1 {
                    plain = false;
                }
            }
        }
    });
    if !plain {
        return assumed;
    }
    match graph.tiling_legality(program, stmt, std::slice::from_ref(loop_index)) {
        Ok(Legality::Illegal) => Vetted::Suppressed,
        Ok(legality) => {
            let t = fresh_tile_sym(&taken, loop_index);
            Vetted::Emit {
                legality,
                chosen: Some((
                    t.clone(),
                    FixTarget::Tile {
                        stmt,
                        loops: vec![(loop_index.clone(), t)],
                    },
                )),
            }
        }
        Err(_) => assumed,
    }
}

/// `stride-innermost` — the innermost loop of a statement appears in a
/// reference but not in its fastest-varying (last) dimension: consecutive
/// iterations jump by at least a whole row. Fix-it: permute the nest to a
/// dependence-vetted order.
pub struct StrideInnermost;

impl Rule for StrideInnermost {
    fn id(&self) -> &'static str {
        "stride-innermost"
    }

    fn description(&self) -> &'static str {
        "innermost loop indexes the fastest-varying dimension of each reference"
    }

    fn severity_label(&self) -> &'static str {
        "warning"
    }

    fn check(&self, program: &Program, out: &mut Vec<Diagnostic>) {
        let graph = analyze(program);
        for site in permute_sites(program) {
            let Vetted::Emit { legality, chosen } = vet_permute(program, &graph, &site) else {
                continue; // suppressed; `illegal-transform` reports it
            };
            let name = &site.array;
            let (detail, target) = match chosen {
                Some((f, target)) => (
                    format!(
                        "permute the nest of S{} so `{f}` runs innermost instead of `{}`",
                        site.stmt.0, site.inner
                    ),
                    Some(target),
                ),
                None => {
                    let fast: Vec<String> = site.fast.iter().map(|i| format!("`{i}`")).collect();
                    (
                        format!(
                            "permute the nest of S{} so one of {} is innermost instead of `{}`",
                            site.stmt.0,
                            fast.join("/"),
                            site.inner
                        ),
                        None,
                    )
                }
            };
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Warning,
                span: Span {
                    array: Some(name.clone()),
                    loop_index: Some(site.inner.clone()),
                    ..Span::dim(site.stmt, site.ref_idx, site.slow_dim)
                },
                message: format!(
                    "innermost loop `{}` strides dimension {} of `{name}`, not \
                     its fastest-varying dimension: consecutive iterations are at least \
                     a row apart",
                    site.inner, site.slow_dim
                ),
                fixit: Some(FixIt {
                    action: "permute-loops",
                    detail,
                    legality,
                    target,
                }),
            });
        }
    }
}

/// `untiled-reuse` — a reuse component carried by an untiled loop whose
/// symbolic stack distance grows with a problem-size symbol: for large
/// enough bounds the reuse falls out of any fixed cache. Fix-it: tile the
/// carrying loop. Derived from the same [`MissModel`] components the miss
/// predictor evaluates.
pub struct UntiledReuse;

impl UntiledReuse {
    /// Whether `e` has a positively weighted term involving a symbol outside
    /// `tile_syms` — i.e. grows without bound as the problem scales while
    /// tile sizes stay fixed.
    fn grows(e: &Expr, tile_syms: &BTreeSet<Sym>) -> bool {
        e.terms().iter().any(|t| {
            t.coeff > 0
                && Expr::from_terms(vec![t.clone()])
                    .vars()
                    .iter()
                    .any(|v| !tile_syms.contains(v))
        })
    }
}

impl Rule for UntiledReuse {
    fn id(&self) -> &'static str {
        "untiled-reuse"
    }

    fn description(&self) -> &'static str {
        "carried reuse with problem-size stack distance on an untiled loop"
    }

    fn severity_label(&self) -> &'static str {
        "warning"
    }

    fn check(&self, program: &Program, out: &mut Vec<Diagnostic>) {
        let graph = analyze(program);
        // Tile sizes (non-unit stride symbols) are controllable knobs; a
        // distance made only of them is bounded by construction. Loops
        // already acting as tile loops carry whole-working-set reuse by
        // design and are not re-flagged.
        let mut tile_syms: BTreeSet<Sym> = BTreeSet::new();
        let mut tile_loops: BTreeSet<Sym> = BTreeSet::new();
        program.for_each_stmt(|s| {
            for r in &s.refs {
                for d in &r.dims {
                    for (idx, stride) in &d.parts {
                        if stride.as_const() != Some(1) {
                            tile_loops.insert(idx.clone());
                            for v in stride.vars() {
                                tile_syms.insert(v);
                            }
                        }
                    }
                }
            }
        });
        for c in MissModel::build(program).components() {
            let ComponentKind::Carried { loop_index, .. } = &c.kind else {
                continue;
            };
            if tile_loops.contains(loop_index) {
                continue;
            }
            let unbounded = match &c.distance {
                StackDistance::Infinite => false,
                StackDistance::Constant(e) => Self::grows(e, &tile_syms),
                StackDistance::Varying { lo, hi } => {
                    Self::grows(lo, &tile_syms) && Self::grows(hi, &tile_syms)
                }
            };
            if !unbounded {
                continue;
            }
            let name = &program.array(c.array).name;
            let Vetted::Emit { legality, chosen } = vet_tile(program, &graph, c.stmt, loop_index)
            else {
                continue; // suppressed; `illegal-transform` reports it
            };
            let detail = match &chosen {
                Some((t, _)) => format!(
                    "tile loop `{loop_index}` with fresh tile size `{t}` (split into \
                     `{loop_index}T`/`{loop_index}I`) so the reuse of `{name}` spans one \
                     tile instead of the full extent"
                ),
                None => format!(
                    "tile loop `{loop_index}` (split into tile+intra loops) so the \
                     reuse of `{name}` spans one tile instead of the full extent"
                ),
            };
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Warning,
                span: Span {
                    stmt: Some(c.stmt),
                    ref_idx: Some(c.ref_idx),
                    loop_index: Some(loop_index.clone()),
                    array: Some(name.clone()),
                    ..Span::default()
                },
                message: format!(
                    "reuse of `{name}` carried by loop `{loop_index}` has stack distance \
                     {} growing with problem size: capacity misses for large bounds",
                    c.distance
                ),
                fixit: Some(FixIt {
                    action: "tile-loop",
                    detail,
                    legality,
                    target: chosen.map(|(_, target)| target),
                }),
            });
        }
    }
}

/// `illegal-transform` — a locality fix-it the other rules would have
/// proposed provably reverses a data dependence; the fix-it is suppressed
/// and the reason surfaced here instead of silently vanishing.
pub struct IllegalTransform;

impl Rule for IllegalTransform {
    fn id(&self) -> &'static str {
        "illegal-transform"
    }

    fn description(&self) -> &'static str {
        "a locality fix-it was suppressed because it reverses a dependence"
    }

    fn severity_label(&self) -> &'static str {
        "warning"
    }

    fn check(&self, program: &Program, out: &mut Vec<Diagnostic>) {
        let graph = analyze(program);
        for site in permute_sites(program) {
            if !matches!(vet_permute(program, &graph, &site), Vetted::Suppressed) {
                continue;
            }
            let fast: Vec<String> = site.fast.iter().map(|i| format!("`{i}`")).collect();
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Warning,
                span: Span {
                    array: Some(site.array.clone()),
                    loop_index: Some(site.inner.clone()),
                    ..Span::dim(site.stmt, site.ref_idx, site.slow_dim)
                },
                message: format!(
                    "permuting the nest of S{} to run {} innermost would reverse a data \
                     dependence; the stride-innermost fix-it was suppressed",
                    site.stmt.0,
                    fast.join("/")
                ),
                fixit: None,
            });
        }
        let mut seen: BTreeSet<(StmtId, Sym)> = BTreeSet::new();
        for c in MissModel::build(program).components() {
            let ComponentKind::Carried { loop_index, .. } = &c.kind else {
                continue;
            };
            if !seen.insert((c.stmt, loop_index.clone())) {
                continue;
            }
            if !matches!(
                vet_tile(program, &graph, c.stmt, loop_index),
                Vetted::Suppressed
            ) {
                continue;
            }
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Warning,
                span: Span {
                    stmt: Some(c.stmt),
                    loop_index: Some(loop_index.clone()),
                    ..Span::default()
                },
                message: format!(
                    "tiling loop `{loop_index}` around S{} would reverse a data \
                     dependence; the untiled-reuse fix-it was suppressed",
                    c.stmt.0
                ),
                fixit: None,
            });
        }
    }
}

/// `loop-carried-dep` — informational inventory of the loops that carry
/// dependences, with a flow/anti/output breakdown. A loop that carries a
/// dependence orders its iterations and bounds both parallelization and
/// the transforms the legality checks will admit.
pub struct LoopCarriedDep;

impl Rule for LoopCarriedDep {
    fn id(&self) -> &'static str {
        "loop-carried-dep"
    }

    fn description(&self) -> &'static str {
        "loops carrying flow/anti/output dependences are inventoried"
    }

    fn severity_label(&self) -> &'static str {
        "info"
    }

    fn check(&self, program: &Program, out: &mut Vec<Diagnostic>) {
        let graph = analyze(program);
        // (loop name, [flow, anti, output] counts) in program loop order.
        let mut counts: BTreeMap<Sym, [usize; 3]> = BTreeMap::new();
        for info in graph.loops() {
            for d in graph.carried_by(info.id) {
                let slot = match d.kind {
                    DepKind::Flow => 0,
                    DepKind::Anti => 1,
                    DepKind::Output => 2,
                };
                counts.entry(info.index.clone()).or_default()[slot] += 1;
            }
        }
        for (index, [flow, anti, output]) in counts {
            let mut parts = Vec::new();
            for (n, label) in [(flow, "flow"), (anti, "anti"), (output, "output")] {
                if n > 0 {
                    parts.push(format!("{n} {label}"));
                }
            }
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Info,
                span: Span::loop_(index.clone()),
                message: format!(
                    "loop `{index}` carries {} dependence(s): its iterations must run \
                     in order",
                    parts.join(" + ")
                ),
                fixit: None,
            });
        }
    }
}

/// `parallelizable-loop` — loops that carry no dependence at all: every
/// iteration is independent and the loop can run in parallel (the shared
/// memory multiprocessor case the paper targets).
pub struct ParallelizableLoop;

impl Rule for ParallelizableLoop {
    fn id(&self) -> &'static str {
        "parallelizable-loop"
    }

    fn description(&self) -> &'static str {
        "loops carrying no dependence are flagged as parallelizable"
    }

    fn severity_label(&self) -> &'static str {
        "info"
    }

    fn check(&self, program: &Program, out: &mut Vec<Diagnostic>) {
        let graph = analyze(program);
        for info in graph.loops() {
            if !graph.parallelizable(info.id) {
                continue;
            }
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Info,
                span: Span::loop_(info.index.clone()),
                message: format!(
                    "loop `{}` carries no dependence: iterations are independent and \
                     may run in parallel",
                    info.index
                ),
                fixit: None,
            });
        }
    }
}

/// `dead-array` — arrays that are declared but never referenced, or written
/// but never read (a `+=` left-hand side counts as a read).
pub struct DeadArray;

impl Rule for DeadArray {
    fn id(&self) -> &'static str {
        "dead-array"
    }

    fn description(&self) -> &'static str {
        "no unreferenced or write-only arrays"
    }

    fn severity_label(&self) -> &'static str {
        "warning"
    }

    fn check(&self, program: &Program, out: &mut Vec<Diagnostic>) {
        let n = program.arrays.len();
        let mut referenced = vec![false; n];
        let mut read = vec![false; n];
        program.for_each_stmt(|s| {
            for (ri, r) in s.refs.iter().enumerate() {
                referenced[r.array.0] = true;
                let rmw = s.kind == sdlo_ir::StmtKind::MulAddAssign && ri == 0;
                if !r.is_write || rmw {
                    read[r.array.0] = true;
                }
            }
        });
        for (k, a) in program.arrays.iter().enumerate() {
            let message = if !referenced[k] {
                format!("array `{}` is declared but never referenced", a.name)
            } else if !read[k] {
                format!(
                    "array `{}` is written but never read: all its accesses are dead",
                    a.name
                )
            } else {
                continue;
            };
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Warning,
                span: Span::array(a.name.clone()),
                message,
                fixit: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_intra_classifies_parts_in_either_order() {
        let d = DimExpr::tiled("iT", Expr::var("Ti"), "iI");
        let ((t, s), (i, _)) = tile_intra(&d).unwrap();
        assert_eq!(t, &Sym::new("iT"));
        assert_eq!(s, &Expr::var("Ti"));
        assert_eq!(i, &Sym::new("iI"));
        let swapped = DimExpr {
            parts: vec![d.parts[1].clone(), d.parts[0].clone()],
        };
        let ((t2, _), (i2, _)) = tile_intra(&swapped).unwrap();
        assert_eq!(t2, &Sym::new("iT"));
        assert_eq!(i2, &Sym::new("iI"));
        // Two unit strides or two tile strides: not a pair.
        let diag = DimExpr {
            parts: vec![(Sym::new("i"), Expr::one()), (Sym::new("j"), Expr::one())],
        };
        assert!(tile_intra(&diag).is_none());
    }

    #[test]
    fn grows_ignores_tile_only_terms() {
        let tiles: BTreeSet<Sym> = [Sym::new("Ti"), Sym::new("Tj")].into_iter().collect();
        let bounded = Expr::var("Ti") * Expr::var("Tj") + Expr::from(3);
        assert!(!UntiledReuse::grows(&bounded, &tiles));
        let unbounded = Expr::var("Ti") * Expr::var("Nj");
        assert!(UntiledReuse::grows(&unbounded, &tiles));
        // Negative problem-size terms alone do not count as growth.
        let negative = Expr::var("Ti") - Expr::var("Nj");
        assert!(!UntiledReuse::grows(&negative, &tiles));
    }
}
