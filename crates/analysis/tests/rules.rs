//! Per-rule positive fixtures (a seeded defect must be detected with the
//! right rule id and span) and the negative gate: every builtin program
//! lints clean at `error` severity.

use sdlo_analysis::{lint, Diagnostic, FixTarget, Legality, Severity, Span};
use sdlo_ir::{programs, ArrayRef, DimExpr, Expr, Node, Program, Stmt, StmtId, StmtKind, Sym};

fn stmt(id: usize, kind: StmtKind, refs: Vec<ArrayRef>) -> Node {
    Node::Stmt(Stmt {
        id: StmtId(id),
        label: format!("s{id}"),
        refs,
        kind,
    })
}

fn find<'d>(diags: &'d [Diagnostic], rule: &str) -> &'d Diagnostic {
    diags
        .iter()
        .find(|d| d.rule == rule)
        .unwrap_or_else(|| panic!("no `{rule}` diagnostic in {diags:#?}"))
}

#[test]
fn structure_gates_and_reports_validate_errors() {
    // Unbound index `q`: only the structure diagnostic is reported even
    // though other rules would also have findings on this program.
    let mut p = Program::new("bad");
    let a = p.declare("A", vec![Expr::var("N")]);
    p.root = vec![Node::loop_(
        "i",
        Expr::var("N"),
        vec![stmt(
            0,
            StmtKind::ZeroLhs,
            vec![ArrayRef::write(a, vec![DimExpr::index("q")])],
        )],
    )];
    let diags = lint(&p);
    assert_eq!(diags.len(), 1, "structure must gate: {diags:#?}");
    let d = &diags[0];
    assert_eq!(d.rule, "structure");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.stmt, Some(StmtId(0)));
    assert_eq!(d.span.loop_index, Some(Sym::new("q")));
}

#[test]
fn subscript_class_rejects_diagonal_sum() {
    // A[i+j] with both strides 1: neither a plain index nor a tile+intra pair.
    let mut p = Program::new("diag");
    let a = p.declare("A", vec![Expr::var("N")]);
    let d = DimExpr {
        parts: vec![(Sym::new("i"), Expr::one()), (Sym::new("j"), Expr::one())],
    };
    p.root = vec![Node::loop_(
        "i",
        Expr::var("N"),
        vec![Node::loop_(
            "j",
            Expr::var("N"),
            vec![stmt(
                0,
                StmtKind::ZeroLhs,
                vec![ArrayRef::write(a, vec![d])],
            )],
        )],
    )];
    let diags = lint(&p);
    let d = find(&diags, "subscript-class");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(
        (d.span.stmt, d.span.ref_idx, d.span.dim),
        (Some(StmtId(0)), Some(0), Some(0))
    );
}

#[test]
fn subscript_class_rejects_lone_strided_index() {
    // A[i*Ti] without an intra part.
    let mut p = Program::new("strided");
    let a = p.declare("A", vec![Expr::var("N")]);
    let d = DimExpr {
        parts: vec![(Sym::new("i"), Expr::var("Ti"))],
    };
    p.root = vec![Node::loop_(
        "i",
        Expr::var("N"),
        vec![stmt(
            0,
            StmtKind::ZeroLhs,
            vec![ArrayRef::write(a, vec![d])],
        )],
    )];
    let diags = lint(&p);
    let d = find(&diags, "subscript-class");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("stride 1"), "{}", d.message);
}

#[test]
fn tile_consistency_rejects_intra_bound_mismatch() {
    // Stride Ti but the intra loop iI sweeps Tj iterations.
    let mut p = Program::new("mismatch");
    let a = p.declare("A", vec![Expr::var("N")]);
    p.root = vec![Node::loop_(
        "iT",
        Expr::var("N").ceil_div(&Expr::var("Ti")),
        vec![Node::loop_(
            "iI",
            Expr::var("Tj"),
            vec![stmt(
                0,
                StmtKind::ZeroLhs,
                vec![ArrayRef::write(
                    a,
                    vec![DimExpr::tiled("iT", Expr::var("Ti"), "iI")],
                )],
            )],
        )],
    )];
    let diags = lint(&p);
    let d = find(&diags, "tile-consistency");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.loop_index, Some(Sym::new("iT")));
    assert!(d.message.contains("trip count"), "{}", d.message);
}

#[test]
fn tile_consistency_rejects_stride_disagreement_across_refs() {
    // Tile loop iT used with stride Ti in one reference, Tj in another.
    let mut p = Program::new("twostrides");
    let a = p.declare("A", vec![Expr::var("N")]);
    let b = p.declare("B", vec![Expr::var("N")]);
    p.root = vec![Node::loop_(
        "iT",
        Expr::var("N").ceil_div(&Expr::var("Ti")),
        vec![Node::loop_(
            "iI",
            Expr::var("Ti"),
            vec![stmt(
                0,
                StmtKind::Assign,
                vec![
                    ArrayRef::write(a, vec![DimExpr::tiled("iT", Expr::var("Ti"), "iI")]),
                    ArrayRef::read(b, vec![DimExpr::tiled("iT", Expr::var("Tj"), "iI")]),
                ],
            )],
        )],
    )];
    let diags = lint(&p);
    let hit = diags
        .iter()
        .find(|d| d.rule == "tile-consistency" && d.message.contains("used with stride"))
        .unwrap();
    assert_eq!(hit.severity, Severity::Error);
    assert_eq!(hit.span.ref_idx, Some(1), "reported at the second use");
}

#[test]
fn bound_sanity_rejects_non_positive_and_non_rectangular_bounds() {
    let mut p = Program::new("bounds");
    let a = p.declare("A", vec![Expr::var("N"), Expr::var("N")]);
    p.root = vec![Node::loop_(
        "i",
        Expr::zero(),
        vec![Node::loop_(
            "j",
            Expr::var("i"), // triangular: bound depends on outer index
            vec![stmt(
                0,
                StmtKind::ZeroLhs,
                vec![ArrayRef::write(
                    a,
                    vec![DimExpr::index("i"), DimExpr::index("j")],
                )],
            )],
        )],
    )];
    let diags = lint(&p);
    let nonpos = diags
        .iter()
        .find(|d| d.rule == "bound-sanity" && d.message.contains("non-positive"))
        .unwrap();
    assert_eq!(nonpos.severity, Severity::Error);
    assert_eq!(nonpos.span.loop_index, Some(Sym::new("i")));
    let tri = diags
        .iter()
        .find(|d| d.rule == "bound-sanity" && d.message.contains("rectangular"))
        .unwrap();
    assert_eq!(tri.severity, Severity::Error);
    assert_eq!(tri.span.loop_index, Some(Sym::new("j")));
}

#[test]
fn bound_sanity_warns_on_unused_loop_index() {
    let mut p = Program::new("unused");
    let a = p.declare("A", vec![Expr::var("N")]);
    p.root = vec![Node::loop_(
        "i",
        Expr::var("N"),
        vec![Node::loop_(
            "j",
            Expr::var("M"),
            vec![stmt(
                0,
                StmtKind::ZeroLhs,
                vec![ArrayRef::write(a, vec![DimExpr::index("i")])],
            )],
        )],
    )];
    let diags = lint(&p);
    let d = diags
        .iter()
        .find(|d| d.rule == "bound-sanity" && d.span.loop_index == Some(Sym::new("j")))
        .unwrap();
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("no subscript"), "{}", d.message);
}

#[test]
fn model_class_rejects_coupled_subscripts() {
    // A[i,i]: one index drives two dimensions.
    let mut p = Program::new("coupled");
    let a = p.declare("A", vec![Expr::var("N"), Expr::var("N")]);
    p.root = vec![Node::loop_(
        "i",
        Expr::var("N"),
        vec![stmt(
            0,
            StmtKind::ZeroLhs,
            vec![ArrayRef::write(
                a,
                vec![DimExpr::index("i"), DimExpr::index("i")],
            )],
        )],
    )];
    let diags = lint(&p);
    let d = find(&diags, "model-class");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.dim, Some(1), "reported at the second occurrence");
    assert!(d.message.contains("coupled"), "{}", d.message);
}

#[test]
fn model_class_rejects_iteration_dependent_stride() {
    // A[jT*i + jI]: the "stride" varies with enclosing loop index i.
    let mut p = Program::new("varstride");
    let a = p.declare("A", vec![Expr::var("N")]);
    let d = DimExpr {
        parts: vec![
            (Sym::new("jT"), Expr::var("i")),
            (Sym::new("jI"), Expr::one()),
        ],
    };
    p.root = vec![Node::loop_(
        "i",
        Expr::var("N"),
        vec![Node::loop_(
            "jT",
            Expr::var("N"),
            vec![Node::loop_(
                "jI",
                Expr::var("T"),
                vec![stmt(
                    0,
                    StmtKind::ZeroLhs,
                    vec![ArrayRef::write(a, vec![d])],
                )],
            )],
        )],
    )];
    let diags = lint(&p);
    let d = find(&diags, "model-class");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("iteration-invariant"), "{}", d.message);
    assert_eq!(d.span.loop_index, Some(Sym::new("i")));
}

#[test]
fn invariant_ref_reports_component_kind() {
    // matmul's A[i,j] misses the innermost loop k: reuse carried by k.
    let p = programs::matmul();
    let diags = lint(&p);
    let d = diags
        .iter()
        .find(|d| d.rule == "invariant-ref" && d.span.array == Some(Sym::new("A")))
        .unwrap();
    assert_eq!(d.severity, Severity::Info);
    assert_eq!(d.span.ref_idx, Some(1));
    assert!(d.message.contains("`k`"), "{}", d.message);
    assert!(d.message.contains("Carried(k)"), "{}", d.message);
}

#[test]
fn stride_innermost_suggests_permutation() {
    // for i { for j { A[j,i] = 0 } }: innermost j strides the slow dimension.
    let mut p = Program::new("colmajor");
    let a = p.declare("A", vec![Expr::var("N"), Expr::var("N")]);
    p.root = vec![Node::loop_(
        "i",
        Expr::var("N"),
        vec![Node::loop_(
            "j",
            Expr::var("N"),
            vec![stmt(
                0,
                StmtKind::ZeroLhs,
                vec![ArrayRef::write(
                    a,
                    vec![DimExpr::index("j"), DimExpr::index("i")],
                )],
            )],
        )],
    )];
    let diags = lint(&p);
    let d = find(&diags, "stride-innermost");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.span.loop_index, Some(Sym::new("j")));
    assert_eq!(d.span.dim, Some(0));
    let fx = d.fixit.as_ref().unwrap();
    assert_eq!(fx.action, "permute-loops");
    assert!(fx.detail.contains("`i`"), "{}", fx.detail);
}

#[test]
fn untiled_reuse_proposes_tiling_matmul() {
    // B[j,k] in untiled matmul is re-swept per i iteration: SD ~ Nj·Nk.
    let p = programs::matmul();
    let diags = lint(&p);
    let d = diags
        .iter()
        .find(|d| {
            d.rule == "untiled-reuse"
                && d.span.array == Some(Sym::new("B"))
                && d.span.loop_index == Some(Sym::new("i"))
        })
        .unwrap();
    assert_eq!(d.severity, Severity::Warning);
    let fx = d.fixit.as_ref().unwrap();
    assert_eq!(fx.action, "tile-loop");
    assert!(fx.detail.contains("`i`"), "{}", fx.detail);
}

#[test]
fn untiled_reuse_is_quiet_on_tiled_programs() {
    for p in [programs::tiled_matmul(), programs::tiled_two_index()] {
        let diags = lint(&p);
        assert!(
            diags.iter().all(|d| d.rule != "untiled-reuse"),
            "{}: {diags:#?}",
            p.name
        );
    }
}

#[test]
fn dead_array_flags_unreferenced_and_write_only() {
    let mut p = Program::new("dead");
    let a = p.declare("A", vec![Expr::var("N")]);
    let w = p.declare("W", vec![Expr::var("N")]);
    p.declare("Z", vec![Expr::var("N")]); // never referenced
    p.root = vec![Node::loop_(
        "i",
        Expr::var("N"),
        vec![stmt(
            0,
            StmtKind::Assign,
            vec![
                ArrayRef::write(w, vec![DimExpr::index("i")]), // written, never read
                ArrayRef::read(a, vec![DimExpr::index("i")]),
            ],
        )],
    )];
    let diags = lint(&p);
    let z = diags
        .iter()
        .find(|d| d.rule == "dead-array" && d.span.array == Some(Sym::new("Z")))
        .unwrap();
    assert!(z.message.contains("never referenced"), "{}", z.message);
    let w = diags
        .iter()
        .find(|d| d.rule == "dead-array" && d.span.array == Some(Sym::new("W")))
        .unwrap();
    assert!(w.message.contains("never read"), "{}", w.message);
    // A is read: not flagged. A `+=` LHS also counts as a read (builtins).
    assert!(!diags
        .iter()
        .any(|d| d.rule == "dead-array" && d.span.array == Some(Sym::new("A"))));
}

#[test]
fn all_builtins_lint_clean_at_error_severity() {
    for p in [
        programs::matmul(),
        programs::tiled_matmul(),
        programs::two_index_unfused(),
        programs::two_index_fused(),
        programs::tiled_two_index(),
    ] {
        let errors: Vec<_> = lint(&p)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{}: {errors:#?}", p.name);
    }
}

#[test]
fn stride_innermost_fixit_is_proven_and_applies() {
    // colmajor has a single write per iteration → no cross-iteration
    // dependence → the proposed permutation is provably legal, and the
    // carried payload applies cleanly.
    let mut p = Program::new("colmajor");
    let a = p.declare("A", vec![Expr::var("N"), Expr::var("N")]);
    p.root = vec![Node::loop_(
        "i",
        Expr::var("N"),
        vec![Node::loop_(
            "j",
            Expr::var("N"),
            vec![stmt(
                0,
                StmtKind::ZeroLhs,
                vec![ArrayRef::write(
                    a,
                    vec![DimExpr::index("j"), DimExpr::index("i")],
                )],
            )],
        )],
    )];
    let diags = lint(&p);
    let fx = find(&diags, "stride-innermost").fixit.as_ref().unwrap();
    assert_eq!(fx.legality, Legality::Proven);
    let Some(FixTarget::Permute { stmt, order }) = &fx.target else {
        panic!("expected a permute payload: {fx:#?}");
    };
    assert_eq!(*stmt, StmtId(0));
    assert_eq!(order, &[Sym::new("j"), Sym::new("i")]);
    let rewritten = fx.target.as_ref().unwrap().apply(&p).unwrap();
    rewritten.validate().unwrap();
    // After the permute the defect is gone.
    assert!(lint(&rewritten)
        .iter()
        .all(|d| d.rule != "stride-innermost"));
}

#[test]
fn untiled_reuse_fixits_on_matmul_are_proven_with_targets() {
    // matmul's only dependence is the C accumulation carried by j, which
    // tiling any loop preserves: every tile-loop fix-it is proven and
    // carries an applicable payload with a fresh tile-size symbol.
    let p = programs::matmul();
    let diags = lint(&p);
    let mut seen = 0;
    for d in diags.iter().filter(|d| d.rule == "untiled-reuse") {
        let fx = d.fixit.as_ref().unwrap();
        assert_eq!(fx.legality, Legality::Proven, "{d:#?}");
        let Some(target @ FixTarget::Tile { loops, .. }) = &fx.target else {
            panic!("expected a tile payload: {d:#?}");
        };
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].1, Sym::new(format!("T{}", loops[0].0)));
        target.apply(&p).unwrap().validate().unwrap();
        seen += 1;
    }
    assert!(seen > 0, "matmul must trigger untiled-reuse");
}

#[test]
fn builtin_fixits_all_carry_proven_or_assumed() {
    // Acceptance criterion: no emitted fix-it on a builtin is illegal —
    // illegal proposals are suppressed, not emitted.
    for p in [
        programs::matmul(),
        programs::tiled_matmul(),
        programs::two_index_unfused(),
        programs::two_index_fused(),
        programs::tiled_two_index(),
    ] {
        for d in lint(&p) {
            if let Some(fx) = &d.fixit {
                assert_ne!(fx.legality, Legality::Illegal, "{}: {d:#?}", p.name);
            }
        }
    }
}

#[test]
fn illegal_transform_reports_suppressed_permutation() {
    // for i { for j { A[j,i] = A[j-? ...] } } — build the classic
    // interchange-illegal kernel: A[j+1, i] read, A[j, i+1] written is not
    // expressible (no affine offsets), so use the scalar-coupling variant:
    // S reads and writes A[j,i] and A[i,j]; the cross dependence between
    // A[j,i] (write) and A[i,j] (read) is imprecise, so instead force
    // illegality with a same-array read whose subscripts swap the roles of
    // a tile+intra pair. Simplest concrete case: the fused two-index
    // contraction, where interchanging `i` and `n` around the scalar
    // accumulator reverses its flow dependence.
    let p = programs::two_index_fused();
    let diags = lint(&p);
    // The fused kernel reads T[j] under (i,n,j) with fastest dim driven by
    // j already; assert only the rule's machinery: any illegal-transform
    // diagnostics must have no fix-it and mention suppression.
    for d in diags.iter().filter(|d| d.rule == "illegal-transform") {
        assert!(d.fixit.is_none());
        assert!(d.message.contains("suppressed"), "{}", d.message);
    }
}

#[test]
fn loop_carried_and_parallelizable_on_matmul() {
    // matmul: C[i,j] accumulation is carried by j (the "(=, *, =)" output/
    // flow/anti family); i and k carry nothing.
    let p = programs::matmul();
    let diags = lint(&p);
    let carried = find(&diags, "loop-carried-dep");
    assert_eq!(carried.severity, Severity::Info);
    assert_eq!(carried.span.loop_index, Some(Sym::new("j")));
    assert!(carried.message.contains("flow"), "{}", carried.message);
    let par: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "parallelizable-loop")
        .map(|d| d.span.loop_index.clone().unwrap())
        .collect();
    assert_eq!(par, vec![Sym::new("i"), Sym::new("k")]);
}

#[test]
fn diagnostics_sort_errors_first() {
    // A program with both an error (coupled subscript) and warnings.
    let mut p = Program::new("mixed");
    let a = p.declare("A", vec![Expr::var("N"), Expr::var("N")]);
    p.declare("Z", vec![Expr::var("N")]);
    p.root = vec![Node::loop_(
        "i",
        Expr::var("N"),
        vec![stmt(
            0,
            StmtKind::ZeroLhs,
            vec![ArrayRef::write(
                a,
                vec![DimExpr::index("i"), DimExpr::index("i")],
            )],
        )],
    )];
    let diags = lint(&p);
    assert!(diags.len() >= 2);
    assert_eq!(diags[0].severity, Severity::Error);
    let _ = Span::default(); // exercise the public constructor surface
}
