//! The legality contract, checked against ground truth: applying any
//! *proven* fix-it must leave the replayed access trace a permutation of
//! the original — the multiset of element addresses touched by each
//! (statement, reference) site is byte-identical, only the order of
//! iterations moves. Checked on every builtin and on a seeded population
//! of ≥100 random affine programs per CI run.

use sdlo_analysis::{lint, Legality};
use sdlo_ir::{
    ArrayId, ArrayRef, Bindings, CompiledProgram, DimExpr, Expr, LoopNode, Node, Program, Stmt,
    StmtId, StmtKind, Sym,
};
use std::collections::BTreeMap;

/// Per-(stmt, ref) sorted address/write multisets of the full trace.
/// Reference position is recovered by counting: each statement instance
/// emits its references in order, so access `n` of a statement belongs to
/// reference `n % refs.len()`.
fn trace_multisets(
    program: &Program,
    bindings: &Bindings,
) -> BTreeMap<(usize, usize), Vec<(u64, bool)>> {
    let compiled = CompiledProgram::compile(program, bindings)
        .unwrap_or_else(|e| panic!("compile `{}`: {e}", program.name));
    let mut nrefs: BTreeMap<usize, usize> = BTreeMap::new();
    program.for_each_stmt(|s| {
        nrefs.insert(s.id.0, s.refs.len());
    });
    let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
    let mut out: BTreeMap<(usize, usize), Vec<(u64, bool)>> = BTreeMap::new();
    compiled.walk(&mut |a| {
        let seen = counts.entry(a.stmt.0).or_insert(0);
        let ref_idx = *seen % nrefs[&a.stmt.0];
        *seen += 1;
        out.entry((a.stmt.0, ref_idx))
            .or_default()
            .push((a.addr, a.is_write));
    });
    for v in out.values_mut() {
        v.sort_unstable();
    }
    out
}

/// Bind every free symbol of `program` to `bound`, and any *new* symbols of
/// `rewritten` (the fresh tile sizes a tile fix-it introduces) to `tile`.
/// `tile` must divide `bound` so tiled extents stay unpadded and the tiled
/// iteration space covers each original point exactly once.
fn bindings_for(program: &Program, rewritten: &Program, bound: i128, tile: i128) -> Bindings {
    let base = program.free_symbols();
    let mut b = Bindings::new();
    for s in &base {
        b.set(s.name(), bound);
    }
    for s in rewritten.free_symbols() {
        if !base.contains(&s) {
            b.set(s.name(), tile);
        }
    }
    b
}

/// Apply every proven fix-it of `program` (one at a time, each against the
/// original) and assert trace equivalence. Returns how many were checked.
fn check_proven_fixits(program: &Program) -> usize {
    let mut checked = 0;
    for d in lint(program) {
        let Some(fx) = d.fixit else { continue };
        if fx.legality != Legality::Proven {
            continue;
        }
        let Some(target) = fx.target else { continue };
        let rewritten = target
            .apply(program)
            .unwrap_or_else(|e| panic!("`{}`: proven fix-it failed to apply: {e}", program.name));
        rewritten.validate().unwrap();
        let bindings = bindings_for(program, &rewritten, 8, 4);
        let before = trace_multisets(program, &bindings);
        let after = trace_multisets(&rewritten, &bindings);
        assert_eq!(
            before, after,
            "`{}`: trace not permutation-equivalent after `{}`",
            program.name, fx.detail
        );
        checked += 1;
    }
    checked
}

#[test]
fn proven_fixits_preserve_traces_on_all_builtins() {
    use sdlo_ir::programs;
    let mut total = 0;
    for p in [
        programs::matmul(),
        programs::tiled_matmul(),
        programs::two_index_unfused(),
        programs::two_index_fused(),
        programs::tiled_two_index(),
    ] {
        total += check_proven_fixits(&p);
    }
    assert!(
        total >= 3,
        "only {total} proven fix-its across the builtins"
    );
}

// -- seeded random affine programs -------------------------------------------

/// Tiny splitmix-style generator: program shape is a pure function of seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.next().is_multiple_of(one_in)
    }
}

/// A random *affine in-class* program: 1–3 two-dimensional arrays over
/// bounds `N`/`M`, an imperfectly nested loop tree of depth 2–4 (sibling
/// subtrees allowed), and statements whose subscripts are plain stride-1
/// enclosing indices — the class where the dependence tests are exact and
/// proven fix-its abound.
fn random_affine_program(seed: u64) -> Program {
    let mut rng = Lcg(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut p = Program::new(format!("rand{seed}"));
    let n_arrays = 1 + rng.pick(3);
    for a in 0..n_arrays {
        p.declare(format!("Arr{a}"), vec![Expr::var("N"), Expr::var("M")]);
    }

    struct Gen {
        next_stmt: usize,
        next_loop: usize,
        n_arrays: usize,
    }

    impl Gen {
        fn stmt(&mut self, rng: &mut Lcg, enclosing: &[Sym]) -> Node {
            let dim = |rng: &mut Lcg| DimExpr {
                parts: vec![(enclosing[rng.pick(enclosing.len())].clone(), Expr::one())],
            };
            let aref = |rng: &mut Lcg, write: bool| ArrayRef {
                array: ArrayId(rng.pick(self.n_arrays)),
                dims: vec![dim(rng), dim(rng)],
                is_write: write,
            };
            let (kind, refs) = if rng.chance(2) {
                (StmtKind::ZeroLhs, vec![aref(&mut *rng, true)])
            } else {
                (
                    StmtKind::Assign,
                    vec![aref(&mut *rng, true), aref(&mut *rng, false)],
                )
            };
            let id = StmtId(self.next_stmt);
            self.next_stmt += 1;
            Node::Stmt(Stmt {
                id,
                label: format!("s{}", id.0),
                refs,
                kind,
            })
        }

        fn looped(&mut self, rng: &mut Lcg, enclosing: &mut Vec<Sym>, depth: usize) -> Node {
            let index = Sym::new(format!("l{}", self.next_loop));
            self.next_loop += 1;
            let bound = if rng.chance(2) {
                Expr::var("N")
            } else {
                Expr::var("M")
            };
            enclosing.push(index.clone());
            let mut body = Vec::new();
            let children = 1 + rng.pick(2);
            for _ in 0..children {
                if depth < 3 && rng.chance(2) {
                    let child = self.looped(rng, enclosing, depth + 1);
                    body.push(child);
                } else if enclosing.len() >= 2 {
                    body.push(self.stmt(rng, enclosing));
                } else {
                    let child = self.looped(rng, enclosing, depth + 1);
                    body.push(child);
                }
            }
            enclosing.pop();
            Node::Loop(LoopNode { index, bound, body })
        }
    }

    let mut gen = Gen {
        next_stmt: 0,
        next_loop: 0,
        n_arrays,
    };
    let mut enclosing = Vec::new();
    let mut root = vec![gen.looped(&mut rng, &mut enclosing, 0)];
    if rng.chance(2) {
        root.push(gen.looped(&mut rng, &mut enclosing, 1));
    }
    // Statements were numbered in creation order, which is preorder.
    p.root = root;
    p.validate().expect("generator produces valid programs");
    p
}

#[test]
fn proven_fixits_preserve_traces_on_random_programs() {
    // ≥100 seeded programs per CI run, deterministic across machines.
    let mut checked = 0;
    for seed in 0..128u64 {
        checked += check_proven_fixits(&random_affine_program(seed));
    }
    assert!(
        checked >= 20,
        "only {checked} proven fix-its across 128 random programs — generator drifted?"
    );
}
