//! The rule documentation must not drift from the registry: the README
//! rule catalog and the `rules.rs` module-header table are parsed and
//! compared against `Linter::new().catalog()` in both directions.

use sdlo_analysis::Linter;
use std::path::Path;

/// Parse `| `id` | severity | … |` rows out of a markdown table, returning
/// (id, severity) pairs. Rows without a backtick-quoted first cell (header,
/// separator) are skipped.
fn table_rows(text: &str) -> Vec<(String, String)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(body) = line
            .strip_prefix("|")
            .or_else(|| line.strip_prefix("//! |"))
        else {
            continue;
        };
        let cells: Vec<&str> = body.trim_end_matches('|').split('|').collect();
        if cells.len() < 3 {
            continue;
        }
        let id_cell = cells[0].trim();
        let Some(id) = id_cell.strip_prefix('`').and_then(|s| s.strip_suffix('`')) else {
            continue;
        };
        rows.push((id.to_string(), cells[1].trim().to_string()));
    }
    rows
}

fn assert_matches_catalog(rows: &[(String, String)], source: &str) {
    let catalog = Linter::new().catalog();
    assert_eq!(
        rows.len(),
        catalog.len(),
        "{source}: documented {} rules, registry has {}:\n  doc: {rows:?}\n  reg: {catalog:?}",
        rows.len(),
        catalog.len()
    );
    for ((doc_id, doc_sev), (id, sev, _desc)) in rows.iter().zip(&catalog) {
        assert_eq!(doc_id, id, "{source}: rule order/id drift");
        assert_eq!(doc_sev, sev, "{source}: severity drift for `{id}`");
    }
}

#[test]
fn module_header_table_matches_registry() {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/rules.rs");
    let text = std::fs::read_to_string(&src).unwrap();
    let header: String = text
        .lines()
        .take_while(|l| l.starts_with("//!"))
        .collect::<Vec<_>>()
        .join("\n");
    assert_matches_catalog(&table_rows(&header), "src/rules.rs header");
}

#[test]
fn readme_rule_catalog_matches_registry() {
    let readme = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../README.md");
    let text = std::fs::read_to_string(&readme).unwrap();
    let section = text
        .split("### Rule catalog")
        .nth(1)
        .expect("README.md must keep a `### Rule catalog` section");
    let section = section.split("\n\n").find(|b| b.contains("| `"));
    let section = section.expect("a table must follow the Rule catalog heading");
    let rows = table_rows(section);
    assert_matches_catalog(&rows, "README.md rule catalog");
    // The README additionally documents descriptions — keep them verbatim.
    let catalog = Linter::new().catalog();
    for (line, (_, _, desc)) in section
        .lines()
        .filter(|l| l.trim_start().starts_with("| `"))
        .zip(&catalog)
    {
        assert!(
            line.contains(desc),
            "README.md rule catalog: description drift:\n  line: {line}\n  registry: {desc}"
        );
    }
}
