//! Real multithreaded kernels, partitioned exactly as the §7 analysis
//! assumes: a dependence-free outer tile loop is block-distributed over a
//! rayon pool, and each processor runs the sequential tiled code on its
//! subset (with a private `T` buffer for the two-index transform).
//!
//! These kernels provide the measured side of Figures 10–11 and the
//! numerical ground truth for the transformations.

use rayon::prelude::*;

/// Naive triple-loop matrix multiplication (reference).
pub fn naive_matmul(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let aij = a[i * n + j];
            for k in 0..n {
                c[i * n + k] += aij * b[j * n + k];
            }
        }
    }
    c
}

/// Tiled, multithreaded matrix multiplication `C[i,k] += A[i,j]·B[j,k]`.
///
/// The `i` tile loop is block-partitioned across `threads` workers (each
/// worker owns a contiguous band of `C` rows — the Fig. 8/9 partitioning).
/// Tile sizes must divide `n`.
pub fn tiled_matmul(
    a: &[f64],
    b: &[f64],
    n: usize,
    tiles: (usize, usize, usize),
    threads: usize,
) -> Vec<f64> {
    let (ti, tj, tk) = tiles;
    assert!(
        n.is_multiple_of(ti) && n.is_multiple_of(tj) && n.is_multiple_of(tk),
        "tiles must divide n"
    );
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    let mut c = vec![0.0; n * n];
    pool.install(|| {
        c.par_chunks_mut(ti * n)
            .enumerate()
            .for_each(|(it, c_band)| {
                let i0 = it * ti;
                for jt in (0..n).step_by(tj) {
                    for kt in (0..n).step_by(tk) {
                        for ii in 0..ti {
                            let arow = &a[(i0 + ii) * n..];
                            let crow = &mut c_band[ii * n..(ii + 1) * n];
                            for jj in 0..tj {
                                let aij = arow[jt + jj];
                                let brow = &b[(jt + jj) * n..];
                                for kk in 0..tk {
                                    crow[kt + kk] += aij * brow[kt + kk];
                                }
                            }
                        }
                    }
                }
            });
    });
    c
}

/// Naive two-index transform `B[m,n] = Σ_{i,j} C1[m,i]·C2[n,j]·A[i,j]`
/// via the operation-minimal two-step form (reference).
pub fn naive_two_index(a: &[f64], c1: &[f64], c2: &[f64], n: usize) -> Vec<f64> {
    // T[n',i] = Σ_j C2[n',j]·A[i,j]
    let mut t = vec![0.0; n * n];
    for nn in 0..n {
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += c2[nn * n + j] * a[i * n + j];
            }
            t[nn * n + i] = acc;
        }
    }
    // B[m,n'] = Σ_i C1[m,i]·T[n',i]
    let mut bb = vec![0.0; n * n];
    for m in 0..n {
        for nn in 0..n {
            let mut acc = 0.0;
            for i in 0..n {
                acc += c1[m * n + i] * t[nn * n + i];
            }
            bb[m * n + nn] = acc;
        }
    }
    bb
}

/// Tiled, multithreaded two-index transform (the paper's Fig. 6 code).
///
/// The `nT` tile loop is block-partitioned across `threads` workers; each
/// worker owns the `B` columns of its `n`-tiles and a private `Ti × Tn`
/// buffer `T`, so the execution is synchronization-free (§7). Tile sizes
/// must divide `n`. Returns `B` in row-major `n × n` layout.
pub fn tiled_two_index(
    a: &[f64],
    c1: &[f64],
    c2: &[f64],
    n: usize,
    tiles: (usize, usize, usize, usize),
    threads: usize,
) -> Vec<f64> {
    let (ti, tj, tm, tn) = tiles;
    for t in [ti, tj, tm, tn] {
        assert!(n.is_multiple_of(t), "tile {t} must divide n = {n}");
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    let n_tiles = n / tn;
    // Each nT tile produces an (n × tn) column block of B.
    let blocks: Vec<Vec<f64>> = pool.install(|| {
        (0..n_tiles)
            .into_par_iter()
            .map(|nt| {
                let n0 = nt * tn;
                let mut b_block = vec![0.0; n * tn]; // row-major n × tn
                let mut t_buf = vec![0.0; ti * tn];
                for i0 in (0..n).step_by(ti) {
                    // T[iI, nI] = Σ_j A[i0+iI, j] · C2[n0+nI, j], tiled on j.
                    t_buf.fill(0.0);
                    for j0 in (0..n).step_by(tj) {
                        for ii in 0..ti {
                            let arow = &a[(i0 + ii) * n..];
                            for ni in 0..tn {
                                let c2row = &c2[(n0 + ni) * n..];
                                let mut acc = 0.0;
                                for jj in 0..tj {
                                    acc += arow[j0 + jj] * c2row[j0 + jj];
                                }
                                t_buf[ii * tn + ni] += acc;
                            }
                        }
                    }
                    // B[m, n0+nI] += T[iI, nI] · C1[m, i0+iI], tiled on m.
                    for m0 in (0..n).step_by(tm) {
                        for ii in 0..ti {
                            for ni in 0..tn {
                                let t_v = t_buf[ii * tn + ni];
                                for mi in 0..tm {
                                    b_block[(m0 + mi) * tn + ni] +=
                                        t_v * c1[(m0 + mi) * n + i0 + ii];
                                }
                            }
                        }
                    }
                }
                b_block
            })
            .collect()
    });
    // Stitch column blocks into a row-major matrix.
    let mut out = vec![0.0; n * n];
    for (nt, block) in blocks.iter().enumerate() {
        let n0 = nt * tn;
        for m in 0..n {
            out[m * n + n0..m * n + n0 + tn].copy_from_slice(&block[m * tn..(m + 1) * tn]);
        }
    }
    out
}

/// Deterministic pseudo-random test matrix.
pub fn test_matrix(n: usize, seed: u64) -> Vec<f64> {
    let mut x = seed | 1;
    (0..n * n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x % 1000) as f64) / 500.0 - 1.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs()),
                "elem {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn tiled_matmul_matches_naive_any_threads() {
        let n = 32;
        let a = test_matrix(n, 1);
        let b = test_matrix(n, 2);
        let reference = naive_matmul(&a, &b, n);
        for threads in [1, 2, 4] {
            let c = tiled_matmul(&a, &b, n, (8, 4, 16), threads);
            assert_close(&c, &reference, 1e-12);
        }
    }

    #[test]
    fn tiled_two_index_matches_naive_any_threads() {
        let n = 32;
        let a = test_matrix(n, 3);
        let c1 = test_matrix(n, 4);
        let c2 = test_matrix(n, 5);
        let reference = naive_two_index(&a, &c1, &c2, n);
        for threads in [1, 2, 4, 8] {
            let b = tiled_two_index(&a, &c1, &c2, n, (8, 4, 16, 8), threads);
            assert_close(&b, &reference, 1e-9);
        }
    }

    #[test]
    fn thread_count_does_not_change_results_bitwise() {
        // Block partitioning plus private buffers ⇒ identical operation
        // order per element regardless of thread count.
        let n = 16;
        let a = test_matrix(n, 7);
        let c1 = test_matrix(n, 8);
        let c2 = test_matrix(n, 9);
        let b1 = tiled_two_index(&a, &c1, &c2, n, (4, 4, 4, 4), 1);
        let b4 = tiled_two_index(&a, &c1, &c2, n, (4, 4, 4, 4), 4);
        assert_eq!(b1, b4);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_non_dividing_tiles() {
        let n = 10;
        let a = test_matrix(n, 1);
        let _ = tiled_matmul(&a, &a, n, (3, 5, 5), 1);
    }
}
