//! # sdlo-parallel
//!
//! The paper's §7: optimizing the tiled TCE loop nests for shared-memory
//! multiprocessors.
//!
//! * [`SmpAnalysis`] — block-partition a dependence-free outer loop across
//!   `P` processors and analyze each processor's subproblem with the
//!   sequential miss model; the shared-memory access cost is bracketed by
//!   the paper's two [`LimitModel`]s (bus-bandwidth-limited: total misses;
//!   infinite bandwidth: maximum per-processor misses).
//! * [`kernels`] — real multithreaded implementations (rayon) of the tiled
//!   two-index transform and tiled matrix multiplication, partitioned
//!   exactly as the analysis assumes, for wall-clock measurement and
//!   numerical verification.

pub mod kernels;
mod smp;

pub use smp::{LimitModel, MachineParams, SmpAnalysis, SmpError};
