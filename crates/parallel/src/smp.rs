//! Per-processor miss analysis and the §7 limit cost models.

use sdlo_core::{MissModel, ModelError};
use sdlo_ir::Bindings;

/// The two §7 limit models of shared-memory access cost (and a convex blend
/// for machines between the extremes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LimitModel {
    /// Memory bus bandwidth is the bottleneck: processors serialize on main
    /// memory, cost ∝ **total** misses across processors.
    BusLimited,
    /// Unlimited bandwidth: processors overlap perfectly, cost ∝ the
    /// **maximum** per-processor miss count.
    InfiniteBandwidth,
    /// `λ·total + (1−λ)·max` — real machines sit between the limits.
    Mixed(f64),
}

/// Calibration constants turning operation/miss counts into seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineParams {
    /// Sustained multiply–add throughput of one processor (ops/s).
    pub flops_per_sec: f64,
    /// Cost of one cache miss (s).
    pub miss_penalty: f64,
}

impl Default for MachineParams {
    fn default() -> Self {
        // Representative of the paper's era (Sun Sunfire, ~2004): ~300
        // Mflop/s sustained per CPU, ~250 ns per miss to shared memory.
        MachineParams {
            flops_per_sec: 3.0e8,
            miss_penalty: 2.5e-7,
        }
    }
}

/// Errors from the SMP analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmpError {
    /// Underlying model evaluation failed.
    Model(ModelError),
    /// The split loop's bound is not divisible by the processor count.
    UnevenSplit {
        /// The bound being split.
        bound: u64,
        /// Number of processors.
        processors: u64,
    },
}

impl std::fmt::Display for SmpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmpError::Model(e) => write!(f, "{e}"),
            SmpError::UnevenSplit { bound, processors } => {
                write!(f, "bound {bound} not divisible by {processors} processors")
            }
        }
    }
}

impl std::error::Error for SmpError {}

impl From<ModelError> for SmpError {
    fn from(e: ModelError) -> Self {
        SmpError::Model(e)
    }
}

/// Block-partitioned SMP analysis of a tiled loop nest.
///
/// The split loop must be synchronization-free (no loop-carried
/// dependences), which holds for the common outer loops of TCE-generated
/// imperfect nests (§7). Each processor's subproblem is the same program
/// with the split bound divided by `P` — so the *sequential* model answers
/// every per-processor question.
pub struct SmpAnalysis<'a> {
    model: &'a MissModel,
    /// Symbol of the loop bound being block-partitioned (e.g. `"Nn"`).
    split_sym: String,
    /// Statement-instance work is proportional to total accesses; we charge
    /// one multiply–add per three accesses.
    ops_total: u64,
}

impl<'a> SmpAnalysis<'a> {
    /// Create an analysis splitting the loop whose bound symbol is
    /// `split_sym`. `ops_total` is the total multiply–add count of the
    /// whole problem (used for the compute term).
    pub fn new(model: &'a MissModel, split_sym: impl Into<String>, ops_total: u64) -> Self {
        SmpAnalysis {
            model,
            split_sym: split_sym.into(),
            ops_total,
        }
    }

    /// Bindings of one processor's subproblem.
    fn sub_bindings(&self, full: &Bindings, p: u64) -> Result<Bindings, SmpError> {
        let sym = sdlo_symbolic::Sym::new(self.split_sym.as_str());
        let bound = full.get(&sym).expect("split bound must be bound") as u64;
        if !bound.is_multiple_of(p) {
            return Err(SmpError::UnevenSplit {
                bound,
                processors: p,
            });
        }
        let mut b = full.clone();
        b.set(self.split_sym.as_str(), (bound / p) as i128);
        Ok(b)
    }

    /// Misses of one processor's subproblem (all processors are symmetric
    /// under block partitioning of a full-range parallel loop).
    pub fn per_processor_misses(
        &self,
        full: &Bindings,
        cache_size: u64,
        p: u64,
    ) -> Result<u64, SmpError> {
        let sub = self.sub_bindings(full, p)?;
        Ok(self.model.predict_misses(&sub, cache_size)?)
    }

    /// Total misses across all processors.
    pub fn total_misses(&self, full: &Bindings, cache_size: u64, p: u64) -> Result<u64, SmpError> {
        Ok(self.per_processor_misses(full, cache_size, p)? * p)
    }

    /// Predicted wall-clock time on `p` processors under a limit model.
    pub fn predicted_time(
        &self,
        full: &Bindings,
        cache_size: u64,
        p: u64,
        machine: &MachineParams,
        limit: LimitModel,
    ) -> Result<f64, SmpError> {
        let per = self.per_processor_misses(full, cache_size, p)? as f64;
        let total = per * p as f64;
        let memory = match limit {
            LimitModel::BusLimited => total,
            LimitModel::InfiniteBandwidth => per,
            LimitModel::Mixed(lambda) => lambda * total + (1.0 - lambda) * per,
        } * machine.miss_penalty;
        let compute = self.ops_total as f64 / (p as f64 * machine.flops_per_sec);
        Ok(compute + memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdlo_ir::programs;

    fn bindings(n: i128, t: (i128, i128, i128, i128)) -> Bindings {
        Bindings::new()
            .with("Ni", n)
            .with("Nj", n)
            .with("Nm", n)
            .with("Nn", n)
            .with("Ti", t.0)
            .with("Tj", t.1)
            .with("Tm", t.2)
            .with("Tn", t.3)
    }

    #[test]
    fn subproblem_misses_shrink_with_processors() {
        let p = programs::tiled_two_index();
        let model = MissModel::build(&p);
        let smp = SmpAnalysis::new(&model, "Nn", 2 * 256u64.pow(3));
        let b = bindings(256, (64, 16, 16, 16));
        let mut prev = u64::MAX;
        for procs in [1u64, 2, 4, 8] {
            let per = smp.per_processor_misses(&b, 8192, procs).unwrap();
            assert!(per < prev, "P={procs}: {per} >= {prev}");
            prev = per;
        }
    }

    #[test]
    fn limit_models_bracket_mixed() {
        let p = programs::tiled_two_index();
        let model = MissModel::build(&p);
        let smp = SmpAnalysis::new(&model, "Nn", 2 * 256u64.pow(3));
        let b = bindings(256, (64, 16, 16, 16));
        let m = MachineParams::default();
        let procs = 4;
        let bus = smp
            .predicted_time(&b, 8192, procs, &m, LimitModel::BusLimited)
            .unwrap();
        let inf = smp
            .predicted_time(&b, 8192, procs, &m, LimitModel::InfiniteBandwidth)
            .unwrap();
        let mid = smp
            .predicted_time(&b, 8192, procs, &m, LimitModel::Mixed(0.5))
            .unwrap();
        assert!(inf <= mid && mid <= bus, "{inf} {mid} {bus}");
    }

    #[test]
    fn time_decreases_with_processors_under_infinite_bandwidth() {
        let p = programs::tiled_two_index();
        let model = MissModel::build(&p);
        let smp = SmpAnalysis::new(&model, "Nn", 2 * 256u64.pow(3));
        let b = bindings(256, (64, 16, 16, 16));
        let m = MachineParams::default();
        let mut prev = f64::MAX;
        for procs in [1u64, 2, 4, 8] {
            let t = smp
                .predicted_time(&b, 8192, procs, &m, LimitModel::InfiniteBandwidth)
                .unwrap();
            assert!(t < prev);
            prev = t;
        }
    }

    #[test]
    fn uneven_split_is_rejected() {
        let p = programs::tiled_two_index();
        let model = MissModel::build(&p);
        let smp = SmpAnalysis::new(&model, "Nn", 1);
        let b = bindings(256, (16, 16, 16, 16));
        assert!(matches!(
            smp.per_processor_misses(&b, 8192, 3),
            Err(SmpError::UnevenSplit { .. })
        ));
    }
}
