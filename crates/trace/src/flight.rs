//! Always-on flight recorder: a lock-cheap ring buffer of the last N
//! request records plus threshold-triggered slow-request captures that
//! snapshot the full span tree of an offending request.
//!
//! The recorder is designed to run in production with tracing *enabled*:
//! every request costs one `fetch_add` plus one uncontended per-slot mutex
//! (each slot has its own lock, so concurrent workers almost never collide),
//! and span records stream into a bounded ring so memory stays flat no
//! matter how long the process runs. When a request's total latency crosses
//! `slow_threshold_micros`, the recorder extracts that request's span
//! subtree from the ring into a [`SlowCapture`] — the full queue/exec/write
//! breakdown of exactly the request you wish you had profiled.

use crate::{chrome, Collect, Record};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One request as the flight recorder remembers it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightRecord {
    /// Monotonic sequence number; also the ring ticket returned by `push`.
    pub seq: u64,
    /// Protocol op (`predict`, `advise`, …).
    pub op: String,
    /// Canonical structural hash of the routed program, 0 for keyless ops.
    pub canon_hash: u64,
    /// `ok` or the error kind.
    pub status: String,
    /// Microseconds queued before a worker picked the request up.
    pub queue_micros: u64,
    /// Microseconds executing in the engine.
    pub exec_micros: u64,
    /// Microseconds between completion and the reply flush (reorder + write).
    pub write_micros: u64,
    /// End-to-end microseconds as the server saw them.
    pub total_micros: u64,
    /// Overload retries spent on this request (router side).
    pub retries: u64,
    /// Backend failovers spent on this request (router side).
    pub failovers: u64,
    /// Correlation id echoed on the reply.
    pub request_id: String,
    /// Fleet-wide trace id, empty when the request carried no trace context.
    pub trace_id: String,
    /// Unix microseconds when the record was pushed.
    pub end_unix_micros: u64,
}

/// A slow request's span tree, captured when its total crossed the
/// recorder's threshold.
#[derive(Debug, Clone)]
pub struct SlowCapture {
    pub record: FlightRecord,
    /// The request's span subtree (root first), cloned from the span ring.
    pub spans: Vec<Record>,
}

/// Ring buffer of recent requests + bounded span ring + slow captures.
///
/// Also implements [`Collect`], so it can be installed as the process trace
/// collector: span records stream into the bounded span ring, which is what
/// slow captures and `trace_dump` draw from.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FlightRecord>>>,
    head: AtomicU64,
    slow_threshold_micros: u64,
    slow: Mutex<VecDeque<SlowCapture>>,
    span_ring: Mutex<VecDeque<Record>>,
    span_capacity: usize,
}

/// How many slow captures are retained (oldest evicted first).
const MAX_SLOW_CAPTURES: usize = 16;

impl FlightRecorder {
    /// `capacity` request slots; requests slower than
    /// `slow_threshold_micros` total trigger a span-tree capture.
    pub fn new(capacity: usize, slow_threshold_micros: u64) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            slow_threshold_micros,
            slow: Mutex::new(VecDeque::new()),
            // Spans per request vary; 32 records per slot is roomy for the
            // service.request → model.build → tilesearch.* trees we emit.
            span_ring: Mutex::new(VecDeque::new()),
            span_capacity: capacity.saturating_mul(32).max(1024),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    pub fn slow_threshold_micros(&self) -> u64 {
        self.slow_threshold_micros
    }

    /// Record a finished request. Returns the record's sequence number — a
    /// ticket that [`FlightRecorder::amend_write`] accepts later, once the
    /// reply has actually been flushed and the write phase is measurable.
    ///
    /// `root_span` is the request's root span id; when the total already
    /// crosses the slow threshold the span subtree under it is captured.
    pub fn push(&self, mut record: FlightRecord, root_span: Option<u64>) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        record.seq = seq;
        record.end_unix_micros = crate::epoch_unix_micros() + crate::now_micros();
        self.maybe_capture_slow(&record, root_span);
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().unwrap() = Some(record);
        seq
    }

    /// Add the write-phase micros to a previously pushed record, identified
    /// by the ticket `push` returned. A no-op when the slot has since been
    /// overwritten by a newer request — the ring never blocks on stragglers.
    pub fn amend_write(&self, ticket: u64, write_micros: u64) {
        let slot = (ticket % self.slots.len() as u64) as usize;
        let mut guard = self.slots[slot].lock().unwrap();
        if let Some(rec) = guard.as_mut() {
            if rec.seq == ticket {
                rec.write_micros = write_micros;
                rec.total_micros = rec.total_micros.saturating_add(write_micros);
            }
        }
    }

    fn maybe_capture_slow(&self, record: &FlightRecord, root_span: Option<u64>) {
        if self.slow_threshold_micros == 0 || record.total_micros < self.slow_threshold_micros {
            return;
        }
        let spans = match root_span {
            Some(root) => self.subtree(root),
            None => Vec::new(),
        };
        let mut slow = self.slow.lock().unwrap();
        if slow.len() >= MAX_SLOW_CAPTURES {
            slow.pop_front();
        }
        slow.push_back(SlowCapture {
            record: record.clone(),
            spans,
        });
    }

    /// Clone every span record reachable from `root` out of the span ring.
    fn subtree(&self, root: u64) -> Vec<Record> {
        let ring = self.span_ring.lock().unwrap();
        let mut keep: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        keep.insert(root);
        // The ring is in emission order, so a child's Begin always follows
        // its parent's: one forward pass closes the set.
        for r in ring.iter() {
            if let Record::Begin {
                id,
                parent: Some(p),
                ..
            } = r
            {
                if keep.contains(p) {
                    keep.insert(*id);
                }
            }
        }
        ring.iter()
            .filter(|r| {
                let id = match r {
                    Record::Begin { id, .. }
                    | Record::End { id, .. }
                    | Record::Attr { id, .. }
                    | Record::Count { id, .. } => id,
                };
                keep.contains(id)
            })
            .cloned()
            .collect()
    }

    /// Most-recent-last snapshot of the request ring.
    pub fn records(&self) -> Vec<FlightRecord> {
        let mut out: Vec<FlightRecord> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap().clone())
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Retained slow captures, oldest first.
    pub fn slow(&self) -> Vec<SlowCapture> {
        self.slow.lock().unwrap().iter().cloned().collect()
    }

    /// The slowest retained request per op: `(op, record)`.
    pub fn slowest_per_op(&self) -> Vec<(String, FlightRecord)> {
        let mut best: std::collections::BTreeMap<String, FlightRecord> =
            std::collections::BTreeMap::new();
        for rec in self.records() {
            match best.get(&rec.op) {
                Some(b) if b.total_micros >= rec.total_micros => {}
                _ => {
                    best.insert(rec.op.clone(), rec);
                }
            }
        }
        best.into_iter().collect()
    }

    /// Render the span ring as a Chrome trace-event JSON document.
    pub fn chrome_trace(&self) -> String {
        let ring = self.span_ring.lock().unwrap();
        let records: Vec<Record> = ring.iter().cloned().collect();
        drop(ring);
        chrome::render(&records)
    }

    /// Total requests pushed since startup (not bounded by capacity).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }
}

impl Collect for FlightRecorder {
    fn record(&self, record: Record) {
        let mut ring = self.span_ring.lock().unwrap();
        if ring.len() >= self.span_capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn rec(op: &str, total: u64) -> FlightRecord {
        FlightRecord {
            op: op.to_string(),
            status: "ok".to_string(),
            total_micros: total,
            exec_micros: total,
            request_id: format!("req-{op}-{total}"),
            ..FlightRecord::default()
        }
    }

    #[test]
    fn ring_keeps_last_n_and_orders_by_seq() {
        let fr = FlightRecorder::new(4, 0);
        for i in 0..10u64 {
            fr.push(rec("predict", i), None);
        }
        let records = fr.records();
        assert_eq!(records.len(), 4);
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(fr.pushed(), 10);
    }

    #[test]
    fn amend_write_updates_live_slot_and_ignores_stale_ticket() {
        let fr = FlightRecorder::new(2, 0);
        let t0 = fr.push(rec("predict", 100), None);
        fr.amend_write(t0, 7);
        let r = &fr.records()[0];
        assert_eq!(r.write_micros, 7);
        assert_eq!(r.total_micros, 107);
        // Overwrite the slot, then amend with the stale ticket: no effect.
        let _t1 = fr.push(rec("advise", 50), None);
        let _t2 = fr.push(rec("lint", 60), None);
        fr.amend_write(t0, 999);
        assert!(fr.records().iter().all(|r| r.write_micros != 999));
    }

    #[test]
    fn slow_threshold_captures_span_subtree() {
        let fr = FlightRecorder::new(8, 50);
        // Feed a two-span tree plus an unrelated span into the span ring.
        fr.record(Record::Begin {
            id: 1,
            parent: None,
            name: Cow::Borrowed("service.request"),
            ts_micros: 0,
            tid: 1,
        });
        fr.record(Record::Begin {
            id: 2,
            parent: Some(1),
            name: Cow::Borrowed("model.build"),
            ts_micros: 1,
            tid: 1,
        });
        fr.record(Record::End {
            id: 2,
            name: Cow::Borrowed("model.build"),
            ts_micros: 5,
            tid: 1,
        });
        fr.record(Record::End {
            id: 1,
            name: Cow::Borrowed("service.request"),
            ts_micros: 9,
            tid: 1,
        });
        fr.record(Record::Begin {
            id: 3,
            parent: None,
            name: Cow::Borrowed("other.request"),
            ts_micros: 10,
            tid: 2,
        });
        fr.push(rec("predict", 10), Some(1)); // below threshold
        assert!(fr.slow().is_empty());
        fr.push(rec("predict", 80), Some(1)); // above threshold
        let slow = fr.slow();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].record.total_micros, 80);
        assert_eq!(slow[0].spans.len(), 4); // spans 1 and 2, not 3
        assert!(slow[0].spans.iter().all(|r| match r {
            Record::Begin { id, .. } | Record::End { id, .. } => *id != 3,
            _ => true,
        }));
    }

    #[test]
    fn slowest_per_op_picks_max_total() {
        let fr = FlightRecorder::new(16, 0);
        fr.push(rec("predict", 10), None);
        fr.push(rec("predict", 90), None);
        fr.push(rec("advise", 40), None);
        let slowest = fr.slowest_per_op();
        assert_eq!(slowest.len(), 2);
        assert_eq!(slowest[0].0, "advise");
        assert_eq!(slowest[0].1.total_micros, 40);
        assert_eq!(slowest[1].0, "predict");
        assert_eq!(slowest[1].1.total_micros, 90);
    }

    #[test]
    fn span_ring_is_bounded() {
        let fr = FlightRecorder::new(1, 0);
        for i in 0..(fr.span_capacity as u64 + 100) {
            fr.record(Record::Count {
                id: i,
                key: Cow::Borrowed("n"),
                delta: 1,
            });
        }
        assert_eq!(fr.span_ring.lock().unwrap().len(), fr.span_capacity);
    }

    #[test]
    fn chrome_trace_renders_ring() {
        let fr = FlightRecorder::new(4, 0);
        fr.record(Record::Begin {
            id: 1,
            parent: None,
            name: Cow::Borrowed("service.request"),
            ts_micros: 3,
            tid: 1,
        });
        fr.record(Record::End {
            id: 1,
            name: Cow::Borrowed("service.request"),
            ts_micros: 8,
            tid: 1,
        });
        let doc = fr.chrome_trace();
        assert!(doc.contains("\"ph\":\"B\""));
        assert!(doc.contains("\"ph\":\"E\""));
        assert!(doc.contains("service.request"));
    }
}
