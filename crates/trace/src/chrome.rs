//! Chrome trace-event JSON export (the `chrome://tracing` / Perfetto
//! format): every span renders as a balanced `"ph":"B"` / `"ph":"E"` pair
//! on its thread's track, with attributes as `args` on the B event and
//! span-scoped counters as `args` on the E event.
//!
//! The writer is self-contained (this crate is dependency-free); only the
//! small subset of JSON the trace format needs is produced: objects,
//! arrays, strings, integers, floats and booleans.

use crate::{AttrValue, Record};
use std::collections::BTreeMap;
use std::fmt::Write as _;

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_attr(out: &mut String, v: &AttrValue) {
    match v {
        AttrValue::Int(i) => {
            let _ = write!(out, "{i}");
        }
        AttrValue::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        AttrValue::Float(f) if f.is_finite() => {
            let _ = write!(out, "{f}");
        }
        AttrValue::Float(_) => out.push_str("null"),
        AttrValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        AttrValue::Str(s) => push_json_str(out, s),
    }
}

fn push_args(out: &mut String, args: &[(String, String)]) {
    out.push('{');
    for (i, (k, rendered)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        out.push_str(rendered);
    }
    out.push('}');
}

fn push_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    ph: char,
    ts: u64,
    tid: u64,
    args: &[(String, String)],
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("  {\"name\":");
    push_json_str(out, name);
    let _ = write!(
        out,
        ",\"cat\":\"sdlo\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":"
    );
    push_args(out, args);
    out.push('}');
}

/// Render records as a complete Chrome trace-event JSON document.
///
/// Attributes render as `args` on the span's B event; counters (summed per
/// key) as `args` on its E event. Records of unclosed spans still emit
/// their B event so truncated traces stay loadable.
pub fn render(records: &[Record]) -> String {
    // First pass: group attributes and counters by span id.
    let mut attrs: BTreeMap<u64, Vec<(String, String)>> = BTreeMap::new();
    let mut counters: BTreeMap<u64, BTreeMap<String, u64>> = BTreeMap::new();
    for r in records {
        match r {
            Record::Attr { id, key, value } => {
                let mut rendered = String::new();
                push_attr(&mut rendered, value);
                attrs
                    .entry(*id)
                    .or_default()
                    .push((key.to_string(), rendered));
            }
            Record::Count { id, key, delta } => {
                *counters
                    .entry(*id)
                    .or_default()
                    .entry(key.to_string())
                    .or_insert(0) += delta;
            }
            _ => {}
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    for r in records {
        match r {
            Record::Begin {
                id,
                name,
                ts_micros,
                tid,
                ..
            } => {
                let args = attrs.get(id).cloned().unwrap_or_default();
                push_event(&mut out, &mut first, name, 'B', *ts_micros, *tid, &args);
            }
            Record::End {
                id,
                name,
                ts_micros,
                tid,
            } => {
                let args: Vec<(String, String)> = counters
                    .get(id)
                    .map(|cs| cs.iter().map(|(k, v)| (k.clone(), v.to_string())).collect())
                    .unwrap_or_default();
                push_event(&mut out, &mut first, name, 'E', *ts_micros, *tid, &args);
            }
            _ => {}
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    #[test]
    fn renders_balanced_events_with_args() {
        let records = vec![
            Record::Begin {
                id: 1,
                parent: None,
                name: Cow::Borrowed("model.build"),
                ts_micros: 10,
                tid: 1,
            },
            Record::Attr {
                id: 1,
                key: Cow::Borrowed("program"),
                value: AttrValue::Str("a\"b".to_string()),
            },
            Record::Count {
                id: 1,
                key: Cow::Borrowed("components"),
                delta: 9,
            },
            Record::End {
                id: 1,
                name: Cow::Borrowed("model.build"),
                ts_micros: 42,
                tid: 1,
            },
        ];
        let json = render(&records);
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"program\":\"a\\\"b\""));
        assert!(json.contains("\"components\":9"));
        assert!(json.contains("\"ts\":10"));
        assert!(json.contains("\"ts\":42"));
    }

    #[test]
    fn empty_records_render_empty_document() {
        let json = render(&[]);
        assert!(json.contains("\"traceEvents\":["));
    }
}
