//! Leveled structured JSON logging for operational events.
//!
//! One JSON object per line on stderr, always carrying the four required
//! keys `ts` (unix microseconds), `level`, `component`, `event`, followed by
//! event-specific fields:
//!
//! ```text
//! {"ts":1754650000123456,"level":"warn","component":"router","event":"backend.failover","backend":"127.0.0.1:9001","failovers":1}
//! ```
//!
//! The level comes from `SDLO_LOG=error|warn|info|debug` (default `info`);
//! an unparseable value falls back to the default rather than failing — the
//! logger must never take the process down. Tests can divert output with
//! [`set_sink`] and force a level with [`set_level`].

use crate::{chrome::push_json_str, AttrValue};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Log severity, ordered: `Error < Warn < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            3 => Level::Debug,
            _ => Level::Info,
        }
    }
}

/// Sentinel meaning "not initialized yet — read SDLO_LOG on first use".
const UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

type Sink = Box<dyn Fn(&str) + Send + Sync>;
static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// The active level: `SDLO_LOG` on first call, `info` when unset or
/// unparseable, unless overridden by [`set_level`].
pub fn level() -> Level {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != UNSET {
        return Level::from_u8(v);
    }
    let initial = std::env::var("SDLO_LOG")
        .ok()
        .and_then(|s| Level::parse(&s))
        .unwrap_or(Level::Info);
    // Racing first calls may both read the env; they agree on the value.
    LEVEL.store(initial as u8, Ordering::Relaxed);
    initial
}

/// Override the active level (wins over `SDLO_LOG`).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether a record at `level` would currently be emitted.
pub fn enabled(level: Level) -> bool {
    level <= self::level()
}

/// Divert log lines to `sink` instead of stderr (for tests). Pass `None` to
/// restore stderr.
pub fn set_sink(sink: Option<Sink>) {
    *SINK.lock().unwrap() = sink;
}

/// Render one log line (no trailing newline). Public so tests can pin the
/// format without capturing stderr.
pub fn render_line(
    level: Level,
    component: &str,
    event: &str,
    fields: &[(&str, AttrValue)],
) -> String {
    let ts = crate::epoch_unix_micros() + crate::now_micros();
    let mut out = String::with_capacity(96);
    let _ = write!(out, "{{\"ts\":{ts},\"level\":\"{}\",", level.as_str());
    out.push_str("\"component\":");
    push_json_str(&mut out, component);
    out.push_str(",\"event\":");
    push_json_str(&mut out, event);
    for (key, value) in fields {
        out.push(',');
        push_json_str(&mut out, key);
        out.push(':');
        match value {
            AttrValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            AttrValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            AttrValue::Float(f) if f.is_finite() => {
                let _ = write!(out, "{f}");
            }
            AttrValue::Float(_) => out.push_str("null"),
            AttrValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            AttrValue::Str(s) => push_json_str(&mut out, s),
        }
    }
    out.push('}');
    out
}

/// Emit one structured record if `level` passes the active filter.
pub fn log(level: Level, component: &str, event: &str, fields: &[(&str, AttrValue)]) {
    if !enabled(level) {
        return;
    }
    let line = render_line(level, component, event, fields);
    let sink = SINK.lock().unwrap();
    match sink.as_ref() {
        Some(f) => f(&line),
        None => eprintln!("{line}"),
    }
}

pub fn error(component: &str, event: &str, fields: &[(&str, AttrValue)]) {
    log(Level::Error, component, event, fields);
}

pub fn warn(component: &str, event: &str, fields: &[(&str, AttrValue)]) {
    log(Level::Warn, component, event, fields);
}

pub fn info(component: &str, event: &str, fields: &[(&str, AttrValue)]) {
    log(Level::Info, component, event, fields);
}

pub fn debug(component: &str, event: &str, fields: &[(&str, AttrValue)]) {
    log(Level::Debug, component, event, fields);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// The sink and level are process-global; serialize tests that touch them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn render_line_is_one_json_object_with_required_keys() {
        let _g = lock();
        let line = render_line(
            Level::Warn,
            "router",
            "backend.failover",
            &[
                ("backend", AttrValue::Str("127.0.0.1:9001".to_string())),
                ("failovers", AttrValue::UInt(2)),
                ("healthy", AttrValue::Bool(false)),
            ],
        );
        assert!(line.starts_with("{\"ts\":"));
        assert!(line.contains("\"level\":\"warn\""));
        assert!(line.contains("\"component\":\"router\""));
        assert!(line.contains("\"event\":\"backend.failover\""));
        assert!(line.contains("\"backend\":\"127.0.0.1:9001\""));
        assert!(line.contains("\"failovers\":2"));
        assert!(line.contains("\"healthy\":false"));
        assert!(line.ends_with('}'));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn strings_are_escaped() {
        let _g = lock();
        let line = render_line(
            Level::Error,
            "service",
            "disk.reject",
            &[("reason", AttrValue::Str("bad \"crc\"\nline".to_string()))],
        );
        assert!(line.contains("\"reason\":\"bad \\\"crc\\\"\\nline\""));
    }

    #[test]
    fn level_filter_suppresses_below_threshold() {
        let _g = lock();
        let captured: Arc<StdMutex<Vec<String>>> = Arc::new(StdMutex::new(Vec::new()));
        let captured2 = captured.clone();
        set_sink(Some(Box::new(move |line| {
            captured2.lock().unwrap().push(line.to_string());
        })));
        set_level(Level::Warn);
        info("service", "ignored", &[]);
        warn("service", "kept", &[]);
        error("service", "kept_too", &[]);
        set_level(Level::Info);
        set_sink(None);
        let lines = captured.lock().unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"kept\""));
        assert!(lines[1].contains("\"event\":\"kept_too\""));
    }

    #[test]
    fn level_parse_accepts_known_names_only() {
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse(" warn "), Some(Level::Warn));
        assert_eq!(Level::parse("verbose"), None);
    }
}
