//! # sdlo-trace
//!
//! Low-overhead structured tracing for the analysis pipeline: nestable
//! **spans** with monotonic microsecond timings, typed **attributes**, and
//! span-scoped **counters** (components enumerated, tiles pruned, accesses
//! streamed, …).
//!
//! The default state is **off**: [`span`] and [`count`] check one relaxed
//! atomic load and return immediately, so instrumented hot paths cost
//! nothing in production. A process installs a [`Collect`]or (usually a
//! [`MemoryCollector`]) around the region it wants profiled:
//!
//! ```
//! let collector = sdlo_trace::MemoryCollector::new();
//! sdlo_trace::install(collector.clone());
//! {
//!     let span = sdlo_trace::span("model.build");
//!     span.attr("program", "tiled_matmul");
//!     span.add("components", 9);
//! }
//! sdlo_trace::uninstall();
//! let chrome_json = collector.chrome_trace(); // loadable in Perfetto
//! let phases = collector.summary();           // per-phase totals
//! assert_eq!(phases[0].name, "model.build");
//! assert_eq!(phases[0].counters["components"], 9);
//! ```
//!
//! Spans nest per thread: dropping the guard closes the span, and
//! [`count`] attributes a counter increment to the innermost open span of
//! the calling thread, so deep library code can report counters without
//! threading a handle through every signature. Each thread gets a stable
//! trace `tid`, so rayon-parallel phases render as parallel tracks in
//! Perfetto.
//!
//! The crate is dependency-free (it writes its own Chrome trace-event JSON)
//! so every layer of the workspace can be instrumented without coupling.

pub mod chrome;
pub mod flight;
pub mod log;

/// Span-name constants for families that cross crate boundaries, so the
/// emitting crate and the tooling that aggregates by name (`tables profile`,
/// the flight recorder, dashboards) cannot drift apart. Single-crate span
/// names (`model.build`, `tilesearch.*`, `cachesim.replay`, …) stay string
/// literals at their emission site.
pub mod names {
    /// Reactive-model family: building the dependency DAG from a built
    /// model (`sdlo-core`).
    pub const REVISE_DAG_BUILD: &str = "revise.dag_build";
    /// Applying one structured delta to a live DAG (`sdlo-core`).
    pub const REVISE_APPLY_DELTA: &str = "revise.apply_delta";
    /// Base-miss fallback: establishing a revise session from a cold or
    /// cached model (`sdlo-service`).
    pub const REVISE_FULL_BUILD: &str = "revise.full_build";
    /// One chunk of a DAG-driven tile sweep (`sdlo-tilesearch`).
    pub const REVISE_SWEEP: &str = "revise.sweep";
}

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A typed attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    Int(i64),
    UInt(u64),
    Float(f64),
    Bool(bool),
    Str(String),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::UInt(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::UInt(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// One raw trace record. Collectors receive records in emission order;
/// records of one span id always appear as Begin, then Attr/Count, then End.
#[derive(Debug, Clone)]
pub enum Record {
    Begin {
        id: u64,
        parent: Option<u64>,
        name: Cow<'static, str>,
        ts_micros: u64,
        tid: u64,
    },
    End {
        id: u64,
        name: Cow<'static, str>,
        ts_micros: u64,
        tid: u64,
    },
    Attr {
        id: u64,
        key: Cow<'static, str>,
        value: AttrValue,
    },
    Count {
        id: u64,
        key: Cow<'static, str>,
        delta: u64,
    },
}

/// Sink for trace records. Implementations must tolerate records from many
/// threads concurrently.
pub trait Collect: Send + Sync {
    fn record(&self, record: Record);
}

/// In-memory collector: accumulates records for later export as Chrome
/// trace-event JSON ([`MemoryCollector::chrome_trace`]) or a per-phase
/// summary ([`MemoryCollector::summary`]).
#[derive(Debug, Default)]
pub struct MemoryCollector {
    records: Mutex<Vec<Record>>,
}

impl MemoryCollector {
    pub fn new() -> Arc<Self> {
        Arc::new(MemoryCollector::default())
    }

    /// Snapshot of every record collected so far.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().unwrap().clone()
    }

    pub fn is_empty(&self) -> bool {
        self.records.lock().unwrap().is_empty()
    }

    /// Render everything as a Chrome trace-event JSON document.
    pub fn chrome_trace(&self) -> String {
        chrome::render(&self.records())
    }

    /// Aggregate spans by name: call counts, total wall time, counters.
    pub fn summary(&self) -> Vec<PhaseSummary> {
        summarize(&self.records())
    }
}

impl Collect for MemoryCollector {
    fn record(&self, record: Record) {
        self.records.lock().unwrap().push(record);
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: Mutex<Option<Arc<dyn Collect>>> = Mutex::new(None);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn epoch() -> (Instant, u64) {
    static EPOCH: OnceLock<(Instant, u64)> = OnceLock::new();
    *EPOCH.get_or_init(|| {
        let unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        (Instant::now(), unix)
    })
}

/// Microseconds since the process trace epoch (monotonic).
pub fn now_micros() -> u64 {
    epoch().0.elapsed().as_micros() as u64
}

/// The wall-clock (unix) microsecond timestamp the process trace epoch was
/// anchored at. Adding this to any span `ts_micros` yields an approximate
/// unix timestamp, which is how `tables trace-merge` aligns traces exported
/// by different processes onto one timeline.
pub fn epoch_unix_micros() -> u64 {
    epoch().1
}

/// Install a collector and enable tracing process-wide.
pub fn install(collector: Arc<dyn Collect>) {
    // Touch the epoch before enabling so the first span's timestamp is
    // strictly positive and ordered after installation.
    let _ = epoch();
    *COLLECTOR.lock().unwrap() = Some(collector);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disable tracing and return the previously installed collector.
pub fn uninstall() -> Option<Arc<dyn Collect>> {
    ENABLED.store(false, Ordering::SeqCst);
    COLLECTOR.lock().unwrap().take()
}

/// Whether a collector is installed. One relaxed load — this is the entire
/// cost of an instrumented call site when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

struct SpanInner {
    id: u64,
    name: Cow<'static, str>,
    tid: u64,
    collector: Arc<dyn Collect>,
}

/// RAII guard for one span: created by [`span`], closed on drop. All
/// methods are no-ops when tracing is disabled.
pub struct Span {
    inner: Option<SpanInner>,
}

/// Open a span. Returns an inert guard (no allocation, no lock) when
/// tracing is off.
pub fn span(name: impl Into<Cow<'static, str>>) -> Span {
    span_with_parent(name, None)
}

/// Open a span whose parent may live in *another process*: when the calling
/// thread has an open span that local parent wins (normal nesting), otherwise
/// `remote_parent` — a span id received over the wire in a request's `trace`
/// context — is recorded as the parent. This is how a backend's
/// `service.request` span attaches under the router's root span.
pub fn span_with_parent(name: impl Into<Cow<'static, str>>, remote_parent: Option<u64>) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    let Some(collector) = COLLECTOR.lock().unwrap().clone() else {
        return Span { inner: None };
    };
    let name = name.into();
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let tid = TID.with(|t| *t);
    let parent = STACK.with(|s| s.borrow().last().copied()).or(remote_parent);
    collector.record(Record::Begin {
        id,
        parent,
        name: name.clone(),
        ts_micros: now_micros(),
        tid,
    });
    STACK.with(|s| s.borrow_mut().push(id));
    Span {
        inner: Some(SpanInner {
            id,
            name,
            tid,
            collector,
        }),
    }
}

/// Record an already-finished span with explicit timestamps, parented under
/// `parent`. Used by the transport to attribute phases (queue/exec/write)
/// whose boundaries were measured outside any live span guard. Returns the
/// fabricated span's id, or `None` when tracing is off.
pub fn record_span_at(
    name: impl Into<Cow<'static, str>>,
    parent: Option<u64>,
    begin_micros: u64,
    end_micros: u64,
) -> Option<u64> {
    if !enabled() {
        return None;
    }
    let collector = COLLECTOR.lock().unwrap().clone()?;
    let name = name.into();
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let tid = TID.with(|t| *t);
    collector.record(Record::Begin {
        id,
        parent,
        name: name.clone(),
        ts_micros: begin_micros,
        tid,
    });
    collector.record(Record::End {
        id,
        name,
        ts_micros: end_micros.max(begin_micros),
        tid,
    });
    Some(id)
}

impl Span {
    /// Whether this span actually records (false under the no-op default).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// The span's id, usable as a `parent_span` in an outgoing trace
    /// context. `None` when tracing is off.
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.id)
    }

    /// Attach a typed attribute.
    pub fn attr(&self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(i) = &self.inner {
            i.collector.record(Record::Attr {
                id: i.id,
                key: Cow::Borrowed(key),
                value: value.into(),
            });
        }
    }

    /// Add `delta` to a counter scoped to this span.
    pub fn add(&self, key: &'static str, delta: u64) {
        if let Some(i) = &self.inner {
            i.collector.record(Record::Count {
                id: i.id,
                key: Cow::Borrowed(key),
                delta,
            });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(i) = self.inner.take() {
            STACK.with(|s| {
                let mut s = s.borrow_mut();
                if let Some(pos) = s.iter().rposition(|x| *x == i.id) {
                    s.remove(pos);
                }
            });
            i.collector.record(Record::End {
                id: i.id,
                name: i.name,
                ts_micros: now_micros(),
                tid: i.tid,
            });
        }
    }
}

/// Add `delta` to a counter on the innermost open span of the calling
/// thread. No-op when tracing is off or no span is open — deep library code
/// can call this unconditionally.
pub fn count(key: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    let Some(id) = STACK.with(|s| s.borrow().last().copied()) else {
        return;
    };
    if let Some(c) = COLLECTOR.lock().unwrap().clone() {
        c.record(Record::Count {
            id,
            key: Cow::Borrowed(key),
            delta,
        });
    }
}

/// Aggregate of all spans sharing one name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSummary {
    pub name: String,
    /// Spans opened under this name.
    pub calls: u64,
    /// Summed wall time of the closed spans, microseconds.
    pub total_micros: u64,
    /// Span-scoped counters, summed.
    pub counters: BTreeMap<String, u64>,
}

/// Aggregate records by span name, in first-seen order. Spans missing an
/// End record contribute their call count but no duration.
pub fn summarize(records: &[Record]) -> Vec<PhaseSummary> {
    let mut begin_ts: BTreeMap<u64, (usize, u64)> = BTreeMap::new(); // id -> (phase idx, ts)
    let mut order: Vec<PhaseSummary> = Vec::new();
    let mut by_name: BTreeMap<String, usize> = BTreeMap::new();
    for r in records {
        match r {
            Record::Begin {
                id,
                name,
                ts_micros,
                ..
            } => {
                let idx = *by_name.entry(name.to_string()).or_insert_with(|| {
                    order.push(PhaseSummary {
                        name: name.to_string(),
                        calls: 0,
                        total_micros: 0,
                        counters: BTreeMap::new(),
                    });
                    order.len() - 1
                });
                order[idx].calls += 1;
                begin_ts.insert(*id, (idx, *ts_micros));
            }
            Record::End { id, ts_micros, .. } => {
                if let Some((idx, begun)) = begin_ts.remove(id) {
                    order[idx].total_micros += ts_micros.saturating_sub(begun);
                }
            }
            Record::Count { id, key, delta } => {
                if let Some((idx, _)) = begin_ts.get(id) {
                    *order[*idx].counters.entry(key.to_string()).or_insert(0) += delta;
                }
            }
            Record::Attr { .. } => {}
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The collector is process-global; serialize tests that install one.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock();
        assert!(!enabled());
        let c = MemoryCollector::new();
        // Not installed: spans and counters are inert.
        {
            let s = span("model.build");
            assert!(!s.is_recording());
            s.attr("program", "x");
            s.add("components", 3);
            count("orphan", 1);
        }
        assert!(c.is_empty());
    }

    #[test]
    fn spans_nest_and_counters_attach_to_innermost() {
        let _g = lock();
        let c = MemoryCollector::new();
        install(c.clone());
        {
            let outer = span("outer");
            outer.add("outer_counter", 1);
            {
                let _inner = span("inner");
                count("streamed", 10);
                count("streamed", 5);
            }
            count("outer_late", 2);
        }
        uninstall();
        let phases = c.summary();
        assert_eq!(phases.len(), 2);
        let outer = &phases[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.calls, 1);
        assert_eq!(outer.counters["outer_counter"], 1);
        assert_eq!(outer.counters["outer_late"], 2);
        let inner = &phases[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.counters["streamed"], 15);
        // Parent link recorded.
        let records = c.records();
        let inner_parent = records.iter().find_map(|r| match r {
            Record::Begin { name, parent, .. } if name == "inner" => Some(*parent),
            _ => None,
        });
        assert!(matches!(inner_parent, Some(Some(_))));
    }

    #[test]
    fn summary_sums_repeated_calls() {
        let _g = lock();
        let c = MemoryCollector::new();
        install(c.clone());
        for i in 0..3 {
            let s = span("phase");
            s.add("n", i);
        }
        uninstall();
        let phases = c.summary();
        assert_eq!(phases[0].calls, 3);
        assert_eq!(phases[0].counters["n"], 3); // 0 + 1 + 2
    }

    #[test]
    fn remote_parent_applies_only_without_local_stack() {
        let _g = lock();
        let c = MemoryCollector::new();
        install(c.clone());
        let root_id;
        {
            let root = span_with_parent("router.request", Some(777));
            root_id = root.id().unwrap();
            let _child = span_with_parent("service.request", Some(12345));
        }
        uninstall();
        let records = c.records();
        let parent_of = |n: &str| {
            records.iter().find_map(|r| match r {
                Record::Begin { name, parent, .. } if name == n => Some(*parent),
                _ => None,
            })
        };
        // No local span open: the remote parent wins.
        assert_eq!(parent_of("router.request"), Some(Some(777)));
        // Local stack present: local nesting wins over the remote parent.
        assert_eq!(parent_of("service.request"), Some(Some(root_id)));
    }

    #[test]
    fn record_span_at_emits_balanced_pair_with_explicit_times() {
        let _g = lock();
        let c = MemoryCollector::new();
        install(c.clone());
        let id = record_span_at("request.queue", Some(42), 100, 250).unwrap();
        uninstall();
        let records = c.records();
        assert_eq!(records.len(), 2);
        match &records[0] {
            Record::Begin {
                id: rid,
                parent,
                name,
                ts_micros,
                ..
            } => {
                assert_eq!(*rid, id);
                assert_eq!(*parent, Some(42));
                assert_eq!(name, "request.queue");
                assert_eq!(*ts_micros, 100);
            }
            r => panic!("expected Begin, got {r:?}"),
        }
        match &records[1] {
            Record::End { ts_micros, .. } => assert_eq!(*ts_micros, 250),
            r => panic!("expected End, got {r:?}"),
        }
        // Disabled: returns None, records nothing.
        assert_eq!(record_span_at("x", None, 0, 1), None);
    }

    #[test]
    fn epoch_unix_micros_is_anchored_once() {
        let a = epoch_unix_micros();
        let b = epoch_unix_micros();
        assert_eq!(a, b);
        // Sanity: after 2020-01-01 in microseconds.
        assert!(a > 1_577_836_800_000_000);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let _g = lock();
        let c = MemoryCollector::new();
        install(c.clone());
        {
            let _a = span("a");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        {
            let _b = span("b");
        }
        uninstall();
        let ts: Vec<u64> = c
            .records()
            .iter()
            .filter_map(|r| match r {
                Record::Begin { ts_micros, .. } | Record::End { ts_micros, .. } => Some(*ts_micros),
                _ => None,
            })
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
        let phases = c.summary();
        assert!(phases[0].total_micros >= 1_000);
    }
}
