//! End-to-end fleet tests: real backends, a real router, real sockets.
//!
//! The headline scenario is the kill-one-of-two failover: a backend is shut
//! down abruptly (zero drain, in-flight responses dropped) in the middle of
//! a request stream, and every single reply must still come back `ok` with
//! the original request's correlation ids — the router absorbs the loss by
//! failing over along the ring.

use sdlo_router::{serve as serve_router, RouterConfig, RouterHandle};
use sdlo_service::{serve as serve_backend, Client, ServerConfig, ServerHandle};
use sdlo_wire::Value;

/// A backend that drops in-flight work when shut down — as close to
/// `kill -9` as an in-process test can get.
fn abrupt_backend() -> ServerHandle {
    serve_backend(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        drain_timeout_ms: 0,
        ..ServerConfig::default()
    })
    .expect("bind backend")
}

fn router_over(backends: &[&ServerHandle], health_interval_ms: u64) -> RouterHandle {
    serve_router(RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        backends: backends.iter().map(|b| b.addr().to_string()).collect(),
        health_interval_ms,
        fail_threshold: 1,
        retry_base_ms: 1,
        ..RouterConfig::default()
    })
    .expect("bind router")
}

fn req(client: &mut Client, line: &str) -> Value {
    sdlo_wire::parse(&client.request_line(line).expect("request")).expect("valid response json")
}

/// Mixed shapes so the ring spreads the stream over both backends.
fn predict_line(i: usize, rid: &str) -> String {
    let (program, bindings) = if i.is_multiple_of(2) {
        ("matmul", r#"{"Ni":64,"Nj":64,"Nk":64}"#.to_string())
    } else {
        (
            "tiled_matmul",
            r#"{"Ni":128,"Nj":128,"Nk":128,"Ti":16,"Tj":16,"Tk":16}"#.to_string(),
        )
    };
    format!(
        r#"{{"op":"predict","id":{i},"request_id":"{rid}","program":"{program}","bindings":{bindings},"cache":4096}}"#
    )
}

#[test]
fn stream_survives_killing_one_of_two_backends() {
    let b0 = abrupt_backend();
    let b1 = abrupt_backend();
    let router = router_over(&[&b0, &b1], 25);
    let mut c = Client::connect(router.addr()).unwrap();

    // Half the stream with both backends alive, then one dies abruptly and
    // the rest of the stream keeps flowing. Every reply must be ok and must
    // carry its own request's ids.
    let mut b0 = Some(b0);
    for i in 0..60 {
        if i == 30 {
            b0.take().unwrap().shutdown();
        }
        let rid = format!("fo-{i}");
        let resp = req(&mut c, &predict_line(i, &rid));
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(true),
            "request {i} lost across failover: {resp:?}"
        );
        assert_eq!(resp.get("id").and_then(Value::as_i64), Some(i as i64));
        assert_eq!(
            resp.get("request_id").and_then(Value::as_str),
            Some(rid.as_str()),
            "correlation broken on request {i}: {resp:?}"
        );
        assert!(resp.get("misses").and_then(Value::as_u64).is_some());
    }

    // The health loop (or the failed forward itself) marked the dead
    // backend down; the survivor carries the fleet.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while router.backend_up(0) && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(!router.backend_up(0), "dead backend still marked up");
    assert!(router.backend_up(1));

    // The router's own stats agree: one backend down, transport errors
    // recorded there, zero requests exhausted.
    let resp = req(&mut c, r#"{"op":"stats","request_id":"post"}"#);
    let stats = resp.get("stats").unwrap();
    let backends = stats
        .path(&["router", "backends"])
        .and_then(Value::as_array)
        .unwrap();
    assert_eq!(backends.len(), 2);
    let up: Vec<bool> = backends
        .iter()
        .map(|b| b.get("up").and_then(Value::as_bool).unwrap())
        .collect();
    assert_eq!(up, vec![false, true]);
    let forwarded: u64 = backends
        .iter()
        .map(|b| b.get("requests").and_then(Value::as_u64).unwrap())
        .sum();
    assert!(forwarded >= 60, "only {forwarded} forwards recorded");
    assert_eq!(
        stats.path(&["router", "exhausted"]).and_then(Value::as_u64),
        Some(0),
        "no request may be abandoned: {stats:?}"
    );

    b1.shutdown();
    router.shutdown();
}

#[test]
fn dead_backend_is_readmitted_and_its_keys_return() {
    use sdlo_router::ring::Ring;
    use sdlo_service::api::routing_key;
    use sdlo_service::RoutingKey;

    let backends = [abrupt_backend(), abrupt_backend()];
    let addrs = [backends[0].addr(), backends[1].addr()];
    let router = router_over(&[&backends[0], &backends[1]], 25);
    let mut c = Client::connect(router.addr()).unwrap();

    // The ring is a pure function of the backend address strings, so the
    // test can compute exactly which backend owns the matmul shape — and
    // kill precisely that one, making the affinity assertion
    // deterministic regardless of which ports the OS handed out.
    let line = predict_line(0, "probe"); // matmul
    let RoutingKey::Shape(key) = routing_key(&sdlo_wire::parse(&line).unwrap()) else {
        panic!("predict must route by shape");
    };
    let ring = Ring::build(
        &[addrs[0].to_string(), addrs[1].to_string()],
        RouterConfig::default().vnodes,
    );
    let owner = ring.order(key)[0];

    let mut handles = backends.map(Some);
    for i in 0..10 {
        let resp = req(&mut c, &predict_line(i, &format!("pre-{i}")));
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    }

    // Kill the owner and wait for eviction.
    handles[owner].take().unwrap().shutdown();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while router.backend_up(owner) && std::time::Instant::now() < deadline {
        // Keep its key's traffic flowing so eviction can also come from
        // failed forwards, not only the health probe.
        let _ = req(&mut c, &predict_line(0, "evict-probe"));
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(!router.backend_up(owner), "dead owner still marked up");

    // Resurrect a backend on the *same address* (same ring identity). The
    // health probe must re-admit it without any router restart.
    handles[owner] = Some(
        serve_backend(ServerConfig {
            addr: addrs[owner].to_string(),
            drain_timeout_ms: 0,
            ..ServerConfig::default()
        })
        .expect("rebind dead backend address"),
    );
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while !router.backend_up(owner) && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        router.backend_up(owner),
        "resurrected backend not re-admitted"
    );

    // One flush request first: this client connection's pooled backend
    // connection may still point at the *dead* process, and the first
    // forward after resurrection detects that (transport error, invisible
    // failover, fresh reconnect). That is correct router behavior, but it
    // would land one request on the wrong backend mid-measurement.
    let resp = req(&mut c, &predict_line(0, "flush"));
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));

    // Its keys return to it: the matmul stream lands on the re-admitted
    // backend again, because the ring never changed.
    let requests_on = |c: &mut Client, rid: &str| -> Vec<u64> {
        let resp = req(c, &format!(r#"{{"op":"stats","request_id":"{rid}"}}"#));
        resp.path(&["stats", "router", "backends"])
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|b| b.get("requests").and_then(Value::as_u64).unwrap())
            .collect()
    };
    let before = requests_on(&mut c, "s1");
    for i in 0..20 {
        let resp = req(&mut c, &predict_line(0, &format!("post-{i}")));
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    }
    let after = requests_on(&mut c, "s2");
    assert!(
        after[owner] >= before[owner] + 20,
        "re-admitted backend did not get its keys back (owner {owner}): {before:?} -> {after:?}"
    );

    for h in handles.into_iter().flatten() {
        h.shutdown();
    }
    router.shutdown();
}

#[test]
fn router_metrics_aggregate_both_vantage_points() {
    let b0 = abrupt_backend();
    let b1 = abrupt_backend();
    let router = router_over(&[&b0, &b1], 0); // no health loop: pure forwards
    let mut c = Client::connect(router.addr()).unwrap();

    for i in 0..12 {
        let resp = req(&mut c, &predict_line(i, &format!("m-{i}")));
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    }

    // Raw Prometheus scrape: front-side series in the backend-identical
    // format plus the per-backend rollups, consistent with each other.
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(router.addr()).unwrap();
    stream
        .write_all(b"{\"op\":\"metrics\",\"raw\":true}\n")
        .unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();

    assert!(text.contains("sdlo_requests_total{op=\"predict\"} 12"));
    assert!(text.contains("sdlo_router_ring_points"));
    assert!(text.contains("sdlo_router_exhausted_requests_total 0"));
    let per_backend: u64 = text
        .lines()
        .filter_map(|l| l.strip_prefix("sdlo_router_backend_requests_total{backend=\""))
        .filter_map(|rest| rest.split_once("\"} ")?.1.trim().parse::<u64>().ok())
        .sum();
    assert_eq!(per_backend, 12, "rollups disagree with forwards:\n{text}");
    for b in [&b0, &b1] {
        assert!(
            text.contains(&format!(
                "sdlo_router_backend_up{{backend=\"{}\"}} 1",
                b.addr()
            )),
            "backend missing from rollups:\n{text}"
        );
    }

    b0.shutdown();
    b1.shutdown();
    router.shutdown();
}
