//! Cross-process trace propagation, end to end over real sockets: one
//! trace_id spans the router and the backend, the backend's
//! `service.request` span parents under the router's root span, and the
//! per-phase spans hang under the backend root.
//!
//! The trace collector is process-global, so the router and backend here
//! share one [`MemoryCollector`] — exactly why these assertions can see
//! both halves of the tree at once. Tests that install a collector
//! serialize on a gate mutex.

use sdlo_router::{serve as serve_router, RouterConfig};
use sdlo_service::{serve as serve_backend, Client, ServerConfig};
use sdlo_trace::{AttrValue, MemoryCollector, Record};
use sdlo_wire::Value;
use std::sync::Mutex;

static GATE: Mutex<()> = Mutex::new(());

/// The first span named `span_name` whose `op` attr is `op_value` — the
/// filter keeps the router's background health probes (their own
/// `service.request`/`router.request` spans) out of the assertions.
fn span_begin(records: &[Record], span_name: &str, op_value: &str) -> Option<(u64, Option<u64>)> {
    records.iter().find_map(|r| match r {
        Record::Begin {
            id, parent, name, ..
        } if name == span_name => {
            (attr_str(records, *id, "op").as_deref() == Some(op_value)).then_some((*id, *parent))
        }
        _ => None,
    })
}

/// The first span named `span_name` with the given parent (phase spans
/// carry no `op` attr; their identity is their place in the tree).
fn child_span(records: &[Record], span_name: &str, parent_id: u64) -> Option<u64> {
    records.iter().find_map(|r| match r {
        Record::Begin {
            id, parent, name, ..
        } if name == span_name && *parent == Some(parent_id) => Some(*id),
        _ => None,
    })
}

fn attr_str(records: &[Record], span: u64, attr_key: &str) -> Option<String> {
    records.iter().find_map(|r| match r {
        Record::Attr { id, key, value } if *id == span && key == attr_key => match value {
            AttrValue::Str(s) => Some(s.clone()),
            other => Some(format!("{other:?}")),
        },
        _ => None,
    })
}

#[test]
fn one_trace_id_spans_router_and_backend() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let collector = MemoryCollector::new();
    sdlo_trace::install(collector.clone());

    let backend = serve_backend(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    })
    .expect("bind backend");
    let router = serve_router(RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        backends: vec![backend.addr().to_string()],
        ..RouterConfig::default()
    })
    .expect("bind router");

    // The client supplies its own fleet-wide trace_id; the router must
    // adopt it rather than minting a fresh one.
    let mut c = Client::connect(router.addr()).unwrap();
    let reply = c
        .request_line(
            r#"{"op":"predict","request_id":"tp-1","trace":{"trace_id":"fleet0001fleet00"},"program":"matmul","bindings":{"Ni":32,"Nj":32,"Nk":32},"cache":1024}"#,
        )
        .expect("request");
    let reply = sdlo_wire::parse(&reply).expect("valid reply");
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true));

    router.shutdown();
    backend.shutdown();
    sdlo_trace::uninstall();
    let records = collector.records();

    let (router_span, _) =
        span_begin(&records, "router.request", "predict").expect("router root span recorded");
    let (backend_span, backend_parent) =
        span_begin(&records, "service.request", "predict").expect("backend span recorded");
    // Correct parenting: the backend's request span hangs under the
    // router's root span, across the process boundary (here: across two
    // server stacks sharing one collector).
    assert_eq!(
        backend_parent,
        Some(router_span),
        "service.request must parent under router.request"
    );
    // One trace_id on both halves — the client's, not a minted one.
    assert_eq!(
        attr_str(&records, router_span, "trace_id").as_deref(),
        Some("fleet0001fleet00")
    );
    assert_eq!(
        attr_str(&records, backend_span, "trace_id").as_deref(),
        Some("fleet0001fleet00")
    );
    // The reply-side phase spans parent under the backend root.
    for phase in ["request.queue", "request.exec", "request.write"] {
        assert!(
            child_span(&records, phase, backend_span).is_some(),
            "{phase} span missing under service.request"
        );
    }
}

#[test]
fn router_mints_trace_id_when_client_sends_none() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let collector = MemoryCollector::new();
    sdlo_trace::install(collector.clone());

    let backend = serve_backend(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    })
    .expect("bind backend");
    let router = serve_router(RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        backends: vec![backend.addr().to_string()],
        ..RouterConfig::default()
    })
    .expect("bind router");

    let mut c = Client::connect(router.addr()).unwrap();
    let reply = c
        .request_line(
            r#"{"op":"predict","request_id":"tp-2","program":"matmul","bindings":{"Ni":32,"Nj":32,"Nk":32},"cache":1024}"#,
        )
        .expect("request");
    let reply = sdlo_wire::parse(&reply).expect("valid reply");
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true));

    router.shutdown();
    backend.shutdown();
    sdlo_trace::uninstall();
    let records = collector.records();

    let (router_span, _) =
        span_begin(&records, "router.request", "predict").expect("router root span");
    let (backend_span, backend_parent) =
        span_begin(&records, "service.request", "predict").expect("backend span");
    assert_eq!(backend_parent, Some(router_span));
    // A recording router mints a 16-hex trace id and both sides carry it.
    let minted = attr_str(&records, router_span, "trace_id").expect("minted trace_id");
    assert_eq!(minted.len(), 16);
    assert!(minted.chars().all(|c| c.is_ascii_hexdigit()));
    assert_eq!(attr_str(&records, backend_span, "trace_id"), Some(minted));
}
