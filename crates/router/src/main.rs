//! `sdlo-router` — consistent-hash fleet front for `sdlo-service` backends.
//!
//! ```text
//! sdlo-router --backend HOST:PORT [--backend HOST:PORT ...]
//!             [--addr HOST:PORT] [--vnodes N] [--max-retries N]
//!             [--retry-base-ms N] [--retry-budget-ms N]
//!             [--health-interval-ms N] [--fail-threshold N]
//!             [--backend-timeout-ms N] [--slow-micros N]
//! ```
//!
//! Speaks the same newline-delimited JSON protocol as a backend; `stats`,
//! `metrics`, and `debug` are answered by the router with aggregated
//! per-backend rollups, everything else is sharded by canonical shape hash.
//! Runs until it receives `{"op":"shutdown"}` (the backends keep running).
//!
//! Setting `SDLO_TRACE=1` installs the router's flight recorder as the
//! process trace collector and stamps a `trace` context onto every
//! forwarded request, so backend spans parent under the router's root span.

use sdlo_router::{serve, RouterConfig};

fn usage() -> ! {
    eprintln!(
        "usage: sdlo-router --backend HOST:PORT [--backend HOST:PORT ...]\n\
         \x20                  [--addr HOST:PORT] [--vnodes N] [--max-retries N]\n\
         \x20                  [--retry-base-ms N] [--retry-budget-ms N]\n\
         \x20                  [--health-interval-ms N] [--fail-threshold N]\n\
         \x20                  [--backend-timeout-ms N] [--slow-micros N]\n\
         \n\
         Consistent-hash front: shards requests by canonical shape hash\n\
         across the given sdlo-service backends, fails over on transport\n\
         errors, retries `overloaded` replies with jittered backoff, and\n\
         serves aggregated stats/metrics plus its own debug/trace_dump.\n\
         SDLO_TRACE=1 enables span recording and trace-context propagation\n\
         to backends; SDLO_LOG=error|warn|info|debug sets the structured-\n\
         log level (default info).\n\
         Defaults: --addr 127.0.0.1:7465 --vnodes 64 --max-retries 3\n\
         \x20         --retry-base-ms 5 --retry-budget-ms 2000\n\
         \x20         --health-interval-ms 200 --fail-threshold 2\n\
         \x20         --backend-timeout-ms 10000 --slow-micros 100000"
    );
    std::process::exit(2);
}

fn parse_args() -> RouterConfig {
    let mut config = RouterConfig {
        addr: "127.0.0.1:7465".to_string(),
        ..RouterConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value_of = |flag: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {flag} requires a value\n");
                usage();
            }
        };
        match flag.as_str() {
            "--addr" => config.addr = value_of("--addr"),
            "--backend" => config.backends.push(value_of("--backend")),
            "--vnodes" => match value_of("--vnodes").parse() {
                Ok(n) if n > 0 => config.vnodes = n,
                _ => usage(),
            },
            "--max-retries" => match value_of("--max-retries").parse() {
                Ok(n) => config.max_retries = n,
                _ => usage(),
            },
            "--retry-base-ms" => match value_of("--retry-base-ms").parse() {
                Ok(n) if n > 0 => config.retry_base_ms = n,
                _ => usage(),
            },
            "--retry-budget-ms" => match value_of("--retry-budget-ms").parse() {
                Ok(n) if n > 0 => config.retry_budget_ms = n,
                _ => usage(),
            },
            "--health-interval-ms" => match value_of("--health-interval-ms").parse() {
                Ok(n) => config.health_interval_ms = n,
                _ => usage(),
            },
            "--fail-threshold" => match value_of("--fail-threshold").parse() {
                Ok(n) if n > 0 => config.fail_threshold = n,
                _ => usage(),
            },
            "--backend-timeout-ms" => match value_of("--backend-timeout-ms").parse() {
                Ok(n) if n > 0 => config.backend_timeout_ms = n,
                _ => usage(),
            },
            "--slow-micros" => match value_of("--slow-micros").parse() {
                Ok(n) => config.slow_threshold_micros = n,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag `{other}`\n");
                usage();
            }
        }
    }
    if config.backends.is_empty() {
        eprintln!("error: at least one --backend is required\n");
        usage();
    }
    config
}

fn main() {
    let config = parse_args();
    let backends = config.backends.join(", ");
    match serve(config) {
        Ok(handle) => {
            if std::env::var("SDLO_TRACE")
                .map(|v| v == "1")
                .unwrap_or(false)
            {
                sdlo_trace::install(handle.flight());
            }
            println!(
                "sdlo-router listening on {} (backends: {backends})",
                handle.addr()
            );
            handle.run_until_shutdown();
            println!("sdlo-router stopped");
        }
        Err(e) => {
            eprintln!("error: failed to start: {e}");
            std::process::exit(1);
        }
    }
}
