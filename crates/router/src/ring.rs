//! Consistent-hash ring over backend identities.
//!
//! Each backend contributes `vnodes` points on a 64-bit ring, placed by a
//! stable FNV-1a hash of `"{backend_id}#{vnode}"`. A request key (the
//! canonical shape hash) routes to the owner of the first point at or after
//! the key, wrapping; failover order is the subsequent *distinct* backends
//! in ring order. Because points depend only on backend identity — not on
//! list position or fleet size — adding or removing one backend remaps only
//! the keys that backend owned.

/// Stable FNV-1a 64 (the same function `sdlo_ir::canon` uses for shape
/// hashes), so ring placement is identical across processes and restarts.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An immutable ring over `n` backends. Eviction does not rebuild the ring:
/// the router walks [`Ring::order`] and skips unhealthy backends, so a
/// backend's keys come straight back to it on re-admission.
#[derive(Debug)]
pub struct Ring {
    /// `(point, backend index)`, sorted by point.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl Ring {
    /// Build the ring from backend identities (addresses). `vnodes` points
    /// per backend; more points → smoother key distribution.
    pub fn build<S: AsRef<str>>(backend_ids: &[S], vnodes: usize) -> Ring {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(backend_ids.len() * vnodes);
        for (idx, id) in backend_ids.iter().enumerate() {
            for v in 0..vnodes {
                points.push((fnv1a64(format!("{}#{v}", id.as_ref()).as_bytes()), idx));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            backends: backend_ids.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.backends
    }

    pub fn is_empty(&self) -> bool {
        self.backends == 0
    }

    pub fn points(&self) -> usize {
        self.points.len()
    }

    /// The backend owning `key`.
    pub fn primary(&self, key: u64) -> Option<usize> {
        self.order(key).first().copied()
    }

    /// Every backend exactly once, in ring order starting at `key`'s owner:
    /// `order(key)[0]` is the primary, the rest is the failover sequence.
    pub fn order(&self, key: u64) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.backends);
        if self.points.is_empty() {
            return out;
        }
        let start = self.points.partition_point(|(p, _)| *p < key);
        let n = self.points.len();
        let mut seen = vec![false; self.backends];
        for i in 0..n {
            let (_, idx) = self.points[(start + i) % n];
            if !seen[idx] {
                seen[idx] = true;
                out.push(idx);
                if out.len() == self.backends {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect()
    }

    #[test]
    fn order_is_a_permutation_with_stable_primary() {
        let ring = Ring::build(&ids(4), 64);
        for key in (0..1000u64).map(|k| k.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            let order = ring.order(key);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "order must cover every backend");
            assert_eq!(ring.order(key), order, "routing must be deterministic");
            assert_eq!(ring.primary(key), Some(order[0]));
        }
    }

    #[test]
    fn keys_spread_over_backends() {
        let ring = Ring::build(&ids(3), 64);
        let mut counts = [0usize; 3];
        let keys = 9000u64;
        for key in (0..keys).map(|k| k.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            counts[ring.primary(key).unwrap()] += 1;
        }
        for (idx, c) in counts.iter().enumerate() {
            // Perfect balance would be 3000 each; vnodes=64 keeps every
            // backend within a loose 2x band of fair share.
            assert!(
                *c > 1500 && *c < 4500,
                "backend {idx} owns {c} of {keys} keys"
            );
        }
    }

    #[test]
    fn removing_a_backend_only_remaps_its_own_keys() {
        let all = ids(4);
        let ring4 = Ring::build(&all, 64);
        let ring3 = Ring::build(&all[..3], 64);
        for key in (0..2000u64).map(|k| k.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            let p4 = ring4.primary(key).unwrap();
            if p4 != 3 {
                // A key not owned by the removed backend keeps its owner.
                assert_eq!(ring3.primary(key), Some(p4), "key {key:#x} moved");
            } else {
                // The removed backend's keys fall to its ring successor.
                assert_eq!(ring3.primary(key), Some(ring4.order(key)[1]));
            }
        }
    }

    #[test]
    fn skipping_the_primary_matches_ring_successor() {
        // Eviction-by-skipping must agree with what a rebuilt ring would
        // do: the failover target is the next distinct backend in ring
        // order, which `order()[1]` names.
        let ring = Ring::build(&ids(3), 64);
        for key in (0..500u64).map(|k| k.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            let order = ring.order(key);
            assert_ne!(order[0], order[1]);
        }
    }

    #[test]
    fn degenerate_rings() {
        let empty: Vec<String> = vec![];
        assert!(Ring::build(&empty, 64).order(42).is_empty());
        let one = Ring::build(&ids(1), 1);
        assert_eq!(one.order(42), vec![0]);
        assert_eq!(one.points(), 1);
    }
}
