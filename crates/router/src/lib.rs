//! # sdlo-router
//!
//! A protocol-v1-pure fleet front for `sdlo-service` backends. The router
//! never builds a model and never imports the engine: it speaks only the
//! wire protocol (`sdlo_service::api` + `sdlo-wire`), consistent-hashing
//! each request's **canonical shape hash** ([`sdlo_service::api::routing_key`])
//! across N backend worker processes. Structurally identical programs land
//! on the same backend, so every backend's model cache (and its disk tier)
//! holds a disjoint slice of the shape space — fleet-wide memoization
//! without a shared database.
//!
//! Behaviors:
//!
//! * **Consistent hashing** ([`ring::Ring`]): virtual-node ring keyed by
//!   backend address; requests without a program round-robin.
//! * **Failover**: a transport error (backend died, connection reset) moves
//!   the request to the next distinct backend in ring order; the client
//!   sees one correlated reply, never a dropped request.
//! * **Bounded retry-on-`overloaded`**: an `overloaded` reply is retried
//!   against the ring successor with capped, jittered backoff; when the
//!   budget is exhausted the last overloaded reply passes through verbatim
//!   (still correlated — backends echo `id`/`request_id`).
//! * **Eviction / re-admission**: consecutive failures mark a backend down
//!   (skipped in ring walks); a background health probe (or a later
//!   successful request) re-admits it, and its keys return to it because
//!   the ring itself never changes.
//! * **Aggregated observability**: the router serves `stats` and `metrics`
//!   itself — front-side per-op counters/latency histograms in the
//!   existing format plus per-backend `sdlo_router_backend_*` rollups.
//!   `{"op":"metrics","raw":true}` answers with a plain-text Prometheus
//!   scrape then EOF, exactly like a backend.
//!
//! Everything else — `analyze`, `predict`, `advise`, `batch`, `lint`, even
//! malformed lines — is forwarded byte-for-byte and answered with the
//! backend's reply byte-for-byte, so the router adds no protocol surface.

pub mod ring;

use ring::Ring;
use sdlo_service::api::{self, ApiError, ErrorKind, RoutingKey};
use sdlo_service::client::Client;
use sdlo_service::metrics::{Kind, Metrics};
use sdlo_trace::flight::{FlightRecord, FlightRecorder};
use sdlo_trace::AttrValue;
use sdlo_wire::Value;
use std::borrow::Cow;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Router tunables. Defaults suit a loopback fleet; every knob is surfaced
/// by the `sdlo-router` binary.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Backend addresses. Ring placement depends only on these strings, so
    /// keep them stable across router restarts.
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the hash ring.
    pub vnodes: usize,
    /// Maximum retries after an `overloaded` reply (failing over to the
    /// ring successor each time). 0 disables overload retries.
    pub max_retries: u32,
    /// Base backoff before an overload retry; doubles per retry, jittered.
    pub retry_base_ms: u64,
    /// Total wall-clock budget for one request's retries/failovers.
    pub retry_budget_ms: u64,
    /// Health-probe period. 0 disables the background prober (requests
    /// still evict/re-admit backends).
    pub health_interval_ms: u64,
    /// Consecutive failures before a backend is evicted from ring walks.
    pub fail_threshold: u32,
    /// Read timeout on backend connections.
    pub backend_timeout_ms: u64,
    /// Flight-recorder ring size (last N proxied requests).
    pub flight_capacity: usize,
    /// Requests slower than this (end-to-end, router-side) trigger a
    /// span-tree capture in the flight recorder. 0 disables captures.
    pub slow_threshold_micros: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            vnodes: 64,
            max_retries: 3,
            retry_base_ms: 5,
            retry_budget_ms: 2_000,
            health_interval_ms: 200,
            fail_threshold: 2,
            backend_timeout_ms: 10_000,
            flight_capacity: 256,
            slow_threshold_micros: 100_000,
        }
    }
}

/// Per-backend rollups, all lock-free. `up` is the eviction state the ring
/// walk consults.
#[derive(Debug, Default)]
pub struct BackendState {
    pub addr: String,
    up: AtomicBool,
    consecutive_failures: AtomicU64,
    /// Requests answered by this backend (any reply, ok or not).
    pub requests: AtomicU64,
    /// `ok:false` replies from this backend (overloaded included).
    pub errors: AtomicU64,
    /// Connects/sends/reads that failed outright.
    pub transport_errors: AtomicU64,
    /// Overload retries this backend's replies triggered.
    pub retries: AtomicU64,
    pub latency_sum_micros: AtomicU64,
    pub latency_count: AtomicU64,
}

impl BackendState {
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Relaxed)
    }
}

struct Shared {
    config: RouterConfig,
    backends: Vec<BackendState>,
    ring: Ring,
    /// Front-side per-op counters and latency histograms — the same
    /// structure a backend exposes, so scrapers and loadgen read the
    /// router exactly like a single server.
    metrics: Arc<Metrics>,
    /// Requests that exhausted every backend and were answered with a
    /// synthesized error.
    exhausted: AtomicU64,
    stop: AtomicBool,
    /// Round-robin cursor for keyless requests.
    rr: AtomicU64,
    /// SplitMix64 state for backoff jitter.
    jitter: AtomicU64,
    /// Source for router-generated request ids on synthesized replies.
    req_seq: AtomicU64,
    /// Our own bound address, used to poke the accept loop on shutdown.
    self_addr: std::sync::OnceLock<SocketAddr>,
    /// Always-on ring of the last N proxied requests plus slow captures —
    /// the router-side half of `debug`/`trace_dump`.
    flight: Arc<FlightRecorder>,
    /// Guards the final drain-summary log record (emitted exactly once,
    /// whether shutdown arrives over the wire or via the handle).
    summary: std::sync::Once,
}

impl Shared {
    fn next_jitter(&self) -> u64 {
        let mut x = self
            .jitter
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    fn next_request_id(&self) -> String {
        format!("rtr-{:08x}", self.req_seq.fetch_add(1, Ordering::Relaxed))
    }

    fn note_success(&self, idx: usize) {
        let b = &self.backends[idx];
        b.consecutive_failures.store(0, Ordering::Relaxed);
        if !b.up.swap(true, Ordering::Relaxed) {
            sdlo_trace::log::info(
                "router",
                "backend.readmitted",
                &[("backend", AttrValue::Str(b.addr.clone()))],
            );
        }
    }

    fn note_failure(&self, idx: usize) {
        let b = &self.backends[idx];
        let n = b.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= u64::from(self.config.fail_threshold) && b.up.swap(false, Ordering::Relaxed) {
            sdlo_trace::log::warn(
                "router",
                "backend.evicted",
                &[
                    ("backend", AttrValue::Str(b.addr.clone())),
                    ("consecutive_failures", AttrValue::UInt(n)),
                ],
            );
        }
    }

    /// The final summary record, logged exactly once at drain regardless of
    /// how many shutdown paths race.
    fn drain_summary(&self) {
        self.summary.call_once(|| {
            let up = self.backends.iter().filter(|b| b.is_up()).count();
            let transport_errors: u64 = self
                .backends
                .iter()
                .map(|b| b.transport_errors.load(Ordering::Relaxed))
                .sum();
            sdlo_trace::log::info(
                "router",
                "drain.summary",
                &[
                    ("requests_recorded", AttrValue::UInt(self.flight.pushed())),
                    (
                        "exhausted",
                        AttrValue::UInt(self.exhausted.load(Ordering::Relaxed)),
                    ),
                    ("transport_errors", AttrValue::UInt(transport_errors)),
                    ("backends_up", AttrValue::UInt(up as u64)),
                    (
                        "slow_captures",
                        AttrValue::UInt(self.flight.slow().len() as u64),
                    ),
                ],
            );
        });
    }

    /// Candidate sequence for one request: ring order for shaped keys,
    /// rotating round-robin for keyless ones.
    fn candidates(&self, key: RoutingKey) -> Vec<usize> {
        match key {
            RoutingKey::Shape(h) => self.ring.order(h),
            RoutingKey::Any => {
                let n = self.backends.len();
                let start = (self.rr.fetch_add(1, Ordering::Relaxed) as usize) % n.max(1);
                (0..n).map(|i| (start + i) % n).collect()
            }
        }
    }

    /// The full Prometheus exposition: front-side series (identical shape
    /// to a backend's) plus per-backend router rollups.
    fn prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = self.metrics.prometheus(0);
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        type BackendGauge = fn(&BackendState) -> u64;
        let series: [(&str, &str, BackendGauge); 6] = [
            ("sdlo_router_backend_up", "gauge", |b| u64::from(b.is_up())),
            ("sdlo_router_backend_requests_total", "counter", |b| {
                b.requests.load(Ordering::Relaxed)
            }),
            ("sdlo_router_backend_errors_total", "counter", |b| {
                b.errors.load(Ordering::Relaxed)
            }),
            (
                "sdlo_router_backend_transport_errors_total",
                "counter",
                |b| b.transport_errors.load(Ordering::Relaxed),
            ),
            ("sdlo_router_backend_retries_total", "counter", |b| {
                b.retries.load(Ordering::Relaxed)
            }),
            ("sdlo_router_backend_latency_micros_sum", "counter", |b| {
                b.latency_sum_micros.load(Ordering::Relaxed)
            }),
        ];
        for (name, ty, get) in series {
            let _ = writeln!(out, "# TYPE {name} {ty}");
            for b in &self.backends {
                let _ = writeln!(out, "{name}{{backend=\"{}\"}} {}", b.addr, get(b));
            }
        }
        out.push_str("# TYPE sdlo_router_backend_latency_micros_count counter\n");
        for b in &self.backends {
            let _ = writeln!(
                out,
                "sdlo_router_backend_latency_micros_count{{backend=\"{}\"}} {}",
                b.addr,
                load(&b.latency_count)
            );
        }
        out.push_str("# TYPE sdlo_router_exhausted_requests_total counter\n");
        let _ = writeln!(
            out,
            "sdlo_router_exhausted_requests_total {}",
            load(&self.exhausted)
        );
        out.push_str("# TYPE sdlo_router_ring_points gauge\n");
        let _ = writeln!(out, "sdlo_router_ring_points {}", self.ring.points());
        out
    }

    /// The `stats` body: the front-side snapshot (same shape as a backend's
    /// `stats`) plus a `router` section with per-backend rollups.
    fn stats_body(&self) -> Vec<(&'static str, Value)> {
        let mut snap = match self.metrics.snapshot() {
            Value::Object(fields) => fields,
            _ => unreachable!("snapshot is an object"),
        };
        let load = |a: &AtomicU64| Value::from(a.load(Ordering::Relaxed));
        let backends: Vec<Value> = self
            .backends
            .iter()
            .map(|b| {
                Value::obj(vec![
                    ("addr", Value::from(b.addr.as_str())),
                    ("up", Value::from(b.is_up())),
                    ("requests", load(&b.requests)),
                    ("errors", load(&b.errors)),
                    ("transport_errors", load(&b.transport_errors)),
                    ("retries", load(&b.retries)),
                    (
                        "latency",
                        Value::obj(vec![
                            ("sum_micros", load(&b.latency_sum_micros)),
                            ("count", load(&b.latency_count)),
                        ]),
                    ),
                ])
            })
            .collect();
        snap.push((
            "slowest".to_string(),
            Value::Object(
                self.flight
                    .slowest_per_op()
                    .into_iter()
                    .map(|(op, r)| {
                        (
                            op,
                            Value::obj(vec![
                                ("total_micros", Value::from(r.total_micros)),
                                ("request_id", Value::from(r.request_id.as_str())),
                                ("trace_id", Value::from(r.trace_id.as_str())),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ));
        snap.push((
            "router".to_string(),
            Value::obj(vec![
                ("backends", Value::Array(backends)),
                ("vnodes", Value::from(self.config.vnodes as u64)),
                ("ring_points", Value::from(self.ring.points() as u64)),
                ("exhausted", load(&self.exhausted)),
            ]),
        ));
        snap.push((
            "protocol_version".to_string(),
            Value::from(api::PROTOCOL_VERSION),
        ));
        snap.push((
            "ops".to_string(),
            Value::Array(api::ops().iter().map(|o| Value::from(*o)).collect()),
        ));
        vec![("stats", Value::Object(snap))]
    }
}

/// A running router. Dropping the handle does not stop it; call
/// [`RouterHandle::shutdown`] or send `{"op":"shutdown"}`.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    health: Option<std::thread::JoinHandle<()>>,
}

impl RouterHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The router's flight recorder — install it as the process trace
    /// collector to feed slow captures and `trace_dump` span trees.
    pub fn flight(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.shared.flight)
    }

    /// Whether backend `idx` is currently admitted to ring walks.
    pub fn backend_up(&self, idx: usize) -> bool {
        self.shared.backends[idx].is_up()
    }

    fn join(&mut self) {
        // Unblock the accept loop, which only observes `stop` between
        // accepts.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.health.take() {
            let _ = t.join();
        }
    }

    /// Stop accepting and wait for the service threads to exit. In-flight
    /// client connections finish their current request and close.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.join();
        self.shared.drain_summary();
    }

    /// Block until a `{"op":"shutdown"}` request arrives.
    pub fn run_until_shutdown(mut self) {
        while !self.shared.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.join();
        self.shared.drain_summary();
    }
}

/// Bind and start the router: one accept thread, one thread per client
/// connection, one background health prober.
pub fn serve(config: RouterConfig) -> std::io::Result<RouterHandle> {
    if config.backends.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "router needs at least one --backend",
        ));
    }
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let ring = Ring::build(&config.backends, config.vnodes);
    let backends = config
        .backends
        .iter()
        .map(|a| BackendState {
            addr: a.clone(),
            up: AtomicBool::new(true),
            ..BackendState::default()
        })
        .collect();
    let shared = Arc::new(Shared {
        backends,
        ring,
        metrics: Arc::new(Metrics::default()),
        exhausted: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        rr: AtomicU64::new(0),
        jitter: AtomicU64::new(0x243f_6a88_85a3_08d3),
        req_seq: AtomicU64::new(1),
        self_addr: std::sync::OnceLock::new(),
        flight: Arc::new(FlightRecorder::new(
            config.flight_capacity,
            config.slow_threshold_micros,
        )),
        summary: std::sync::Once::new(),
        config,
    });
    sdlo_trace::log::info(
        "router",
        "router.started",
        &[
            ("addr", AttrValue::Str(addr.to_string())),
            (
                "backends",
                AttrValue::UInt(shared.config.backends.len() as u64),
            ),
        ],
    );
    let _ = shared.self_addr.set(addr);

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("router-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                    shared
                        .metrics
                        .connections_active
                        .fetch_add(1, Ordering::Relaxed);
                    let shared = Arc::clone(&shared);
                    let _ = std::thread::Builder::new()
                        .name("router-conn".into())
                        .spawn(move || {
                            handle_client(&shared, stream);
                            shared
                                .metrics
                                .connections_active
                                .fetch_sub(1, Ordering::Relaxed);
                        });
                }
            })?
    };
    let health = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("router-health".into())
            .spawn(move || health_loop(&shared))?
    };
    Ok(RouterHandle {
        addr,
        shared,
        accept: Some(accept),
        health: Some(health),
    })
}

/// Probe every backend with a `stats` request each interval; a valid reply
/// re-admits, a failure counts toward eviction.
fn health_loop(shared: &Shared) {
    let interval = shared.config.health_interval_ms;
    if interval == 0 {
        return;
    }
    let probe_line = r#"{"op":"stats","request_id":"router-health"}"#;
    while !shared.stop.load(Ordering::SeqCst) {
        for (idx, b) in shared.backends.iter().enumerate() {
            let ok = Client::connect(&b.addr)
                .and_then(|mut c| {
                    c.set_read_timeout(Some(Duration::from_millis(
                        shared.config.backend_timeout_ms.max(100),
                    )))?;
                    c.request_line(probe_line)
                })
                .is_ok();
            if ok {
                shared.note_success(idx);
            } else {
                shared.note_failure(idx);
            }
        }
        // Sleep in short slices so shutdown is prompt.
        let deadline = Instant::now() + Duration::from_millis(interval);
        while Instant::now() < deadline && !shared.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(interval.min(25)));
        }
    }
}

/// One client connection: newline-delimited requests in, one reply line per
/// request out, in order.
fn handle_client(shared: &Shared, stream: TcpStream) {
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let mut writer = writer;
    let reader = BufReader::new(stream);
    // Backend connections are pooled per client connection: one persistent
    // stream per backend, replaced on transport error.
    let mut pool: HashMap<usize, Client> = HashMap::new();
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let parsed = sdlo_wire::parse(&line).ok();
        let op = parsed
            .as_ref()
            .and_then(|v| v.get("op"))
            .and_then(Value::as_str)
            .unwrap_or("");
        let kind = Kind::from_op(op);
        // Adopt the client's trace context when it sent one; otherwise the
        // router is the trace root and mints the fleet-wide id itself (only
        // when a collector is installed — untraced routers stay silent).
        let incoming = parsed.as_ref().and_then(api::request_trace);
        let span = sdlo_trace::span_with_parent(
            "router.request",
            incoming.as_ref().and_then(|t| t.parent_span),
        );
        span.attr("op", op);
        let trace_id = match (&incoming, span.id()) {
            (Some(t), _) => t.trace_id.clone(),
            (None, Some(_)) => format!("{:016x}", shared.next_jitter()),
            (None, None) => String::new(),
        };
        if !trace_id.is_empty() {
            span.attr("trace_id", trace_id.as_str());
        }

        // Raw Prometheus scrape: plain text, then EOF — same transport
        // behavior as a backend.
        if op == "metrics"
            && parsed
                .as_ref()
                .and_then(|v| v.get("raw"))
                .and_then(Value::as_bool)
                == Some(true)
        {
            let text = shared.prometheus();
            shared
                .metrics
                .record(kind, started.elapsed().as_micros() as u64, true);
            let _ = writer.write_all(text.as_bytes());
            let _ = writer.flush();
            break;
        }
        // Shutdown stops the router itself (backends are managed out of
        // band). Same transport-side reply shape as a backend.
        if op == "shutdown" {
            shared.stop.store(true, Ordering::SeqCst);
            if let Some(addr) = shared.self_addr.get() {
                let _ = TcpStream::connect(addr);
            }
            let text = Value::obj(vec![
                ("v", Value::from(api::PROTOCOL_VERSION)),
                ("ok", Value::from(true)),
                ("stopping", Value::from(true)),
            ])
            .render();
            let _ = writer.write_all(text.as_bytes());
            let _ = writer.write_all(b"\n");
            let _ = writer.flush();
            break;
        }

        // Aggregated observability is answered by the router; everything
        // else forwards (with the router's trace context spliced in when a
        // collector is recording, so backend spans parent under our root).
        let mut fwd = ForwardInfo::default();
        let (reply, ok) = match op {
            "stats" => local_reply(shared, parsed.as_ref(), shared.stats_body()),
            "metrics" => local_reply(
                shared,
                parsed.as_ref(),
                vec![
                    ("content_type", Value::from("text/plain; version=0.0.4")),
                    ("text", Value::from(shared.prometheus())),
                ],
            ),
            "debug" => local_debug(shared, parsed.as_ref()),
            _ => {
                let wire_line = traced_line(&line, &trace_id, span.id());
                forward(
                    shared,
                    parsed.as_ref(),
                    &wire_line,
                    &mut pool,
                    started,
                    &mut fwd,
                )
            }
        };
        if let Some(idx) = fwd.backend {
            span.attr("backend", shared.backends[idx].addr.as_str());
        }
        span.attr("failovers", u64::from(fwd.failovers));
        span.attr("retries", u64::from(fwd.retries));
        let total_micros = started.elapsed().as_micros() as u64;
        shared.metrics.record(kind, total_micros, ok);
        let root_span = span.id();
        drop(span);
        let status = if ok {
            "ok".to_string()
        } else {
            sdlo_wire::parse(&reply)
                .ok()
                .and_then(|r| {
                    r.path(&["error", "kind"])
                        .and_then(Value::as_str)
                        .map(str::to_string)
                })
                .unwrap_or_else(|| "error".to_string())
        };
        let canon_hash = match parsed.as_ref().map(api::routing_key) {
            Some(RoutingKey::Shape(h)) => h,
            _ => 0,
        };
        shared.flight.push(
            FlightRecord {
                op: op.to_string(),
                canon_hash,
                status,
                exec_micros: total_micros,
                total_micros,
                retries: u64::from(fwd.retries),
                failovers: u64::from(fwd.failovers),
                request_id: parsed
                    .as_ref()
                    .and_then(|r| r.get("request_id"))
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
                trace_id,
                ..FlightRecord::default()
            },
            root_span,
        );
        if writer.write_all(reply.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            break;
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// What one forwarded request cost in retries/failovers and where it
/// finally landed — feeds the root span's attrs and the flight record.
#[derive(Debug, Default)]
struct ForwardInfo {
    /// Overload retries spent.
    retries: u32,
    /// Transport-error failovers (each one moved the request to the ring
    /// successor).
    failovers: u32,
    /// The backend that produced the final reply, if any did.
    backend: Option<usize>,
}

/// Splice the router's trace context into a forwarded line. Association
/// lists keep duplicate keys and `get()` returns the *first* match, so a
/// front-spliced `trace` wins on the backend (re-parenting its spans under
/// the router's root) while the rest of the line stays byte-for-byte
/// untouched. With no recording root span the line passes through verbatim —
/// untraced routers add zero protocol surface.
fn traced_line<'a>(line: &'a str, trace_id: &str, parent_span: Option<u64>) -> Cow<'a, str> {
    let (Some(parent), Some(brace)) = (parent_span, line.find('{')) else {
        return Cow::Borrowed(line);
    };
    let rest = &line[brace + 1..];
    let mut out = String::with_capacity(line.len() + 64);
    out.push_str(&line[..=brace]);
    out.push_str("\"trace\":{\"trace_id\":");
    out.push_str(&Value::from(trace_id).render());
    out.push_str(",\"parent_span\":");
    out.push_str(&parent.to_string());
    out.push('}');
    if !rest.trim_start().starts_with('}') {
        out.push(',');
    }
    out.push_str(rest);
    Cow::Owned(out)
}

/// The router answers `debug` itself: `trace_dump` exposes the router-side
/// flight recorder (each backend serves its own over the same op).
fn local_debug(shared: &Shared, request: Option<&Value>) -> (String, bool) {
    let what = request
        .and_then(|v| v.get("what"))
        .and_then(Value::as_str)
        .unwrap_or("trace_dump");
    if what == "trace_dump" {
        return local_reply(shared, request, api::flight_dump_body(&shared.flight));
    }
    let (id, request_id) = correlation(shared, request);
    let err = ApiError::new(
        ErrorKind::Schema,
        format!("unknown debug query `{what}` (expected `trace_dump`)"),
    );
    (api::error_reply(id, &request_id, &err).render(), false)
}

/// A success reply built by the router itself (stats/metrics), with the
/// standard envelope correlation.
fn local_reply(
    shared: &Shared,
    request: Option<&Value>,
    body: Vec<(&'static str, Value)>,
) -> (String, bool) {
    let (id, request_id) = correlation(shared, request);
    (api::reply(id, &request_id, body).render(), true)
}

fn correlation(shared: &Shared, request: Option<&Value>) -> (Option<Value>, String) {
    let id = request.and_then(|r| r.get("id")).cloned();
    let request_id = request
        .and_then(|r| r.get("request_id"))
        .and_then(Value::as_str)
        .map(str::to_string)
        .unwrap_or_else(|| shared.next_request_id());
    (id, request_id)
}

/// Forward one request line: walk the candidate backends, failing over on
/// transport errors and (bounded, jittered) on `overloaded` replies. The
/// reply is the backend's bytes untouched; only when every avenue is
/// exhausted does the router synthesize an error envelope itself.
fn forward(
    shared: &Shared,
    request: Option<&Value>,
    line: &str,
    pool: &mut HashMap<usize, Client>,
    started: Instant,
    info: &mut ForwardInfo,
) -> (String, bool) {
    let key = request.map(api::routing_key).unwrap_or(RoutingKey::Any);
    let order = shared.candidates(key);
    let deadline = started + Duration::from_millis(shared.config.retry_budget_ms);
    let mut overload_retries = 0u32;
    let mut last_overloaded: Option<String> = None;
    // Hard bound on total attempts: every backend may be tried once per
    // "round", with one extra round per allowed overload retry.
    let attempt_cap = (order.len() as u32) * (shared.config.max_retries + 2);
    let mut cursor = 0usize;

    for attempt in 0..attempt_cap {
        if attempt > 0 && Instant::now() >= deadline {
            break;
        }
        // Next candidate: prefer admitted backends; when everything is
        // marked down, try them anyway — probing is how they come back.
        let idx = {
            let n = order.len();
            let pos = (0..n)
                .map(|i| (cursor + i) % n)
                .find(|p| shared.backends[order[*p]].is_up())
                .unwrap_or(cursor % n);
            cursor = pos + 1;
            order[pos]
        };
        let backend = &shared.backends[idx];
        let sent = Instant::now();
        match try_backend(shared, idx, line, pool) {
            Ok(text) => {
                shared.note_success(idx);
                info.backend = Some(idx);
                backend.requests.fetch_add(1, Ordering::Relaxed);
                backend
                    .latency_sum_micros
                    .fetch_add(sent.elapsed().as_micros() as u64, Ordering::Relaxed);
                backend.latency_count.fetch_add(1, Ordering::Relaxed);
                let reply = sdlo_wire::parse(&text).ok();
                let ok = reply
                    .as_ref()
                    .and_then(|r| r.get("ok"))
                    .and_then(Value::as_bool)
                    .unwrap_or(false);
                if ok {
                    return (text, true);
                }
                backend.errors.fetch_add(1, Ordering::Relaxed);
                let overloaded = reply
                    .as_ref()
                    .and_then(|r| r.path(&["error", "kind"]))
                    .and_then(Value::as_str)
                    == Some(ErrorKind::Overloaded.as_str());
                if !overloaded {
                    // Any other error is the request's real answer.
                    return (text, false);
                }
                last_overloaded = Some(text);
                if overload_retries >= shared.config.max_retries {
                    break;
                }
                overload_retries += 1;
                info.retries = overload_retries;
                backend.retries.fetch_add(1, Ordering::Relaxed);
                // Capped exponential backoff with ±50% jitter.
                let base = shared.config.retry_base_ms << (overload_retries - 1).min(6);
                let jitter = shared.next_jitter() % base.max(1);
                std::thread::sleep(Duration::from_millis((base / 2 + jitter).min(200)));
            }
            Err(e) => {
                backend.transport_errors.fetch_add(1, Ordering::Relaxed);
                shared.note_failure(idx);
                info.failovers += 1;
                // Fail over immediately: the next candidate gets the
                // request, the client never sees the dead backend.
                sdlo_trace::log::warn(
                    "router",
                    "backend.failover",
                    &[
                        ("backend", AttrValue::Str(backend.addr.clone())),
                        ("attempt", AttrValue::UInt(u64::from(attempt) + 1)),
                        ("error", AttrValue::Str(e.to_string())),
                    ],
                );
            }
        }
    }
    // Exhausted: the last overloaded reply (already correlated by the
    // backend) beats a synthesized envelope.
    if let Some(text) = last_overloaded {
        return (text, false);
    }
    shared.exhausted.fetch_add(1, Ordering::Relaxed);
    let (id, request_id) = correlation(shared, request);
    let err = ApiError::new(
        ErrorKind::Overloaded,
        "no backend available (all candidates failed or overloaded)",
    );
    (api::error_reply(id, &request_id, &err).render(), false)
}

/// One attempt against one backend over the pooled connection, reconnecting
/// if the pool has none. Any transport error drops the pooled connection.
fn try_backend(
    shared: &Shared,
    idx: usize,
    line: &str,
    pool: &mut HashMap<usize, Client>,
) -> std::io::Result<String> {
    let client = match pool.entry(idx) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(e) => {
            let client = Client::connect(&shared.backends[idx].addr)?;
            client.set_read_timeout(Some(Duration::from_millis(
                shared.config.backend_timeout_ms.max(100),
            )))?;
            e.insert(client)
        }
    };
    match client.request_line(line) {
        Ok(text) => Ok(text),
        Err(e) => {
            pool.remove(&idx);
            Err(e)
        }
    }
}
