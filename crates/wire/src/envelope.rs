//! The protocol reply envelope — the **single** definition of its pinned
//! field order.
//!
//! Every reply in the fleet (service backends and the router front alike)
//! opens with the same fields in the same order:
//!
//! ```text
//! {"id":…, "request_id":"…", "v":N, "ok":true,  …body…}
//! {"id":…, "request_id":"…", "v":N, "ok":false, "error":{"kind":…, "message":…}}
//! ```
//!
//! `id` is present only when the request carried one. The order is part of
//! the wire format (golden-tested byte-for-byte in `sdlo-service`), which
//! is why the builders live here rather than being copied per process: a
//! reorder would have to happen in exactly one place, and would fail the
//! goldens once, not per-copy.

use crate::json::Value;

/// The shared envelope prefix: `id?`, `request_id`, `v`, `ok` — in exactly
/// that order.
pub fn envelope_fields(
    id: Option<Value>,
    request_id: &str,
    version: u64,
    ok: bool,
) -> Vec<(String, Value)> {
    let mut fields: Vec<(String, Value)> = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_string(), id));
    }
    fields.push(("request_id".to_string(), Value::from(request_id)));
    fields.push(("v".to_string(), Value::from(version)));
    fields.push(("ok".to_string(), Value::from(ok)));
    fields
}

/// A success reply: the envelope prefix followed by the op's body fields in
/// the order given.
pub fn reply(
    id: Option<Value>,
    request_id: &str,
    version: u64,
    body: Vec<(&'static str, Value)>,
) -> Value {
    let mut fields = envelope_fields(id, request_id, version, true);
    for (k, v) in body {
        fields.push((k.to_string(), v));
    }
    Value::Object(fields)
}

/// The unified error envelope: the prefix with `ok:false` plus one
/// `error:{kind, message}` object.
pub fn error_reply(
    id: Option<Value>,
    request_id: &str,
    version: u64,
    kind: &str,
    message: &str,
) -> Value {
    let mut fields = envelope_fields(id, request_id, version, false);
    fields.push((
        "error".to_string(),
        Value::obj(vec![
            ("kind", Value::from(kind)),
            ("message", Value::from(message)),
        ]),
    ));
    Value::Object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_order_is_pinned() {
        let ok = reply(
            Some(Value::from(7u64)),
            "req-00000001",
            1,
            vec![("answer", Value::from(42u64))],
        );
        assert_eq!(
            ok.render(),
            r#"{"id":7,"request_id":"req-00000001","v":1,"ok":true,"answer":42}"#
        );
        let err = error_reply(None, "req-00000002", 1, "limit", "too big");
        assert_eq!(
            err.render(),
            r#"{"request_id":"req-00000002","v":1,"ok":false,"error":{"kind":"limit","message":"too big"}}"#
        );
    }

    #[test]
    fn id_is_omitted_when_absent() {
        let fields = envelope_fields(None, "r", 1, true);
        assert_eq!(fields[0].0, "request_id");
        let fields = envelope_fields(Some(Value::from("x")), "r", 2, false);
        assert_eq!(fields[0].0, "id");
        assert_eq!(fields[2].1.as_u64(), Some(2));
    }
}
