//! Minimal JSON value, parser and writer.
//!
//! The build environment has no access to crates.io, so the wire format is
//! implemented by hand: a recursive-descent parser with a depth limit and
//! full string-escape handling, and a deterministic writer. Only what the
//! sdlo service protocol needs — no serde integration, no streaming.
//!
//! Numbers parse to [`Value::Int`] (`i64`) when they are written without a
//! fraction or exponent and fit; anything else becomes [`Value::Float`].
//! Objects preserve insertion order (they are association lists, not maps);
//! duplicate keys are kept as-is and [`Value::get`] returns the first.

use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`parse`] — guards a hostile client
/// from overflowing the parser's stack.
pub const MAX_DEPTH: usize = 64;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// First value under `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walk a chain of object keys (`v.path(&["stats", "per_op"])` is
    /// `v.get("stats").and_then(|s| s.get("per_op"))`).
    pub fn path(&self, segments: &[&str]) -> Option<&Value> {
        let mut cur = self;
        for seg in segments {
            cur = cur.get(seg)?;
        }
        Some(cur)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer (rejects negatives and floats).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Serialize to a compact single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        // Counts beyond i64::MAX degrade to floats (documented lossiness;
        // miss counts in practice are far below 2^63).
        i64::try_from(n)
            .map(Value::Int)
            .unwrap_or(Value::Float(n as f64))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::from(n as u64)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Parse failure with a byte position for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub at: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), JsonError> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(fields)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `}` in object"));
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `]` in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require \uXXXX low surrogate.
                            self.literal("\\u")?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(self.err("unpaired low surrogate"));
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("control byte in string")),
                Some(c) => {
                    // Re-decode UTF-8 multibyte sequences from the source.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(c).ok_or_else(|| self.err("invalid utf-8"))?;
                        let end = start + len;
                        let bytes = self
                            .src
                            .get(start..end)
                            .ok_or_else(|| self.err("invalid utf-8"))?;
                        let s =
                            std::str::from_utf8(bytes).map_err(|_| self.err("invalid utf-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if integral {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| JsonError {
                at: start,
                message: format!("bad number `{text}`"),
            })
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null"); // JSON has no Inf/NaN
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let v = Value::obj(vec![
            ("kind", Value::from("predict")),
            ("n", Value::from(42i64)),
            ("neg", Value::from(-7i64)),
            ("pi", Value::from(3.5f64)),
            ("ok", Value::from(true)),
            ("items", Value::from(vec![1i64, 2, 3])),
            ("nested", Value::obj(vec![("x", Value::Null)])),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s":"a\"b\\c\nd\u00e9\ud83d\ude00é"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\"b\\c\ndé😀é");
        // Writer escapes control characters back out.
        let text = v.render();
        assert!(text.contains("\\n"));
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_vs_floats() {
        assert_eq!(parse("7").unwrap(), Value::Int(7));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("7.5").unwrap(), Value::Float(7.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        // Larger than i64::MAX degrades to float.
        assert!(matches!(
            parse("99999999999999999999").unwrap(),
            Value::Float(_)
        ));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "\"\\q\"", "1 2", "\u{1}", "[1]]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn object_get_returns_first() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
    }
}
