//! # sdlo-wire
//!
//! Wire format for the sdlo tile-advisor service: a dependency-free JSON
//! value type, parser and writer ([`json`]), plus codecs between JSON and
//! the analysis types — [`Program`](sdlo_ir::Program),
//! [`Bindings`](sdlo_symbolic::Bindings), reuse components and tile-search
//! outcomes ([`codec`]).
//!
//! Design choices:
//!
//! * **Expressions are strings** in the `sdlo-symbolic` surface syntax
//!   (`"Nk*ceil(Ni/Ti)"`); `Display` → [`parse_expr`](sdlo_symbolic::parse_expr)
//!   round-tripping is property-tested in `sdlo-symbolic`.
//! * **Arrays travel by name**, statement ids are implicit program order:
//!   the textual form carries no redundant numbering to get out of sync.
//! * **Decoded programs are validated** before they are returned, so
//!   downstream analysis can assume well-formedness.

pub mod codec;
pub mod envelope;
pub mod json;

pub use codec::{
    bindings_from_value, bindings_to_value, component_to_value, delta_from_value, delta_to_value,
    dep_summary_to_value, diagnostic_to_value, evaluation_to_value, outcome_to_value,
    program_from_value, program_from_value_unchecked, program_to_value,
    stored_component_from_value, stored_component_to_value, WireError,
};
pub use json::{parse, JsonError, Value};
