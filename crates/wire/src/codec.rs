//! Conversions between sdlo's in-memory types and [`Value`] documents.
//!
//! Symbolic expressions travel as strings in the `sdlo-symbolic` surface
//! syntax (`Display` on encode, [`parse_expr`] on decode — the round trip is
//! property-tested in that crate). Arrays are referenced *by name* on the
//! wire; statement ids are implicit (program order) and reassigned on decode.

use crate::json::{JsonError, Value};
use sdlo_core::partition::{Component, ComponentKind, StackDistance};
use sdlo_ir::{
    ArrayDecl, ArrayId, ArrayRef, DimExpr, LoopNode, Node, Program, Stmt, StmtId, StmtKind,
    ValidateError,
};
use sdlo_symbolic::{parse_expr, Bindings, Expr, Sym};
use sdlo_tilesearch::{Evaluation, SearchOutcome};

/// Decode-side failure: malformed JSON, a schema violation, or a program
/// that parses but does not validate.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    Json(JsonError),
    Schema(String),
    Validate(ValidateError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Json(e) => write!(f, "{e}"),
            WireError::Schema(m) => write!(f, "schema error: {m}"),
            WireError::Validate(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<JsonError> for WireError {
    fn from(e: JsonError) -> Self {
        WireError::Json(e)
    }
}

fn schema(msg: impl Into<String>) -> WireError {
    WireError::Schema(msg.into())
}

fn expr_to_string(e: &Expr) -> String {
    e.to_string()
}

fn expr_from_value(v: &Value, what: &str) -> Result<Expr, WireError> {
    let s = v
        .as_str()
        .ok_or_else(|| schema(format!("{what}: expected expression string")))?;
    parse_expr(s).map_err(|e| schema(format!("{what}: `{s}`: {e}")))
}

fn field<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a Value, WireError> {
    v.get(key)
        .ok_or_else(|| schema(format!("{what}: missing field `{key}`")))
}

fn str_field<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a str, WireError> {
    field(v, key, what)?
        .as_str()
        .ok_or_else(|| schema(format!("{what}: field `{key}` must be a string")))
}

// ---------------------------------------------------------------------------
// Bindings
// ---------------------------------------------------------------------------

/// `{"N": 512, "Ti": 64}`. Values must fit `i64` on the wire.
pub fn bindings_to_value(b: &Bindings) -> Value {
    Value::Object(
        b.iter()
            .map(|(s, v)| {
                let val = i64::try_from(v)
                    .map(Value::Int)
                    .unwrap_or(Value::Float(v as f64));
                (s.name().to_string(), val)
            })
            .collect(),
    )
}

pub fn bindings_from_value(v: &Value) -> Result<Bindings, WireError> {
    let fields = v
        .as_object()
        .ok_or_else(|| schema("bindings: expected an object of integers"))?;
    let mut b = Bindings::new();
    for (k, val) in fields {
        let n = val
            .as_i64()
            .ok_or_else(|| schema(format!("bindings: `{k}` must be an integer")))?;
        b.set(Sym::new(k.as_str()), i128::from(n));
    }
    Ok(b)
}

// ---------------------------------------------------------------------------
// Revise deltas
// ---------------------------------------------------------------------------

/// Decode a `revise` delta: `{"bindings":{…}?, "cache_sizes":[…]?}`. Both
/// fields are optional — an empty delta is a legal no-op that re-reads the
/// DAG's current answer.
pub fn delta_from_value(v: &Value) -> Result<sdlo_core::dag::DagDelta, WireError> {
    v.as_object()
        .ok_or_else(|| schema("delta: expected an object"))?;
    let bindings = match v.get("bindings") {
        None => Bindings::new(),
        Some(b) => bindings_from_value(b)?,
    };
    let cache_sizes =
        match v.get("cache_sizes") {
            None => None,
            Some(cs) => {
                let arr = cs
                    .as_array()
                    .ok_or_else(|| schema("delta: `cache_sizes` must be an array of integers"))?;
                if arr.is_empty() {
                    return Err(schema(
                        "delta: `cache_sizes` must be non-empty when present",
                    ));
                }
                let mut sizes = Vec::with_capacity(arr.len());
                for s in arr {
                    sizes.push(s.as_u64().ok_or_else(|| {
                        schema("delta: `cache_sizes` must be non-negative integers")
                    })?);
                }
                Some(sizes)
            }
        };
    Ok(sdlo_core::dag::DagDelta {
        bindings,
        cache_sizes,
    })
}

/// Encode a `revise` delta (client side; round-trips through
/// [`delta_from_value`]).
pub fn delta_to_value(delta: &sdlo_core::dag::DagDelta) -> Value {
    let mut fields = vec![("bindings", bindings_to_value(&delta.bindings))];
    if let Some(sizes) = &delta.cache_sizes {
        fields.push((
            "cache_sizes",
            Value::Array(sizes.iter().map(|s| Value::from(*s)).collect()),
        ));
    }
    Value::obj(fields)
}

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

fn kind_to_str(k: StmtKind) -> &'static str {
    match k {
        StmtKind::ZeroLhs => "zero",
        StmtKind::Assign => "assign",
        StmtKind::MulAddAssign => "mul_add_assign",
    }
}

fn kind_from_str(s: &str) -> Result<StmtKind, WireError> {
    match s {
        "zero" => Ok(StmtKind::ZeroLhs),
        "assign" => Ok(StmtKind::Assign),
        "mul_add_assign" => Ok(StmtKind::MulAddAssign),
        other => Err(schema(format!(
            "unknown statement kind `{other}` (expected zero | assign | mul_add_assign)"
        ))),
    }
}

/// Encode a program. The inverse of [`program_from_value`].
pub fn program_to_value(p: &Program) -> Value {
    fn node(p: &Program, n: &Node) -> Value {
        match n {
            Node::Loop(l) => Value::obj(vec![(
                "for",
                Value::obj(vec![
                    ("index", Value::from(l.index.name())),
                    ("bound", Value::from(expr_to_string(&l.bound))),
                    (
                        "body",
                        Value::Array(l.body.iter().map(|c| node(p, c)).collect()),
                    ),
                ]),
            )]),
            Node::Stmt(s) => Value::obj(vec![(
                "stmt",
                Value::obj(vec![
                    ("kind", Value::from(kind_to_str(s.kind))),
                    (
                        "refs",
                        Value::Array(
                            s.refs
                                .iter()
                                .map(|r| {
                                    Value::obj(vec![
                                        ("array", Value::from(p.array(r.array).name.name())),
                                        ("write", Value::from(r.is_write)),
                                        (
                                            "dims",
                                            Value::Array(
                                                r.dims
                                                    .iter()
                                                    .map(|d| {
                                                        Value::Array(
                                                            d.parts
                                                                .iter()
                                                                .map(|(idx, stride)| {
                                                                    Value::obj(vec![
                                                                        (
                                                                            "index",
                                                                            Value::from(idx.name()),
                                                                        ),
                                                                        (
                                                                            "stride",
                                                                            Value::from(
                                                                                expr_to_string(
                                                                                    stride,
                                                                                ),
                                                                            ),
                                                                        ),
                                                                    ])
                                                                })
                                                                .collect(),
                                                        )
                                                    })
                                                    .collect(),
                                            ),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            )]),
        }
    }
    Value::obj(vec![
        ("name", Value::from(p.name.as_str())),
        (
            "arrays",
            Value::Array(
                p.arrays
                    .iter()
                    .map(|a| {
                        Value::obj(vec![
                            ("name", Value::from(a.name.name())),
                            (
                                "dims",
                                Value::Array(
                                    a.dims
                                        .iter()
                                        .map(|d| Value::from(expr_to_string(d)))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "nest",
            Value::Array(p.root.iter().map(|n| node(p, n)).collect()),
        ),
    ])
}

/// Decode a program and validate it. Statement ids are assigned in program
/// order; labels are regenerated from the reference structure.
pub fn program_from_value(v: &Value) -> Result<Program, WireError> {
    let p = program_from_value_unchecked(v)?;
    p.validate().map_err(WireError::Validate)?;
    Ok(p)
}

/// Decode a program WITHOUT the final [`Program::validate`] step. For the
/// lint path: structural problems are the linter's `structure` diagnostics,
/// not a request error. Schema-level problems (unknown arrays, bad
/// expressions) still fail the decode.
pub fn program_from_value_unchecked(v: &Value) -> Result<Program, WireError> {
    let name = v.get("name").and_then(Value::as_str).unwrap_or("unnamed");
    let mut p = Program::new(name);
    let arrays = field(v, "arrays", "program")?
        .as_array()
        .ok_or_else(|| schema("program: `arrays` must be an array"))?;
    for a in arrays {
        let aname = str_field(a, "name", "array")?;
        if p.array_by_name(aname).is_some() {
            return Err(schema(format!("array `{aname}` declared twice")));
        }
        let dims = field(a, "dims", "array")?
            .as_array()
            .ok_or_else(|| schema(format!("array `{aname}`: `dims` must be an array")))?;
        if dims.is_empty() {
            return Err(schema(format!(
                "array `{aname}` must have at least one dimension"
            )));
        }
        let dims: Vec<Expr> = dims
            .iter()
            .map(|d| expr_from_value(d, &format!("array `{aname}` extent")))
            .collect::<Result<_, _>>()?;
        p.declare(aname, dims);
    }

    fn decode_ref(p: &Program, v: &Value) -> Result<ArrayRef, WireError> {
        let aname = str_field(v, "array", "ref")?;
        let decl: &ArrayDecl = p
            .array_by_name(aname)
            .ok_or_else(|| schema(format!("reference to undeclared array `{aname}`")))?;
        let is_write = v.get("write").and_then(Value::as_bool).unwrap_or(false);
        let dims = field(v, "dims", "ref")?
            .as_array()
            .ok_or_else(|| schema(format!("ref `{aname}`: `dims` must be an array")))?;
        let dims: Vec<DimExpr> = dims
            .iter()
            .map(|d| {
                // An empty part list is legal: a scalar subscript (always
                // element 1), as in the fused two-index transform's `T[]`.
                let parts = d.as_array().ok_or_else(|| {
                    schema(format!(
                        "ref `{aname}`: dimension must be an array of parts"
                    ))
                })?;
                let parts: Vec<(Sym, Expr)> = parts
                    .iter()
                    .map(|part| {
                        let idx = str_field(part, "index", "dim part")?;
                        let stride = match part.get("stride") {
                            Some(s) => expr_from_value(s, "dim part stride")?,
                            None => Expr::one(),
                        };
                        Ok((Sym::new(idx), stride))
                    })
                    .collect::<Result<_, WireError>>()?;
                Ok::<DimExpr, WireError>(DimExpr { parts })
            })
            .collect::<Result<_, _>>()?;
        Ok(ArrayRef {
            array: decl.id,
            dims,
            is_write,
        })
    }

    fn decode_node(p: &Program, v: &Value, next_stmt: &mut usize) -> Result<Node, WireError> {
        if let Some(l) = v.get("for") {
            let index = str_field(l, "index", "loop")?;
            let bound = expr_from_value(field(l, "bound", "loop")?, "loop bound")?;
            let body = field(l, "body", "loop")?
                .as_array()
                .ok_or_else(|| schema("loop: `body` must be an array"))?;
            let body: Vec<Node> = body
                .iter()
                .map(|n| decode_node(p, n, next_stmt))
                .collect::<Result<_, _>>()?;
            Ok(Node::Loop(LoopNode {
                index: Sym::new(index),
                bound,
                body,
            }))
        } else if let Some(s) = v.get("stmt") {
            let kind = kind_from_str(str_field(s, "kind", "stmt")?)?;
            let refs = field(s, "refs", "stmt")?
                .as_array()
                .ok_or_else(|| schema("stmt: `refs` must be an array"))?;
            let refs: Vec<ArrayRef> = refs
                .iter()
                .map(|r| decode_ref(p, r))
                .collect::<Result<_, _>>()?;
            let id = StmtId(*next_stmt);
            *next_stmt += 1;
            let label = render_label(p, kind, &refs);
            Ok(Node::Stmt(Stmt {
                id,
                label,
                refs,
                kind,
            }))
        } else {
            Err(schema("node must be `{\"for\": …}` or `{\"stmt\": …}`"))
        }
    }

    let nest = field(v, "nest", "program")?
        .as_array()
        .ok_or_else(|| schema("program: `nest` must be an array"))?;
    let mut next_stmt = 0usize;
    p.root = nest
        .iter()
        .map(|n| decode_node(&p, n, &mut next_stmt))
        .collect::<Result<_, _>>()?;
    Ok(p)
}

/// Human-readable statement text, e.g. `C[i,k] += A[i,j] * B[j,k]`.
fn render_label(p: &Program, kind: StmtKind, refs: &[ArrayRef]) -> String {
    let fmt_ref = |r: &ArrayRef| {
        let dims: Vec<String> = r
            .dims
            .iter()
            .map(|d| {
                d.parts
                    .iter()
                    .map(|(idx, stride)| {
                        if stride.as_const() == Some(1) {
                            idx.name().to_string()
                        } else {
                            format!("{idx}*({stride})")
                        }
                    })
                    .collect::<Vec<_>>()
                    .join("+")
            })
            .collect();
        format!("{}[{}]", p.array(r.array).name, dims.join(","))
    };
    match (kind, refs) {
        (StmtKind::ZeroLhs, [l]) => format!("{} = 0", fmt_ref(l)),
        (StmtKind::Assign, [l, r]) => format!("{} = {}", fmt_ref(l), fmt_ref(r)),
        (StmtKind::MulAddAssign, [l, a, b]) => {
            format!("{} += {} * {}", fmt_ref(l), fmt_ref(a), fmt_ref(b))
        }
        _ => "<malformed>".to_string(),
    }
}

// ---------------------------------------------------------------------------
// Analysis results (encode only — responses, not requests)
// ---------------------------------------------------------------------------

/// Encode one reuse component. `name_of` maps the component's [`ArrayId`]
/// to the array name the caller knows (lets a service report results on a
/// canonical program under the original names).
pub fn component_to_value(c: &Component, name_of: impl Fn(ArrayId) -> String) -> Value {
    let kind = match &c.kind {
        ComponentKind::Compulsory => Value::obj(vec![("kind", Value::from("compulsory"))]),
        ComponentKind::Carried {
            loop_index,
            source_stmt,
        } => Value::obj(vec![
            ("kind", Value::from("carried")),
            ("loop", Value::from(loop_index.name())),
            ("source_stmt", Value::from(source_stmt.0)),
        ]),
        ComponentKind::CrossStmt { source_stmt } => Value::obj(vec![
            ("kind", Value::from("cross_stmt")),
            ("source_stmt", Value::from(source_stmt.0)),
        ]),
    };
    let distance = match &c.distance {
        StackDistance::Infinite => Value::from("inf"),
        StackDistance::Constant(e) => Value::from(expr_to_string(e)),
        StackDistance::Varying { lo, hi } => Value::obj(vec![
            ("lo", Value::from(expr_to_string(lo))),
            ("hi", Value::from(expr_to_string(hi))),
        ]),
    };
    Value::obj(vec![
        ("array", Value::from(name_of(c.array))),
        ("stmt", Value::from(c.stmt.0)),
        ("ref", Value::from(c.ref_idx)),
        ("reuse", kind),
        ("count", Value::from(expr_to_string(&c.count))),
        ("distance", distance),
    ])
}

// ---------------------------------------------------------------------------
// Persisted components (the disk model-cache tier)
// ---------------------------------------------------------------------------

/// Encode one reuse component for *persistence*: array ids are numeric
/// (positions in the canonical program), expressions travel as strings, and
/// [`stored_component_from_value`] is the exact inverse. This is distinct
/// from [`component_to_value`], which renders components for human-facing
/// replies under the caller's array names and has no decoder.
pub fn stored_component_to_value(c: &Component) -> Value {
    let kind = match &c.kind {
        ComponentKind::Compulsory => Value::obj(vec![("kind", Value::from("compulsory"))]),
        ComponentKind::Carried {
            loop_index,
            source_stmt,
        } => Value::obj(vec![
            ("kind", Value::from("carried")),
            ("loop", Value::from(loop_index.name())),
            ("source_stmt", Value::from(source_stmt.0)),
        ]),
        ComponentKind::CrossStmt { source_stmt } => Value::obj(vec![
            ("kind", Value::from("cross_stmt")),
            ("source_stmt", Value::from(source_stmt.0)),
        ]),
    };
    let distance = match &c.distance {
        StackDistance::Infinite => Value::from("inf"),
        StackDistance::Constant(e) => Value::obj(vec![("const", Value::from(expr_to_string(e)))]),
        StackDistance::Varying { lo, hi } => Value::obj(vec![
            ("lo", Value::from(expr_to_string(lo))),
            ("hi", Value::from(expr_to_string(hi))),
        ]),
    };
    Value::obj(vec![
        ("array", Value::from(c.array.0)),
        ("stmt", Value::from(c.stmt.0)),
        ("ref", Value::from(c.ref_idx)),
        ("reuse", kind),
        ("count", Value::from(expr_to_string(&c.count))),
        ("distance", distance),
    ])
}

/// Decode one persisted reuse component. The inverse of
/// [`stored_component_to_value`]; every malformed field is a
/// [`WireError::Schema`], never a panic — the disk cache treats any decode
/// failure as a miss and rebuilds.
pub fn stored_component_from_value(v: &Value) -> Result<Component, WireError> {
    let idx_field = |key: &str| -> Result<usize, WireError> {
        field(v, key, "component")?
            .as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| schema(format!("component: `{key}` must be a non-negative integer")))
    };
    let reuse = field(v, "reuse", "component")?;
    let kind = match str_field(reuse, "kind", "component reuse")? {
        "compulsory" => ComponentKind::Compulsory,
        "carried" => ComponentKind::Carried {
            loop_index: Sym::new(str_field(reuse, "loop", "carried reuse")?),
            source_stmt: StmtId(
                field(reuse, "source_stmt", "carried reuse")?
                    .as_u64()
                    .ok_or_else(|| schema("carried reuse: `source_stmt` must be an integer"))?
                    as usize,
            ),
        },
        "cross_stmt" => ComponentKind::CrossStmt {
            source_stmt: StmtId(
                field(reuse, "source_stmt", "cross_stmt reuse")?
                    .as_u64()
                    .ok_or_else(|| schema("cross_stmt reuse: `source_stmt` must be an integer"))?
                    as usize,
            ),
        },
        other => return Err(schema(format!("unknown reuse kind `{other}`"))),
    };
    let dv = field(v, "distance", "component")?;
    let distance = if dv.as_str() == Some("inf") {
        StackDistance::Infinite
    } else if let Some(c) = dv.get("const") {
        StackDistance::Constant(expr_from_value(c, "constant distance")?)
    } else if dv.get("lo").is_some() && dv.get("hi").is_some() {
        StackDistance::Varying {
            lo: expr_from_value(field(dv, "lo", "varying distance")?, "varying distance lo")?,
            hi: expr_from_value(field(dv, "hi", "varying distance")?, "varying distance hi")?,
        }
    } else {
        return Err(schema(
            "component distance must be \"inf\", {const}, or {lo, hi}",
        ));
    };
    Ok(Component {
        array: ArrayId(idx_field("array")?),
        stmt: StmtId(idx_field("stmt")?),
        ref_idx: idx_field("ref")?,
        kind,
        count: expr_from_value(field(v, "count", "component")?, "component count")?,
        distance,
    })
}

/// Encode one lint diagnostic. Span coordinates are emitted only when the
/// rule filled them in; the fix-it is an optional `{action, detail,
/// legality, target?}` object, where `target` is the machine-applicable
/// payload (`{permute: {stmt, order}}` or `{tile: {stmt, loops}}`) present
/// exactly when the fix-it can be auto-applied.
pub fn diagnostic_to_value(d: &sdlo_analysis::Diagnostic) -> Value {
    let mut span = Vec::new();
    if let Some(s) = d.span.stmt {
        span.push(("stmt", Value::from(s.0)));
    }
    if let Some(r) = d.span.ref_idx {
        span.push(("ref", Value::from(r)));
    }
    if let Some(dim) = d.span.dim {
        span.push(("dim", Value::from(dim)));
    }
    if let Some(l) = &d.span.loop_index {
        span.push(("loop", Value::from(l.name())));
    }
    if let Some(a) = &d.span.array {
        span.push(("array", Value::from(a.name())));
    }
    let mut fields = vec![
        ("rule", Value::from(d.rule)),
        ("severity", Value::from(d.severity.name())),
        ("span", Value::obj(span)),
        ("message", Value::from(d.message.as_str())),
    ];
    if let Some(fx) = &d.fixit {
        let mut fx_fields = vec![
            ("action", Value::from(fx.action)),
            ("detail", Value::from(fx.detail.as_str())),
            ("legality", Value::from(fx.legality.name())),
        ];
        if let Some(t) = &fx.target {
            fx_fields.push(("target", fix_target_to_value(t)));
        }
        fields.push(("fixit", Value::obj(fx_fields)));
    }
    Value::obj(fields)
}

fn fix_target_to_value(t: &sdlo_analysis::FixTarget) -> Value {
    match t {
        sdlo_analysis::FixTarget::Permute { stmt, order } => Value::obj(vec![(
            "permute",
            Value::obj(vec![
                ("stmt", Value::from(stmt.0)),
                (
                    "order",
                    Value::Array(order.iter().map(|s| Value::from(s.name())).collect()),
                ),
            ]),
        )]),
        sdlo_analysis::FixTarget::Tile { stmt, loops } => Value::obj(vec![(
            "tile",
            Value::obj(vec![
                ("stmt", Value::from(stmt.0)),
                (
                    "loops",
                    Value::Array(
                        loops
                            .iter()
                            .map(|(l, t)| {
                                Value::obj(vec![
                                    ("loop", Value::from(l.name())),
                                    ("tile_sym", Value::from(t.name())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        )]),
    }
}

/// Encode a dependence summary: totals by kind, precision, per-loop carried
/// counts, and the parallelizable loops.
pub fn dep_summary_to_value(s: &sdlo_deps::DepSummary) -> Value {
    Value::obj(vec![
        ("total", Value::from(s.total)),
        ("flow", Value::from(s.flow)),
        ("anti", Value::from(s.anti)),
        ("output", Value::from(s.output)),
        ("precise", Value::from(s.precise)),
        (
            "carried",
            Value::Object(
                s.carried
                    .iter()
                    .map(|(l, n)| (l.clone(), Value::from(*n)))
                    .collect(),
            ),
        ),
        (
            "parallelizable",
            Value::Array(
                s.parallelizable
                    .iter()
                    .map(|l| Value::from(l.as_str()))
                    .collect(),
            ),
        ),
    ])
}

/// `{"tiles": {"Ti": 8, …}, "misses": n}` with tiles named by the search
/// space's symbols.
pub fn evaluation_to_value(tile_syms: &[String], e: &Evaluation) -> Value {
    Value::obj(vec![
        (
            "tiles",
            Value::Object(
                tile_syms
                    .iter()
                    .zip(&e.tiles)
                    .map(|(s, t)| (s.clone(), Value::from(*t)))
                    .collect(),
            ),
        ),
        ("misses", Value::from(e.misses)),
    ])
}

/// Encode a tile-search outcome: best point, evaluation count, completion
/// flag, wall time, frontier.
pub fn outcome_to_value(tile_syms: &[String], o: &SearchOutcome) -> Value {
    Value::obj(vec![
        ("best", evaluation_to_value(tile_syms, &o.best)),
        ("evaluations", Value::from(o.evaluations)),
        ("completed", Value::from(o.completed)),
        ("wall_micros", Value::from(o.wall_micros)),
        (
            "frontier",
            Value::Array(
                o.frontier
                    .iter()
                    .map(|e| evaluation_to_value(tile_syms, e))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdlo_ir::programs;

    #[test]
    fn program_roundtrips() {
        for p in [
            programs::matmul(),
            programs::tiled_matmul(),
            programs::two_index_unfused(),
            programs::two_index_fused(),
            programs::tiled_two_index(),
        ] {
            let v = program_to_value(&p);
            let text = v.render();
            let q = program_from_value(&crate::json::parse(&text).unwrap()).unwrap();
            // Labels are regenerated, so compare structure via canonical form.
            assert_eq!(
                sdlo_ir::canonicalize(&p).hash,
                sdlo_ir::canonicalize(&q).hash,
                "{}",
                p.name
            );
            assert_eq!(q.validate(), Ok(()));
            assert_eq!(q.name, p.name);
        }
    }

    #[test]
    fn stored_components_roundtrip() {
        for p in [
            programs::matmul(),
            programs::tiled_matmul(),
            programs::two_index_unfused(),
            programs::two_index_fused(),
            programs::tiled_two_index(),
        ] {
            let model = sdlo_core::MissModel::build(&p);
            for c in model.components() {
                let v = stored_component_to_value(c);
                let text = v.render();
                let back =
                    stored_component_from_value(&crate::json::parse(&text).unwrap()).unwrap();
                assert_eq!(back.array, c.array, "{}: {text}", p.name);
                assert_eq!(back.stmt, c.stmt);
                assert_eq!(back.ref_idx, c.ref_idx);
                assert_eq!(back.kind, c.kind);
                assert_eq!(back.count.to_string(), c.count.to_string());
                assert_eq!(
                    format!("{}", back.distance),
                    format!("{}", c.distance),
                    "{}: {text}",
                    p.name
                );
            }
        }
    }

    #[test]
    fn stored_component_decode_rejects_garbage() {
        for bad in [
            r#"{"stmt":0,"ref":0,"reuse":{"kind":"compulsory"},"count":"1","distance":"inf"}"#,
            r#"{"array":0,"stmt":0,"ref":0,"reuse":{"kind":"warp"},"count":"1","distance":"inf"}"#,
            r#"{"array":0,"stmt":0,"ref":0,"reuse":{"kind":"carried"},"count":"1","distance":"inf"}"#,
            r#"{"array":0,"stmt":0,"ref":0,"reuse":{"kind":"compulsory"},"count":"N +","distance":"inf"}"#,
            r#"{"array":0,"stmt":0,"ref":0,"reuse":{"kind":"compulsory"},"count":"1","distance":{"x":1}}"#,
            r#"{"array":-1,"stmt":0,"ref":0,"reuse":{"kind":"compulsory"},"count":"1","distance":"inf"}"#,
        ] {
            let v = crate::json::parse(bad).unwrap();
            assert!(
                matches!(stored_component_from_value(&v), Err(WireError::Schema(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn bindings_roundtrip() {
        let b = Bindings::new()
            .with("N", 512)
            .with("Ti", 64)
            .with("neg", -3);
        let v = bindings_to_value(&b);
        let b2 = bindings_from_value(&crate::json::parse(&v.render()).unwrap()).unwrap();
        assert_eq!(b2.get(&Sym::new("N")), Some(512));
        assert_eq!(b2.get(&Sym::new("Ti")), Some(64));
        assert_eq!(b2.get(&Sym::new("neg")), Some(-3));
    }

    #[test]
    fn diagnostic_encodes_span_and_fixit() {
        let p = programs::matmul();
        let diags = sdlo_analysis::lint(&p);
        let d = diags
            .iter()
            .find(|d| d.rule == "untiled-reuse")
            .expect("matmul has untiled reuse");
        let v = diagnostic_to_value(d);
        assert_eq!(v.get("rule").unwrap().as_str(), Some("untiled-reuse"));
        assert_eq!(v.get("severity").unwrap().as_str(), Some("warning"));
        assert!(v.get("span").unwrap().get("loop").is_some());
        let fx = v.get("fixit").unwrap();
        assert_eq!(fx.get("action").unwrap().as_str(), Some("tile-loop"));
        // The document renders and re-parses.
        let text = v.render();
        assert!(crate::json::parse(&text).is_ok(), "{text}");
    }

    #[test]
    fn undeclared_array_is_schema_error() {
        let mut v = program_to_value(&programs::matmul());
        // Drop the declarations, keep the nest.
        if let Value::Object(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "arrays" {
                    *val = Value::Array(vec![]);
                }
            }
        }
        assert!(matches!(program_from_value(&v), Err(WireError::Schema(_))));
    }

    #[test]
    fn bad_expression_reports_context() {
        let v =
            crate::json::parse(r#"{"name":"x","arrays":[{"name":"A","dims":["N +"]}],"nest":[]}"#)
                .unwrap();
        let err = program_from_value(&v).unwrap_err();
        assert!(err.to_string().contains("extent"), "{err}");
    }

    #[test]
    fn invalid_program_fails_validation() {
        // A reference using an index with no enclosing loop.
        let v = crate::json::parse(
            r#"{"name":"x","arrays":[{"name":"A","dims":["N"]}],
                "nest":[{"stmt":{"kind":"zero",
                         "refs":[{"array":"A","write":true,
                                  "dims":[[{"index":"i"}]]}]}}]}"#,
        )
        .unwrap();
        assert!(matches!(
            program_from_value(&v),
            Err(WireError::Validate(_))
        ));
    }
}
