//! Implementations of every paper experiment (Tables 1–4, Figures 10–11)
//! and the ablations.

use sdlo_cachesim::{simulate_stack_distances, Granularity, SetAssocCache};
use sdlo_core::MissModel;
use sdlo_ir::{programs, Bindings, CompiledProgram, Program};
use sdlo_parallel::{kernels, LimitModel, MachineParams, SmpAnalysis};
use sdlo_tilesearch::{SearchSpace, TileSearcher};

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's configuration (hundreds of millions of simulated
    /// accesses — minutes of runtime).
    Paper,
    /// Bounds divided by 4, cache by 16 — seconds of runtime, same
    /// qualitative shape.
    Small,
}

impl Scale {
    fn shrink_bound(self, n: u64) -> u64 {
        match self {
            Scale::Paper => n,
            Scale::Small => n / 4,
        }
    }

    fn shrink_tile(self, t: u64) -> u64 {
        match self {
            Scale::Paper => t,
            Scale::Small => (t / 4).max(4),
        }
    }

    fn shrink_cache(self, c: u64) -> u64 {
        match self {
            Scale::Paper => c,
            Scale::Small => c / 16,
        }
    }
}

fn tmm_bindings(n: (u64, u64, u64), t: (u64, u64, u64)) -> Bindings {
    Bindings::new()
        .with("Ni", n.0 as i128)
        .with("Nj", n.1 as i128)
        .with("Nk", n.2 as i128)
        .with("Ti", t.0 as i128)
        .with("Tj", t.1 as i128)
        .with("Tk", t.2 as i128)
}

fn t2i_bindings(n: (u64, u64, u64, u64), t: (u64, u64, u64, u64)) -> Bindings {
    Bindings::new()
        .with("Ni", n.0 as i128)
        .with("Nj", n.1 as i128)
        .with("Nm", n.2 as i128)
        .with("Nn", n.3 as i128)
        .with("Ti", t.0 as i128)
        .with("Tj", t.1 as i128)
        .with("Tm", t.2 as i128)
        .with("Tn", t.3 as i128)
}

/// Bounds and tile tuple of a two-index configuration.
type Quad = (u64, u64, u64, u64);

/// One predicted-vs-simulated row.
#[derive(Debug, Clone)]
pub struct MissRow {
    /// Human-readable configuration.
    pub config: String,
    /// Cache capacity in elements.
    pub cache: u64,
    /// Model prediction.
    pub predicted: u64,
    /// Exact LRU simulation.
    pub actual: u64,
}

impl MissRow {
    /// Relative error of the prediction.
    pub fn rel_error(&self) -> f64 {
        (self.predicted as f64 - self.actual as f64).abs() / self.actual.max(1) as f64
    }
}

fn miss_row(
    program: &Program,
    model: &MissModel,
    b: &Bindings,
    cache: u64,
    config: String,
) -> MissRow {
    let predicted = model.predict_misses(b, cache).expect("prediction");
    let compiled = CompiledProgram::compile(program, b).expect("compile");
    let actual = simulate_stack_distances(&compiled, Granularity::Element).misses(cache);
    MissRow {
        config,
        cache,
        predicted,
        actual,
    }
}

/// **Table 1**: the symbolic reuse components of tiled matrix
/// multiplication (counts and stack-distance expressions).
pub fn table1() -> String {
    let p = programs::tiled_matmul();
    let model = MissModel::build(&p);
    let mut out = String::new();
    out.push_str("Table 1 — reuse components of tiled matrix multiplication\n");
    out.push_str(&p.render());
    out.push('\n');
    out.push_str(&model.render(&p));
    out
}

/// **Table 2**: predicted vs simulated misses, tiled two-index transform.
///
/// Paper rows: bounds (I,J,M,N), tiles (Ti,Tj,Tm,Tn), cache in KB of
/// doubles. Note: the paper's absolute "actual" numbers come from its own
/// (unpublished) tiled code with tile copying; our validation claim is
/// |predicted − simulated| on *our* Fig. 6 code (see EXPERIMENTS.md).
pub fn table2(scale: Scale) -> Vec<MissRow> {
    let p = programs::tiled_two_index();
    let model = MissModel::build(&p);
    let rows: [(Quad, Quad, u64); 6] = [
        ((256, 256, 256, 256), (128, 64, 64, 128), 32768),
        ((256, 256, 256, 256), (64, 128, 128, 64), 32768),
        ((512, 512, 512, 512), (128, 128, 128, 128), 32768),
        ((256, 256, 256, 256), (64, 64, 64, 128), 8192),
        ((256, 256, 256, 256), (128, 64, 64, 128), 8192),
        ((512, 256, 256, 512), (128, 64, 64, 128), 8192),
    ];
    rows.iter()
        .map(|(n, t, cs)| {
            let n = (
                scale.shrink_bound(n.0),
                scale.shrink_bound(n.1),
                scale.shrink_bound(n.2),
                scale.shrink_bound(n.3),
            );
            let t = (
                scale.shrink_tile(t.0),
                scale.shrink_tile(t.1),
                scale.shrink_tile(t.2),
                scale.shrink_tile(t.3),
            );
            let cs = scale.shrink_cache(*cs);
            miss_row(
                &p,
                &model,
                &t2i_bindings(n, t),
                cs,
                format!("bounds={n:?} tiles={t:?}"),
            )
        })
        .collect()
}

/// **Table 3**: predicted vs simulated misses, tiled matrix multiplication.
///
/// Row 4 uses tiles (64,32,32): the paper prints (32,64,32), which is
/// inconsistent with its own other rows' convention (its own simulated
/// count for the printed tuple would be ~17.5M, not 1.31M).
pub fn table3(scale: Scale) -> Vec<MissRow> {
    let p = programs::tiled_matmul();
    let model = MissModel::build(&p);
    let rows: [(u64, (u64, u64, u64), u64); 6] = [
        (512, (32, 32, 32), 8192),
        (512, (64, 64, 64), 8192),
        (512, (128, 128, 128), 8192),
        (256, (64, 32, 32), 2048),
        (256, (64, 64, 64), 2048),
        (256, (32, 64, 128), 2048),
    ];
    rows.iter()
        .map(|(n, t, cs)| {
            let n = scale.shrink_bound(*n);
            let t = (
                scale.shrink_tile(t.0),
                scale.shrink_tile(t.1),
                scale.shrink_tile(t.2),
            );
            let cs = scale.shrink_cache(*cs);
            miss_row(
                &p,
                &model,
                &tmm_bindings((n, n, n), t),
                cs,
                format!("N={n} tiles={t:?}"),
            )
        })
        .collect()
}

/// One row of Table 4.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Loop bound (0 = unknown).
    pub bound: u64,
    /// Tile tuple chosen by the search.
    pub tiles: Vec<u64>,
}

/// **Table 4**: best tile tuples for the two-index transform at 64 KB, with
/// known loop bounds (several sizes) vs unknown bounds (bounds-free search
/// up to tile 512).
pub fn table4() -> (Table4Row, Vec<Table4Row>) {
    let p = programs::tiled_two_index();
    let model = MissModel::build(&p);
    let cache = 8192; // 64 KB of f64
    let space = |maxv: u64| SearchSpace {
        tile_syms: vec!["Ti".into(), "Tj".into(), "Tm".into(), "Tn".into()],
        max: vec![maxv; 4],
        min: 4,
    };
    let free = TileSearcher::bounds_free(
        &model,
        &["Ni", "Nj", "Nm", "Nn"],
        1 << 14,
        cache,
        space(512),
    );
    let unknown = Table4Row {
        bound: 0,
        tiles: free.best.tiles,
    };
    let known = [32u64, 64, 128, 256, 512, 1024]
        .iter()
        .map(|&n| {
            let base = Bindings::new()
                .with("Ni", n as i128)
                .with("Nj", n as i128)
                .with("Nm", n as i128)
                .with("Nn", n as i128);
            let s = TileSearcher::new(&model, base, cache, space(n.min(512)));
            Table4Row {
                bound: n,
                tiles: s.pruned().best.tiles,
            }
        })
        .collect();
    (unknown, known)
}

/// One series point of Figures 10–11.
#[derive(Debug, Clone)]
pub struct FigPoint {
    /// Processor count.
    pub processors: u64,
    /// Predicted time under the bus-limited model (s).
    pub bus_limited: f64,
    /// Predicted time under the infinite-bandwidth model (s).
    pub infinite_bw: f64,
    /// Measured wall-clock of the real kernel (s), when requested.
    pub measured: Option<f64>,
}

/// One tile configuration's curve.
#[derive(Debug, Clone)]
pub struct FigSeries {
    /// Label, e.g. `"tiles (64,16,16,128)"`.
    pub label: String,
    /// Points for P ∈ {1,2,4,8}.
    pub points: Vec<FigPoint>,
}

/// **Figures 10–11**: two-index transform time vs processor count for
/// equi-sized tiles {32,64,128,256} and the search-predicted tuple.
///
/// The paper measured a Sun Sunfire; this host substitutes the paper's own
/// §7 cost models (both limits) and optionally measures the real rayon
/// kernels (`measure = true`; on a single-CPU host the measured curve shows
/// correctness and work balance, not speedup).
pub fn figure(n: u64, measure: bool) -> Vec<FigSeries> {
    let p = programs::tiled_two_index();
    let model = MissModel::build(&p);
    let cache = 8192u64;
    // Total multiply-adds: both contractions are N³.
    let ops = 2 * n * n * n;
    let smp = SmpAnalysis::new(&model, "Nn", ops);
    let machine = MachineParams::default();

    // Search-predicted best tuple for this bound.
    let space = SearchSpace {
        tile_syms: vec!["Ti".into(), "Tj".into(), "Tm".into(), "Tn".into()],
        max: vec![n.min(512); 4],
        min: 4,
    };
    let base = Bindings::new()
        .with("Ni", n as i128)
        .with("Nj", n as i128)
        .with("Nm", n as i128)
        .with("Nn", n as i128);
    let best = TileSearcher::new(&model, base, cache, space)
        .pruned()
        .best
        .tiles;

    let mut configs: Vec<(String, (u64, u64, u64, u64))> = [32u64, 64, 128, 256]
        .iter()
        .map(|&t| (format!("equi {t}"), (t, t, t, t)))
        .collect();
    configs.push((
        format!(
            "predicted ({},{},{},{})",
            best[0], best[1], best[2], best[3]
        ),
        (best[0], best[1], best[2], best[3]),
    ));

    configs
        .into_iter()
        .map(|(label, tiles)| {
            let b = t2i_bindings((n, n, n, n), tiles);
            let points = [1u64, 2, 4, 8]
                .iter()
                .map(|&procs| {
                    let bus = smp
                        .predicted_time(&b, cache, procs, &machine, LimitModel::BusLimited)
                        .expect("predict");
                    let inf = smp
                        .predicted_time(&b, cache, procs, &machine, LimitModel::InfiniteBandwidth)
                        .expect("predict");
                    let measured = measure.then(|| {
                        let a = kernels::test_matrix(n as usize, 11);
                        let c1 = kernels::test_matrix(n as usize, 12);
                        let c2 = kernels::test_matrix(n as usize, 13);
                        let t0 = std::time::Instant::now();
                        let _ = kernels::tiled_two_index(
                            &a,
                            &c1,
                            &c2,
                            n as usize,
                            (
                                tiles.0 as usize,
                                tiles.1 as usize,
                                tiles.2 as usize,
                                tiles.3 as usize,
                            ),
                            procs as usize,
                        );
                        t0.elapsed().as_secs_f64()
                    });
                    FigPoint {
                        processors: procs,
                        bus_limited: bus,
                        infinite_bw: inf,
                        measured,
                    }
                })
                .collect();
            FigSeries { label, points }
        })
        .collect()
}

/// **Ablation: associativity / tile copying.** The paper copies tiles so a
/// real cache behaves like the fully associative model. Quantify the
/// conflict misses a non-copied layout suffers at realistic
/// associativities.
pub fn ablation_associativity(scale: Scale) -> Vec<(String, u64)> {
    let n = scale.shrink_bound(256);
    let t = scale.shrink_tile(64);
    let cs = scale.shrink_cache(8192);
    let p = programs::tiled_matmul();
    let b = tmm_bindings((n, n, n), (t, t, t));
    let compiled = CompiledProgram::compile(&p, &b).expect("compile");
    let fa = simulate_stack_distances(&compiled, Granularity::Element).misses(cs);
    let mut out = vec![(format!("fully associative ({cs} elems)"), fa)];
    for ways in [1usize, 2, 4, 8] {
        let mut cache = SetAssocCache::new(cs, ways, 1);
        let stats = sdlo_cachesim::simulate_cache(&compiled, &mut cache);
        out.push((format!("{ways}-way, no copying"), stats.misses));
    }
    out
}

/// **Ablation: line granularity.** Element-granularity (the paper's
/// accounting) vs 8-double cache lines.
pub fn ablation_line(scale: Scale) -> Vec<(String, u64, u64)> {
    let n = scale.shrink_bound(256);
    let cs = scale.shrink_cache(8192);
    let p = programs::tiled_matmul();
    [16u64, 32, 64, 128]
        .iter()
        .map(|&t| {
            let t = scale.shrink_tile(t);
            let b = tmm_bindings((n, n, n), (t, t, t));
            let compiled = CompiledProgram::compile(&p, &b).expect("compile");
            let elem = simulate_stack_distances(&compiled, Granularity::Element).misses(cs);
            let line = simulate_stack_distances(&compiled, Granularity::Line(8)).misses(cs / 8);
            (format!("tiles {t}³"), elem, line)
        })
        .collect()
}

/// **Ablation: pruned vs exhaustive tile search.** Same optimum, fewer
/// full miss evaluations.
pub fn ablation_search() -> Vec<(String, usize, usize, bool)> {
    let model = MissModel::build(&programs::tiled_two_index());
    [256u64, 512, 1024]
        .iter()
        .map(|&n| {
            let base = Bindings::new()
                .with("Ni", n as i128)
                .with("Nj", n as i128)
                .with("Nm", n as i128)
                .with("Nn", n as i128);
            let space = SearchSpace {
                tile_syms: vec!["Ti".into(), "Tj".into(), "Tm".into(), "Tn".into()],
                max: vec![n.min(512); 4],
                min: 4,
            };
            let s = TileSearcher::new(&model, base, 8192, space);
            let pr = s.pruned();
            let ex = s.exhaustive();
            (
                format!("N={n}"),
                pr.frontier.len(),
                ex.evaluations,
                pr.best.tiles == ex.best.tiles,
            )
        })
        .collect()
}

/// **Ablation: limit-model bracket.** Width of the bus-limited vs
/// infinite-bandwidth bracket as processors grow.
pub fn ablation_limits(n: u64) -> Vec<(u64, f64, f64)> {
    let p = programs::tiled_two_index();
    let model = MissModel::build(&p);
    let smp = SmpAnalysis::new(&model, "Nn", 2 * n * n * n);
    let machine = MachineParams::default();
    let b = t2i_bindings((n, n, n, n), (64, 16, 16, 64));
    [1u64, 2, 4, 8, 16]
        .iter()
        .map(|&procs| {
            let bus = smp
                .predicted_time(&b, 8192, procs, &machine, LimitModel::BusLimited)
                .expect("predict");
            let inf = smp
                .predicted_time(&b, 8192, procs, &machine, LimitModel::InfiniteBandwidth)
                .expect("predict");
            (procs, bus, inf)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders_nine_components() {
        let t = table1();
        assert_eq!(t.matches("carried by").count(), 6);
        assert_eq!(t.matches("compulsory").count(), 3);
    }

    #[test]
    fn table3_small_scale_is_accurate() {
        for row in table3(Scale::Small) {
            assert!(
                row.rel_error() < 0.05,
                "{}: predicted {} vs actual {}",
                row.config,
                row.predicted,
                row.actual
            );
        }
    }

    #[test]
    fn table2_small_scale_is_accurate() {
        for row in table2(Scale::Small) {
            assert!(
                row.rel_error() < 0.06,
                "{}: predicted {} vs actual {}",
                row.config,
                row.predicted,
                row.actual
            );
        }
    }

    #[test]
    fn table4_unknown_matches_large_known() {
        let (unknown, known) = table4();
        for row in known.iter().filter(|r| r.bound >= 256) {
            assert_eq!(unknown.tiles, row.tiles, "N={}", row.bound);
        }
        // Tiny bounds where everything fits pick the whole problem.
        let tiny = known.iter().find(|r| r.bound == 32).unwrap();
        assert_eq!(tiny.tiles, vec![32, 32, 32, 32]);
    }

    #[test]
    fn figure_predicted_tile_wins_at_every_p() {
        let series = figure(1024, false);
        let predicted = series.last().unwrap();
        assert!(predicted.label.starts_with("predicted"));
        for s in &series[..series.len() - 1] {
            for (a, b) in predicted.points.iter().zip(&s.points) {
                assert!(
                    a.bus_limited <= b.bus_limited,
                    "{}: P={} {} vs {}",
                    s.label,
                    a.processors,
                    a.bus_limited,
                    b.bus_limited
                );
            }
        }
    }

    #[test]
    fn ablation_associativity_shows_conflicts() {
        let rows = ablation_associativity(Scale::Small);
        let fa = rows[0].1;
        let dm = rows[1].1;
        assert!(
            dm > fa,
            "direct-mapped {dm} should exceed fully associative {fa}"
        );
    }
}
