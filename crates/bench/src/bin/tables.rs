//! Regenerate the paper's tables and figures.
//!
//! ```text
//! tables <experiment> [--scale small|paper] [--measure] [--n <bound>]
//!
//! experiments: table1 table2 table3 table4 fig10 fig11
//!              ablation-assoc ablation-line ablation-search ablation-limits
//!              all
//! ```

use sdlo_bench::*;

fn parse_scale(args: &[String]) -> Scale {
    match args.iter().position(|a| a == "--scale") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("small") => Scale::Small,
            Some("paper") | None => Scale::Paper,
            Some(other) => {
                eprintln!("unknown scale `{other}`");
                std::process::exit(2);
            }
        },
        None => Scale::Paper,
    }
}

fn print_miss_rows(title: &str, rows: &[MissRow]) {
    println!("{title}");
    println!(
        "{:<44} {:>10} {:>14} {:>14} {:>8}",
        "config", "cache", "#predicted", "#actual", "err"
    );
    for r in rows {
        println!(
            "{:<44} {:>10} {:>14} {:>14} {:>7.2}%",
            r.config,
            r.cache,
            r.predicted,
            r.actual,
            100.0 * r.rel_error()
        );
    }
    println!();
}

fn run_table2(scale: Scale) {
    print_miss_rows(
        "Table 2 — tiled two-index transform: predicted vs simulated misses",
        &table2(scale),
    );
}

fn run_table3(scale: Scale) {
    print_miss_rows(
        "Table 3 — tiled matrix multiplication: predicted vs simulated misses",
        &table3(scale),
    );
}

fn run_table4() {
    let (unknown, known) = table4();
    println!("Table 4 — best tile sizes, 64 KB cache, two-index transform");
    println!("{:<12} {:<24}", "loop bound", "best tiles (Ti,Tj,Tm,Tn)");
    for row in &known {
        println!("{:<12} {:?}", row.bound, row.tiles);
    }
    println!("{:<12} {:?}", "unknown", unknown.tiles);
    println!();
}

fn run_figure(fig: &str, n: u64, measure: bool) {
    println!(
        "Figure {fig} — two-index transform, loop range {n}: time (s) vs processors"
    );
    let series = figure(n, measure);
    print!("{:<28}", "tiles \\ P");
    for p in [1, 2, 4, 8] {
        print!(" {:>22}", format!("P={p} (bus/inf bw)"));
    }
    println!();
    for s in &series {
        print!("{:<28}", s.label);
        for pt in &s.points {
            let m = match pt.measured {
                Some(t) => format!(" meas {t:.2}"),
                None => String::new(),
            };
            print!(" {:>22}", format!("{:.2}/{:.2}{m}", pt.bus_limited, pt.infinite_bw));
        }
        println!();
    }
    println!();
}

fn run_ablations(scale: Scale) {
    println!("Ablation — associativity / tile copying (tiled MM, 64³ tiles)");
    for (label, misses) in ablation_associativity(scale) {
        println!("  {label:<36} {misses}");
    }
    println!();
    println!("Ablation — element vs 8-double-line granularity (tiled MM)");
    for (label, elem, line) in ablation_line(scale) {
        println!("  {label:<16} element {elem:>12}   line(8) {line:>12}");
    }
    println!();
    println!("Ablation — pruned vs exhaustive tile search (two-index, 64 KB)");
    for (label, frontier, exhaustive, same) in ablation_search() {
        println!(
            "  {label:<8} frontier miss-evals {frontier:>4} vs exhaustive {exhaustive:>5}, same best: {same}"
        );
    }
    println!();
    println!("Ablation — §7 limit-model bracket (N=512, tiles (64,16,16,64))");
    for (p, bus, inf) in ablation_limits(512) {
        println!("  P={p:<3} bus-limited {bus:>8.3}s   infinite-bw {inf:>8.3}s");
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let scale = parse_scale(&args);
    let measure = args.iter().any(|a| a == "--measure");
    let n_override = args
        .iter()
        .position(|a| a == "--n")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok());

    match cmd {
        "table1" => println!("{}", table1()),
        "table2" => run_table2(scale),
        "table3" => run_table3(scale),
        "table4" => run_table4(),
        "fig10" => run_figure("10", n_override.unwrap_or(1024), measure),
        "fig11" => run_figure("11", n_override.unwrap_or(2048), measure),
        "ablations" | "ablation-assoc" | "ablation-line" | "ablation-search"
        | "ablation-limits" => run_ablations(scale),
        "all" => {
            println!("{}", table1());
            run_table2(scale);
            run_table3(scale);
            run_table4();
            run_figure("10", 1024, measure);
            run_figure("11", 2048, measure);
            run_ablations(scale);
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!("usage: tables <table1|table2|table3|table4|fig10|fig11|ablations|all> [--scale small|paper] [--measure] [--n <bound>]");
            std::process::exit(2);
        }
    }
}
