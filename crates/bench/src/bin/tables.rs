//! Regenerate the paper's tables and figures, and lint the builtin workloads.
//!
//! ```text
//! tables <experiment> [--scale small|paper] [--measure] [--n <bound>] [--json]
//! tables lint <program>... | --all-builtins [--apply] [--json]
//! tables deps <program>... | --all-builtins [--dot] [--json]
//! tables profile <program>... | --all-builtins [--trace-out PATH]
//!                [--budget-ms N] [--cache N] [--json]
//! tables trace-merge <input>... [--out PATH] [--json]
//!                [--require-cross-process]
//! tables trace-overhead [--max-ns N]
//!
//! experiments: table1 table2 table3 table4 fig10 fig11 ablations all
//! ```
//!
//! With `--json` the experiment's rows are additionally written to
//! `results/<experiment>.json` for downstream tooling; `lint --json` writes
//! `results/lint.json` and `deps --json` writes `results/deps.json`. `lint`
//! exits 1 if any error-severity diagnostic is reported, which is how
//! `ci.sh` gates the builtin workloads. `lint --apply` auto-applies every
//! *proven* fix-it to a fixpoint and re-lints the rewritten program; `deps`
//! dumps each program's dependence graph as a table (or GraphViz DOT with
//! `--dot`).
//!
//! `trace-merge` joins Chrome-trace exports from several processes (router +
//! backends, each a raw trace document or a saved `debug`/`trace_dump` reply)
//! into one cross-process timeline keyed by `trace_id`; `trace-overhead`
//! measures the disabled-tracing span cost and gates it against a ns/call
//! ceiling.

use sdlo_bench::*;
use sdlo_wire::Value;

fn usage(to_stderr: bool) {
    let text =
        "usage: tables <experiment> [--scale small|paper] [--measure] [--n <bound>] [--json]\n\
         \x20      tables lint <program>... | --all-builtins [--apply] [--json]\n\
         \x20      tables deps <program>... | --all-builtins [--dot] [--json]\n\
         \n\
         experiments: table1 table2 table3 table4 fig10 fig11\n\
         \x20            ablations (aliases: ablation-assoc ablation-line\n\
         \x20            ablation-search ablation-limits) | all\n\
         \n\
         --scale small|paper   problem sizes (default: paper)\n\
         --measure             also run the real kernels for fig10/fig11\n\
         --n <bound>           override the loop bound for fig10/fig11\n\
         --json                also write results/<experiment>.json\n\
         \n\
         lint runs the static analyzer over builtin programs (see\n\
         sdlo-analysis); it exits 1 if any error-severity diagnostic fires.\n\
         --all-builtins        lint every builtin workload\n\
         --apply               auto-apply proven fix-its to a fixpoint,\n\
         \x20                     then re-lint the rewritten program\n\
         \n\
         deps dumps each program's data-dependence graph (sdlo-deps):\n\
         direction vectors, carried-by levels, parallelizable loops.\n\
         --dot                 emit GraphViz DOT instead of the table\n\
         \n\
         profile runs each pipeline phase (model build, prediction, tile\n\
         search, simulator replay) under the trace collector and prints a\n\
         per-phase wall-time/counter table, plus a sequential-vs-parallel\n\
         tile-search speedup line for the tiled builtins.\n\
         \x20 tables profile <program>... | --all-builtins\n\
         \x20         [--trace-out PATH]  Chrome trace JSON (Perfetto-loadable)\n\
         \x20         [--budget-ms N]     exit 1 if model.build, tilesearch.pruned\n\
         \x20                             or cachesim.replay exceeds N ms\n\
         \x20         [--cache N]         cache size in elements (default 8192)\n\
         \x20         [--json]            also write results/profile.json\n\
         \n\
         trace-merge joins per-process Chrome traces into one fleet\n\
         timeline; inputs are raw trace documents or saved trace_dump\n\
         replies (their epoch_unix_micros rebases timestamps).\n\
         \x20 tables trace-merge <input>...\n\
         \x20         [--out PATH]        merged trace (default\n\
         \x20                             results/fleet-trace.json)\n\
         \x20         [--json]            also write results/trace-merge.json\n\
         \x20         [--require-cross-process]  exit 1 unless some trace_id\n\
         \x20                             spans more than one process\n\
         \n\
         trace-overhead measures the disabled-tracing span fast path and\n\
         writes results/trace-overhead.txt.\n\
         \x20 tables trace-overhead [--max-ns N]   gate, ns/call (default 150)";
    if to_stderr {
        eprintln!("{text}");
    } else {
        println!("{text}");
    }
}

struct Options {
    experiment: String,
    scale: Scale,
    measure: bool,
    n_override: Option<u64>,
    json: bool,
}

fn fail(message: &str) -> ! {
    eprintln!("error: {message}\n");
    usage(true);
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> Options {
    let mut experiment: Option<String> = None;
    let mut scale = Scale::Paper;
    let mut measure = false;
    let mut n_override = None;
    let mut json = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().map(String::as_str) {
                Some("small") => scale = Scale::Small,
                Some("paper") => scale = Scale::Paper,
                Some(other) => fail(&format!("unknown scale `{other}`")),
                None => fail("--scale requires a value (small|paper)"),
            },
            "--n" => match it.next() {
                Some(v) => match v.parse::<u64>() {
                    Ok(n) if n > 0 => n_override = Some(n),
                    _ => fail(&format!("--n requires a positive integer, got `{v}`")),
                },
                None => fail("--n requires a value"),
            },
            "--measure" => measure = true,
            "--json" => json = true,
            "--help" | "-h" => {
                usage(false);
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => fail(&format!("unknown flag `{flag}`")),
            positional => {
                if experiment.is_some() {
                    fail(&format!("unexpected argument `{positional}`"));
                }
                experiment = Some(positional.to_string());
            }
        }
    }
    Options {
        experiment: experiment.unwrap_or_else(|| "all".to_string()),
        scale,
        measure,
        n_override,
        json,
    }
}

// ---------------------------------------------------------------------------
// Text renderers
// ---------------------------------------------------------------------------

fn print_miss_rows(title: &str, rows: &[MissRow]) {
    println!("{title}");
    println!(
        "{:<44} {:>10} {:>14} {:>14} {:>8}",
        "config", "cache", "#predicted", "#actual", "err"
    );
    for r in rows {
        println!(
            "{:<44} {:>10} {:>14} {:>14} {:>7.2}%",
            r.config,
            r.cache,
            r.predicted,
            r.actual,
            100.0 * r.rel_error()
        );
    }
    println!();
}

fn print_table4(unknown: &Table4Row, known: &[Table4Row]) {
    println!("Table 4 — best tile sizes, 64 KB cache, two-index transform");
    println!("{:<12} {:<24}", "loop bound", "best tiles (Ti,Tj,Tm,Tn)");
    for row in known {
        println!("{:<12} {:?}", row.bound, row.tiles);
    }
    println!("{:<12} {:?}", "unknown", unknown.tiles);
    println!();
}

fn print_figure(fig: &str, n: u64, series: &[FigSeries]) {
    println!("Figure {fig} — two-index transform, loop range {n}: time (s) vs processors");
    print!("{:<28}", "tiles \\ P");
    for p in [1, 2, 4, 8] {
        print!(" {:>22}", format!("P={p} (bus/inf bw)"));
    }
    println!();
    for s in series {
        print!("{:<28}", s.label);
        for pt in &s.points {
            let m = match pt.measured {
                Some(t) => format!(" meas {t:.2}"),
                None => String::new(),
            };
            print!(
                " {:>22}",
                format!("{:.2}/{:.2}{m}", pt.bus_limited, pt.infinite_bw)
            );
        }
        println!();
    }
    println!();
}

fn print_ablations(
    assoc: &[(String, u64)],
    line: &[(String, u64, u64)],
    search: &[(String, usize, usize, bool)],
    limits: &[(u64, f64, f64)],
) {
    println!("Ablation — associativity / tile copying (tiled MM, 64³ tiles)");
    for (label, misses) in assoc {
        println!("  {label:<36} {misses}");
    }
    println!();
    println!("Ablation — element vs 8-double-line granularity (tiled MM)");
    for (label, elem, ln) in line {
        println!("  {label:<16} element {elem:>12}   line(8) {ln:>12}");
    }
    println!();
    println!("Ablation — pruned vs exhaustive tile search (two-index, 64 KB)");
    for (label, frontier, exhaustive, same) in search {
        println!(
            "  {label:<8} frontier miss-evals {frontier:>4} vs exhaustive {exhaustive:>5}, same best: {same}"
        );
    }
    println!();
    println!("Ablation — §7 limit-model bracket (N=512, tiles (64,16,16,64))");
    for (p, bus, inf) in limits {
        println!("  P={p:<3} bus-limited {bus:>8.3}s   infinite-bw {inf:>8.3}s");
    }
    println!();
}

// ---------------------------------------------------------------------------
// JSON renderers
// ---------------------------------------------------------------------------

fn miss_rows_value(rows: &[MissRow]) -> Value {
    Value::Array(
        rows.iter()
            .map(|r| {
                Value::obj(vec![
                    ("config", Value::from(r.config.as_str())),
                    ("cache", Value::from(r.cache)),
                    ("predicted", Value::from(r.predicted)),
                    ("actual", Value::from(r.actual)),
                    ("rel_error", Value::from(r.rel_error())),
                ])
            })
            .collect(),
    )
}

fn tiles_value(tiles: &[u64]) -> Value {
    Value::Array(tiles.iter().map(|t| Value::from(*t)).collect())
}

fn table4_value(unknown: &Table4Row, known: &[Table4Row]) -> Value {
    Value::obj(vec![
        (
            "known_bounds",
            Value::Array(
                known
                    .iter()
                    .map(|r| {
                        Value::obj(vec![
                            ("bound", Value::from(r.bound)),
                            ("tiles", tiles_value(&r.tiles)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "unknown_bound",
            Value::obj(vec![("tiles", tiles_value(&unknown.tiles))]),
        ),
    ])
}

fn figure_value(n: u64, series: &[FigSeries]) -> Value {
    Value::obj(vec![
        ("n", Value::from(n)),
        (
            "series",
            Value::Array(
                series
                    .iter()
                    .map(|s| {
                        Value::obj(vec![
                            ("label", Value::from(s.label.as_str())),
                            (
                                "points",
                                Value::Array(
                                    s.points
                                        .iter()
                                        .map(|pt| {
                                            Value::obj(vec![
                                                ("processors", Value::from(pt.processors)),
                                                ("bus_limited_s", Value::from(pt.bus_limited)),
                                                ("infinite_bw_s", Value::from(pt.infinite_bw)),
                                                (
                                                    "measured_s",
                                                    pt.measured
                                                        .map(Value::from)
                                                        .unwrap_or(Value::Null),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn ablations_value(
    assoc: &[(String, u64)],
    line: &[(String, u64, u64)],
    search: &[(String, usize, usize, bool)],
    limits: &[(u64, f64, f64)],
) -> Value {
    Value::obj(vec![
        (
            "associativity",
            Value::Array(
                assoc
                    .iter()
                    .map(|(label, misses)| {
                        Value::obj(vec![
                            ("label", Value::from(label.as_str())),
                            ("misses", Value::from(*misses)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "line_granularity",
            Value::Array(
                line.iter()
                    .map(|(label, elem, ln)| {
                        Value::obj(vec![
                            ("label", Value::from(label.as_str())),
                            ("element_misses", Value::from(*elem)),
                            ("line8_misses", Value::from(*ln)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "search",
            Value::Array(
                search
                    .iter()
                    .map(|(label, frontier, exhaustive, same)| {
                        Value::obj(vec![
                            ("label", Value::from(label.as_str())),
                            ("frontier_evals", Value::from(*frontier)),
                            ("exhaustive_evals", Value::from(*exhaustive)),
                            ("same_best", Value::from(*same)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "limits",
            Value::Array(
                limits
                    .iter()
                    .map(|(p, bus, inf)| {
                        Value::obj(vec![
                            ("processors", Value::from(*p)),
                            ("bus_limited_s", Value::from(*bus)),
                            ("infinite_bw_s", Value::from(*inf)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn write_json(experiment: &str, value: &Value) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join(format!("{experiment}.json"));
    if let Err(e) = std::fs::write(&path, value.render() + "\n") {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", path.display());
}

// ---------------------------------------------------------------------------
// Experiment drivers: run once, render to text, optionally to JSON.
// ---------------------------------------------------------------------------

fn run_table1(json: bool) -> Option<Value> {
    let text = table1();
    println!("{text}");
    json.then(|| Value::obj(vec![("text", Value::from(text))]))
}

fn run_table2(scale: Scale, json: bool) -> Option<Value> {
    let rows = table2(scale);
    print_miss_rows(
        "Table 2 — tiled two-index transform: predicted vs simulated misses",
        &rows,
    );
    json.then(|| miss_rows_value(&rows))
}

fn run_table3(scale: Scale, json: bool) -> Option<Value> {
    let rows = table3(scale);
    print_miss_rows(
        "Table 3 — tiled matrix multiplication: predicted vs simulated misses",
        &rows,
    );
    json.then(|| miss_rows_value(&rows))
}

fn run_table4(json: bool) -> Option<Value> {
    let (unknown, known) = table4();
    print_table4(&unknown, &known);
    json.then(|| table4_value(&unknown, &known))
}

fn run_figure(fig: &str, n: u64, measure: bool, json: bool) -> Option<Value> {
    let series = figure(n, measure);
    print_figure(fig, n, &series);
    json.then(|| figure_value(n, &series))
}

fn run_ablations(scale: Scale, json: bool) -> Option<Value> {
    let assoc = ablation_associativity(scale);
    let line = ablation_line(scale);
    let search = ablation_search();
    let limits = ablation_limits(512);
    print_ablations(&assoc, &line, &search, &limits);
    json.then(|| ablations_value(&assoc, &line, &search, &limits))
}

// ---------------------------------------------------------------------------
// `tables lint` — static diagnostics over the builtin workloads
// ---------------------------------------------------------------------------

/// Apply every *proven* fix-it of `program` to a fixpoint: re-lint after
/// each application (statement numbering and segments change under the
/// rewrite) until no proven applicable fix-it remains. Returns the rewritten
/// program and the applied fix-it details, newest last.
fn apply_proven_fixits(program: &sdlo_ir::Program) -> (sdlo_ir::Program, Vec<String>) {
    use sdlo_analysis::{lint, Legality};
    let mut current = program.clone();
    let mut applied = Vec::new();
    // A cap, not a loop bound: each application removes the diagnostic that
    // proposed it, so builtins converge in one or two rounds.
    for _ in 0..16 {
        let next = lint(&current).into_iter().find_map(|d| {
            d.fixit.and_then(|fx| {
                (fx.legality == Legality::Proven)
                    .then_some(fx)
                    .and_then(|fx| fx.target.map(|t| (fx.detail, t)))
            })
        });
        let Some((detail, target)) = next else { break };
        match target.apply(&current) {
            Ok(rewritten) => {
                applied.push(detail);
                current = rewritten;
            }
            Err(e) => fail(&format!(
                "proven fix-it failed to apply on `{}`: {e} ({detail})",
                program.name
            )),
        }
    }
    (current, applied)
}

/// Run the linter over the named builtins. Exits 2 on usage errors, 1 if any
/// error-severity diagnostic fires (the `ci.sh` gate), 0 otherwise. With
/// `--apply`, proven fix-its are auto-applied first and the *rewritten*
/// program is what gets reported and gated.
fn run_lint(args: &[String]) -> ! {
    use sdlo_analysis::{lint, render_report, SeverityCounts};
    use sdlo_ir::programs::{builtin, BUILTIN_NAMES};

    let mut names: Vec<String> = Vec::new();
    let mut json = false;
    let mut apply = false;
    for arg in args {
        match arg.as_str() {
            "--all-builtins" => names.extend(BUILTIN_NAMES.iter().map(|n| n.to_string())),
            "--json" => json = true,
            "--apply" => apply = true,
            "--help" | "-h" => {
                usage(false);
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => fail(&format!("unknown flag `{flag}`")),
            positional => names.push(positional.to_string()),
        }
    }
    if names.is_empty() {
        fail("lint requires at least one program name or --all-builtins");
    }

    let mut total = SeverityCounts::default();
    let mut report = Vec::new();
    for name in &names {
        let program = builtin(name).unwrap_or_else(|| {
            fail(&format!(
                "unknown builtin program `{name}` (expected one of {})",
                BUILTIN_NAMES.join(", ")
            ))
        });
        let (program, applied) = if apply {
            apply_proven_fixits(&program)
        } else {
            (program, Vec::new())
        };
        let diags = lint(&program);
        let counts = SeverityCounts::of(&diags);
        total.errors += counts.errors;
        total.warnings += counts.warnings;
        total.infos += counts.infos;
        println!("== {name} ==");
        for detail in &applied {
            println!("{name}: applied: {detail}");
        }
        if !applied.is_empty() {
            println!("{name}: rewritten program:\n{}", program.render());
        }
        println!("{}", render_report(&program, &diags));
        let mut fields = vec![
            (
                "diagnostics",
                Value::Array(diags.iter().map(sdlo_wire::diagnostic_to_value).collect()),
            ),
            (
                "summary",
                Value::obj(vec![
                    ("error", Value::from(counts.errors)),
                    ("warning", Value::from(counts.warnings)),
                    ("info", Value::from(counts.infos)),
                ]),
            ),
        ];
        if apply {
            fields.push((
                "applied",
                Value::Array(applied.iter().map(|d| Value::from(d.as_str())).collect()),
            ));
        }
        report.push((name.to_string(), Value::obj(fields)));
    }
    if json {
        write_json("lint", &Value::Object(report));
    }
    println!(
        "lint: {} program(s), {} error(s), {} warning(s), {} info(s)",
        names.len(),
        total.errors,
        total.warnings,
        total.infos
    );
    std::process::exit(if total.errors > 0 { 1 } else { 0 });
}

// ---------------------------------------------------------------------------
// `tables deps` — dependence graphs of the builtin workloads
// ---------------------------------------------------------------------------

/// Dump the data-dependence graph of the named builtins as a table (default)
/// or GraphViz DOT (`--dot`); `--json` writes `results/deps.json`.
fn run_deps(args: &[String]) -> ! {
    use sdlo_ir::programs::{builtin, BUILTIN_NAMES};

    let mut names: Vec<String> = Vec::new();
    let mut json = false;
    let mut dot = false;
    for arg in args {
        match arg.as_str() {
            "--all-builtins" => names.extend(BUILTIN_NAMES.iter().map(|n| n.to_string())),
            "--json" => json = true,
            "--dot" => dot = true,
            "--help" | "-h" => {
                usage(false);
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => fail(&format!("unknown flag `{flag}`")),
            positional => names.push(positional.to_string()),
        }
    }
    if names.is_empty() {
        fail("deps requires at least one program name or --all-builtins");
    }

    let mut report = Vec::new();
    for name in &names {
        let program = builtin(name).unwrap_or_else(|| {
            fail(&format!(
                "unknown builtin program `{name}` (expected one of {})",
                BUILTIN_NAMES.join(", ")
            ))
        });
        let graph = sdlo_deps::analyze(&program);
        if dot {
            println!("{}", graph.to_dot(name));
        } else {
            println!("== {name} ==");
            println!("{}", graph.render_table());
        }
        let deps = graph
            .deps
            .iter()
            .map(|d| {
                Value::obj(vec![
                    ("kind", Value::from(d.kind.name())),
                    ("array", Value::from(d.array.name())),
                    (
                        "src",
                        Value::obj(vec![
                            ("stmt", Value::from(d.src.stmt.0)),
                            ("ref", Value::from(d.src.ref_idx)),
                        ]),
                    ),
                    (
                        "dst",
                        Value::obj(vec![
                            ("stmt", Value::from(d.dst.stmt.0)),
                            ("ref", Value::from(d.dst.ref_idx)),
                        ]),
                    ),
                    (
                        "loops",
                        Value::Array(d.loops.iter().map(|l| Value::from(l.name())).collect()),
                    ),
                    ("vector", Value::from(d.vector_string())),
                    ("loop_independent", Value::from(d.loop_independent)),
                    ("precise", Value::from(d.precise)),
                ])
            })
            .collect();
        report.push((
            name.to_string(),
            Value::obj(vec![
                ("deps", Value::Array(deps)),
                ("summary", sdlo_wire::dep_summary_to_value(&graph.summary())),
            ]),
        ));
    }
    if json {
        write_json("deps", &Value::Object(report));
    }
    std::process::exit(0);
}

// ---------------------------------------------------------------------------
// `tables profile` — phase profiling with Chrome trace export
// ---------------------------------------------------------------------------

/// Profile the named builtins (model build, prediction, tile search,
/// simulator replay) under the trace collector. Prints a per-phase
/// wall-time/counter table; `--trace-out` additionally writes a Chrome
/// trace-event JSON loadable in Perfetto. Exits 1 if `--budget-ms` is set
/// and any builtin's `model.build` span exceeds it.
/// Pipeline phases gated by `--budget-ms`: each must individually stay
/// inside the budget for every profiled builtin.
const GATED_PHASES: [&str; 3] = ["model.build", "tilesearch.pruned", "cachesim.replay"];

fn run_profile(args: &[String]) -> ! {
    use sdlo_bench::profile::{chrome_trace, profile_builtin, resolve_name, ProfileOptions};
    use sdlo_ir::programs::BUILTIN_NAMES;

    let mut names: Vec<String> = Vec::new();
    let mut trace_out: Option<String> = None;
    let mut budget_ms: Option<u64> = None;
    let mut json = false;
    let mut opts = ProfileOptions::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all-builtins" => names.extend(BUILTIN_NAMES.iter().map(|n| n.to_string())),
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p.clone()),
                None => fail("--trace-out requires a path"),
            },
            "--budget-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => budget_ms = Some(n),
                _ => fail("--budget-ms requires a positive integer"),
            },
            "--cache" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => opts.cache = n,
                _ => fail("--cache requires a positive integer (elements)"),
            },
            "--json" => json = true,
            "--help" | "-h" => {
                usage(false);
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => fail(&format!("unknown flag `{flag}`")),
            positional => names.push(positional.to_string()),
        }
    }
    if names.is_empty() {
        fail("profile requires at least one program name or --all-builtins");
    }

    let mut reports = Vec::new();
    let mut over_budget = false;
    for name in &names {
        let report = profile_builtin(name, &opts).unwrap_or_else(|| {
            fail(&format!(
                "unknown builtin program `{name}` (expected one of {}, or two_index_tiled)",
                BUILTIN_NAMES.join(", ")
            ))
        });
        debug_assert_eq!(Some(report.program.as_str()), resolve_name(name));
        println!("== {} ==", report.program);
        println!(
            "{:<24} {:>6} {:>12}   counters",
            "phase", "calls", "total µs"
        );
        for p in &report.phases {
            let counters = p
                .counters
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            println!(
                "{:<24} {:>6} {:>12}   {}",
                p.name, p.calls, p.total_micros, counters
            );
        }
        if let Some(s) = &report.search {
            println!(
                "search speedup: sequential {} µs, parallel {} µs on {} worker(s), \
                 {:.2}x, identical best: {}",
                s.sequential_micros,
                s.parallel_micros,
                s.workers,
                s.speedup(),
                s.identical
            );
        }
        println!();
        if let Some(budget) = budget_ms {
            // Every pipeline stage is gated, not just the model build: a
            // search or replay regression must fail CI the same way. A
            // stage a builtin never runs (untiled builtins have no tile
            // search) sums to zero and trivially passes.
            for phase in GATED_PHASES {
                let micros: u64 = report
                    .phases
                    .iter()
                    .filter(|p| p.name == phase)
                    .map(|p| p.total_micros)
                    .sum();
                if micros > budget * 1000 {
                    eprintln!(
                        "error: {}: {phase} took {micros} µs, budget is {budget} ms",
                        report.program
                    );
                    over_budget = true;
                }
            }
        }
        reports.push(report);
    }

    if let Some(path) = &trace_out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("error: cannot create {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
        if let Err(e) = std::fs::write(path, chrome_trace(&reports)) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    if json {
        let doc = Value::Object(
            reports
                .iter()
                .map(|r| {
                    (
                        r.program.clone(),
                        Value::obj(vec![
                            (
                                "phases",
                                Value::Array(
                                    r.phases
                                        .iter()
                                        .map(|p| {
                                            Value::obj(vec![
                                                ("name", Value::from(p.name.as_str())),
                                                ("calls", Value::from(p.calls)),
                                                ("total_micros", Value::from(p.total_micros)),
                                                (
                                                    "counters",
                                                    Value::Object(
                                                        p.counters
                                                            .iter()
                                                            .map(|(k, v)| {
                                                                (k.clone(), Value::from(*v))
                                                            })
                                                            .collect(),
                                                    ),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                            (
                                "search_speedup",
                                r.search
                                    .as_ref()
                                    .map(|s| {
                                        Value::obj(vec![
                                            ("workers", Value::from(s.workers as u64)),
                                            ("sequential_micros", Value::from(s.sequential_micros)),
                                            ("parallel_micros", Value::from(s.parallel_micros)),
                                            ("speedup", Value::from(s.speedup())),
                                            ("identical_best", Value::from(s.identical)),
                                        ])
                                    })
                                    .unwrap_or(Value::Null),
                            ),
                            (
                                "budgets",
                                budget_ms
                                    .map(|budget| {
                                        Value::obj(vec![
                                            ("budget_ms", Value::from(budget)),
                                            (
                                                "phases",
                                                Value::Object(
                                                    GATED_PHASES
                                                        .iter()
                                                        .map(|phase| {
                                                            let micros: u64 = r
                                                                .phases
                                                                .iter()
                                                                .filter(|p| p.name == *phase)
                                                                .map(|p| p.total_micros)
                                                                .sum();
                                                            (
                                                                phase.to_string(),
                                                                Value::obj(vec![
                                                                    (
                                                                        "total_micros",
                                                                        Value::from(micros),
                                                                    ),
                                                                    (
                                                                        "within_budget",
                                                                        Value::from(
                                                                            micros <= budget * 1000,
                                                                        ),
                                                                    ),
                                                                ]),
                                                            )
                                                        })
                                                        .collect(),
                                                ),
                                            ),
                                        ])
                                    })
                                    .unwrap_or(Value::Null),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        write_json("profile", &doc);
    }
    std::process::exit(if over_budget { 1 } else { 0 });
}

// ---------------------------------------------------------------------------
// `tables trace-merge` — one fleet timeline from per-process Chrome traces
// ---------------------------------------------------------------------------

/// One parsed input: its label (file stem), its trace events, and the unix
/// epoch its timestamps are relative to (0 when the input did not carry one).
struct TraceInput {
    label: String,
    events: Vec<Value>,
    epoch_unix_micros: u64,
}

/// Accept either a raw Chrome trace document (`{"traceEvents":[…]}`) or a
/// saved `debug`/`trace_dump` reply envelope, whose `chrome` field holds the
/// document as a string and whose `epoch_unix_micros` anchors its clock.
fn load_trace_input(path: &str) -> TraceInput {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read `{path}`: {e}")));
    let doc = sdlo_wire::parse(text.trim())
        .unwrap_or_else(|e| fail(&format!("`{path}` is not valid JSON: {e}")));
    let (doc, epoch) = match doc.get("chrome").and_then(Value::as_str) {
        Some(inner) => {
            let epoch = doc
                .get("epoch_unix_micros")
                .and_then(Value::as_u64)
                .unwrap_or(0);
            let inner = sdlo_wire::parse(inner)
                .unwrap_or_else(|e| fail(&format!("`{path}`: chrome field is not JSON: {e}")));
            (inner, epoch)
        }
        None => {
            let epoch = doc
                .get("epoch_unix_micros")
                .and_then(Value::as_u64)
                .unwrap_or(0);
            (doc, epoch)
        }
    };
    let events = match doc.get("traceEvents") {
        Some(Value::Array(events)) => events.clone(),
        _ => fail(&format!("`{path}` has no traceEvents array")),
    };
    let label = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string());
    TraceInput {
        label,
        events,
        epoch_unix_micros: epoch,
    }
}

fn event_ts(event: &Value) -> u64 {
    match event.get("ts") {
        Some(v) => v
            .as_u64()
            .or_else(|| v.as_f64().map(|f| f.max(0.0) as u64))
            .unwrap_or(0),
        None => 0,
    }
}

/// The event with its `pid` replaced and its `ts` shifted onto the shared
/// fleet clock; every other field passes through untouched.
fn rebased_event(event: &Value, pid: u64, shift: u64) -> Value {
    let Value::Object(fields) = event else {
        return event.clone();
    };
    let mut out: Vec<(String, Value)> = Vec::with_capacity(fields.len() + 1);
    let mut saw_pid = false;
    for (k, v) in fields {
        match k.as_str() {
            "pid" => {
                saw_pid = true;
                out.push((k.clone(), Value::from(pid)));
            }
            "ts" => out.push((k.clone(), Value::from(event_ts(event) + shift))),
            _ => out.push((k.clone(), v.clone())),
        }
    }
    if !saw_pid {
        out.push(("pid".to_string(), Value::from(pid)));
    }
    Value::Object(out)
}

/// Merge per-process Chrome traces into one timeline: each input becomes one
/// pid (named after its file), timestamps are rebased onto the earliest
/// input's epoch, and trace ids are joined across processes. Exits 1 under
/// `--require-cross-process` when no trace_id spans more than one process —
/// the fleet-smoke gate that proves router→backend propagation end to end.
fn run_trace_merge(args: &[String]) -> ! {
    let mut inputs: Vec<String> = Vec::new();
    let mut out_path = "results/fleet-trace.json".to_string();
    let mut json = false;
    let mut require_cross = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => fail("--out requires a path"),
            },
            "--json" => json = true,
            "--require-cross-process" => require_cross = true,
            "--help" | "-h" => {
                usage(false);
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => fail(&format!("unknown flag `{flag}`")),
            positional => inputs.push(positional.to_string()),
        }
    }
    if inputs.is_empty() {
        fail("trace-merge requires at least one input trace");
    }

    let inputs: Vec<TraceInput> = inputs.iter().map(|p| load_trace_input(p)).collect();
    // Rebase onto the earliest anchored clock; inputs without an epoch stay
    // unshifted (their spans were already relative to process start).
    let min_epoch = inputs
        .iter()
        .map(|i| i.epoch_unix_micros)
        .filter(|e| *e > 0)
        .min()
        .unwrap_or(0);
    let mut merged: Vec<Value> = Vec::new();
    for (i, input) in inputs.iter().enumerate() {
        let pid = i as u64 + 1;
        let shift = if input.epoch_unix_micros > 0 {
            input.epoch_unix_micros - min_epoch
        } else {
            0
        };
        merged.push(Value::obj(vec![
            ("name", Value::from("process_name")),
            ("ph", Value::from("M")),
            ("pid", Value::from(pid)),
            ("tid", Value::from(0u64)),
            (
                "args",
                Value::obj(vec![("name", Value::from(input.label.as_str()))]),
            ),
        ]));
        for event in &input.events {
            merged.push(rebased_event(event, pid, shift));
        }
    }
    merged.sort_by_key(event_ts);

    // Join: which processes saw each trace_id (span-begin args carry it).
    let mut trace_pids: std::collections::BTreeMap<String, std::collections::BTreeSet<u64>> =
        std::collections::BTreeMap::new();
    for event in &merged {
        if event.get("ph").and_then(Value::as_str) != Some("B") {
            continue;
        }
        let Some(trace_id) = event.path(&["args", "trace_id"]).and_then(Value::as_str) else {
            continue;
        };
        let pid = event.get("pid").and_then(Value::as_u64).unwrap_or(0);
        trace_pids
            .entry(trace_id.to_string())
            .or_default()
            .insert(pid);
    }
    let cross_process = trace_pids.values().filter(|pids| pids.len() > 1).count();

    let doc = Value::obj(vec![
        ("displayTimeUnit", Value::from("ms")),
        ("traceEvents", Value::Array(merged)),
    ]);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(&out_path, doc.render() + "\n") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    let events: usize = inputs.iter().map(|i| i.events.len()).sum();
    println!(
        "trace-merge: {} process(es), {events} event(s), {} trace id(s), {cross_process} cross-process — wrote {out_path}",
        inputs.len(),
        trace_pids.len(),
    );
    if json {
        write_json(
            "trace-merge",
            &Value::obj(vec![
                ("processes", Value::from(inputs.len() as u64)),
                ("events", Value::from(events as u64)),
                ("trace_ids", Value::from(trace_pids.len() as u64)),
                ("cross_process_traces", Value::from(cross_process as u64)),
                ("out", Value::from(out_path.as_str())),
            ]),
        );
    }
    if require_cross && cross_process == 0 {
        eprintln!("error: no trace_id spans more than one process");
        std::process::exit(1);
    }
    std::process::exit(0);
}

// ---------------------------------------------------------------------------
// `tables trace-overhead` — disabled-tracing fast-path gate
// ---------------------------------------------------------------------------

/// Measure what a span costs when no collector is installed — the price
/// every request pays for always-compiled tracing — and gate it against a
/// ns/call ceiling. Writes `results/trace-overhead.txt`.
fn run_trace_overhead(args: &[String]) -> ! {
    let mut max_ns: f64 = 150.0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-ns" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(n)) if n > 0.0 => max_ns = n,
                _ => fail("--max-ns requires a positive number"),
            },
            "--help" | "-h" => {
                usage(false);
                std::process::exit(0);
            }
            flag => fail(&format!("unknown argument `{flag}`")),
        }
    }
    assert!(
        !sdlo_trace::enabled(),
        "trace-overhead must run without a collector installed"
    );
    const ITERS: u64 = 4_000_000;
    // Baseline: the identical loop minus the span, so the subtraction
    // isolates span creation + drop on the disabled path. One warm-up round
    // keeps the first measurement off cold caches.
    let time_loop = |with_span: bool| {
        let start = std::time::Instant::now();
        for i in 0..ITERS {
            if with_span {
                let span = sdlo_trace::span("bench.overhead");
                std::hint::black_box(i);
                drop(span);
            } else {
                std::hint::black_box(i);
            }
        }
        start.elapsed()
    };
    let _ = time_loop(true);
    let baseline = time_loop(false);
    let spans = time_loop(true);
    let per_call_ns = spans.saturating_sub(baseline).as_nanos() as f64 / ITERS as f64;
    let report = format!(
        "disabled-tracing span overhead: {per_call_ns:.2} ns/call \
         (span loop {:.1} ms, baseline {:.1} ms, {ITERS} iterations, gate {max_ns:.0} ns)\n",
        spans.as_secs_f64() * 1e3,
        baseline.as_secs_f64() * 1e3,
    );
    print!("{report}");
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("trace-overhead.txt");
    if let Err(e) = std::fs::write(&path, &report) {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", path.display());
    if per_call_ns > max_ns {
        eprintln!(
            "error: disabled-span overhead {per_call_ns:.2} ns/call exceeds gate {max_ns:.0} ns"
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("lint") {
        run_lint(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("deps") {
        run_deps(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("profile") {
        run_profile(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace-merge") {
        run_trace_merge(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace-overhead") {
        run_trace_overhead(&args[1..]);
    }
    let opts = parse_args(&args);
    let Options {
        scale,
        measure,
        n_override,
        json,
        ..
    } = opts;

    let emit = |value: Option<Value>| {
        if let Some(v) = value {
            write_json(&opts.experiment, &v);
        }
    };
    match opts.experiment.as_str() {
        "table1" => emit(run_table1(json)),
        "table2" => emit(run_table2(scale, json)),
        "table3" => emit(run_table3(scale, json)),
        "table4" => emit(run_table4(json)),
        "fig10" => emit(run_figure("10", n_override.unwrap_or(1024), measure, json)),
        "fig11" => emit(run_figure("11", n_override.unwrap_or(2048), measure, json)),
        "ablations" | "ablation-assoc" | "ablation-line" | "ablation-search"
        | "ablation-limits" => emit(run_ablations(scale, json)),
        "all" => {
            let parts = vec![
                ("table1", run_table1(json)),
                ("table2", run_table2(scale, json)),
                ("table3", run_table3(scale, json)),
                ("table4", run_table4(json)),
                (
                    "fig10",
                    run_figure("10", n_override.unwrap_or(1024), measure, json),
                ),
                (
                    "fig11",
                    run_figure("11", n_override.unwrap_or(2048), measure, json),
                ),
                ("ablations", run_ablations(scale, json)),
            ];
            if json {
                let all = parts
                    .into_iter()
                    .filter_map(|(name, v)| v.map(|v| (name.to_string(), v)))
                    .collect();
                write_json("all", &Value::Object(all));
            }
        }
        other => fail(&format!("unknown experiment `{other}`")),
    }
}
