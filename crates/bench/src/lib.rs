//! # sdlo-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (see `DESIGN.md` §3 for the experiment index), plus the
//! ablations. The heavy lifting lives in library functions here so both the
//! `tables` binary and the criterion benches share one implementation.

pub mod experiments;
pub mod profile;

pub use experiments::*;
