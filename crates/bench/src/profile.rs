//! Phase profiling over the builtin workloads: run each pipeline stage
//! (model build → prediction → tile search → simulator replay) under the
//! [`sdlo_trace`] collector and report per-phase wall time and counters,
//! plus a Chrome trace-event document loadable in Perfetto / `chrome://tracing`.
//!
//! Used by `tables profile`; kept in the library so tests can drive it
//! without spawning the binary.

use rayon::ThreadPoolBuilder;
use sdlo_cachesim::{simulate_stack_distances, Granularity};
use sdlo_core::MissModel;
use sdlo_ir::programs::{builtin, BUILTIN_NAMES};
use sdlo_ir::{Bindings, CompiledProgram};
use sdlo_tilesearch::{SearchSpace, TileSearcher};
use sdlo_trace::{MemoryCollector, PhaseSummary, Record};
use std::time::Instant;

/// Knobs for one profiling run.
#[derive(Debug, Clone)]
pub struct ProfileOptions {
    /// Loop bound bound to every `N*` symbol.
    pub bound: i128,
    /// Tile size bound to every `T*` symbol (prediction and replay).
    pub tile: i128,
    /// Cache size in elements for prediction and the tile search.
    pub cache: u64,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            bound: 32,
            tile: 8,
            cache: 8192,
        }
    }
}

/// Sequential-vs-parallel timing of the pruned tile search for one builtin,
/// measured outside the trace collector so the phase table stays clean.
#[derive(Debug, Clone)]
pub struct SearchSpeedup {
    /// Workers the parallel run had available (`rayon::current_num_threads`).
    pub workers: usize,
    /// Wall time of the search on a 1-thread installed pool.
    pub sequential_micros: u64,
    /// Wall time of the search on the default pool.
    pub parallel_micros: u64,
    /// Whether both runs returned byte-identical outcomes (they must).
    pub identical: bool,
}

impl SearchSpeedup {
    /// Sequential time over parallel time; > 1 means the parallel run won.
    pub fn speedup(&self) -> f64 {
        self.sequential_micros as f64 / (self.parallel_micros.max(1)) as f64
    }
}

/// One profiled builtin: its per-phase summary plus the raw trace records.
pub struct ProfileReport {
    pub program: String,
    pub phases: Vec<PhaseSummary>,
    pub records: Vec<Record>,
    /// Present for tiled builtins (the untiled ones run no search).
    pub search: Option<SearchSpeedup>,
}

/// Accept the canonical builtin names plus the loop-order spelling
/// `two_index_tiled` for `tiled_two_index`.
pub fn resolve_name(name: &str) -> Option<&'static str> {
    if name == "two_index_tiled" {
        return Some("tiled_two_index");
    }
    BUILTIN_NAMES.iter().copied().find(|n| *n == name)
}

/// Bindings giving every free `N*` symbol `opts.bound` and every `T*`
/// symbol `opts.tile`; other symbols (none among the builtins) get the
/// bound. Returns the bindings plus the tile symbols, which drive the
/// search-space construction.
fn generic_bindings(program: &sdlo_ir::Program, opts: &ProfileOptions) -> (Bindings, Vec<String>) {
    let mut bindings = Bindings::new();
    let mut tile_syms = Vec::new();
    for sym in program.free_symbols() {
        let name = sym.name();
        if name.starts_with('T') {
            bindings = bindings.with(name, opts.tile);
            tile_syms.push(name.to_string());
        } else {
            bindings = bindings.with(name, opts.bound);
        }
    }
    (bindings, tile_syms)
}

/// Profile one builtin: install a fresh collector, run the full pipeline,
/// and return the recorded spans. The collector is process-global, so runs
/// are serialized by construction (the caller iterates).
pub fn profile_builtin(name: &str, opts: &ProfileOptions) -> Option<ProfileReport> {
    let canonical = resolve_name(name)?;
    let program = builtin(canonical).expect("resolved builtin exists");
    let (bindings, tile_syms) = generic_bindings(&program, opts);

    // Search configuration for the tiled builtins (the untiled ones have no
    // tile symbols to search); reused below for the speedup measurement.
    let search_config = (!tile_syms.is_empty()).then(|| {
        let space = SearchSpace {
            max: vec![opts.bound.max(4) as u64; tile_syms.len()],
            tile_syms: tile_syms.clone(),
            min: 4,
        };
        let mut bound_only = Bindings::new();
        for sym in program.free_symbols() {
            if !sym.name().starts_with('T') {
                bound_only = bound_only.with(sym.name(), opts.bound);
            }
        }
        (space, bound_only)
    });

    let collector = MemoryCollector::new();
    sdlo_trace::install(collector.clone());
    let model;
    {
        let run = sdlo_trace::span("profile.run");
        run.attr("program", canonical);

        // Model build: partitioning + component classification + symbolic
        // stack-distance derivation.
        model = MissModel::build(&program);

        // One prediction at the profiled cache size.
        let _ = model.predict_misses(&bindings, opts.cache);

        // Tile search over the tiled builtins.
        if let Some((space, bound_only)) = &search_config {
            let searcher = TileSearcher::new(&model, bound_only.clone(), opts.cache, space.clone());
            let _ = searcher.pruned();
        }

        // Simulator replay at the same configuration.
        if let Ok(compiled) = CompiledProgram::compile(&program, &bindings) {
            let _ = simulate_stack_distances(&compiled, Granularity::Element);
        }
    }
    sdlo_trace::uninstall();

    // Sequential-vs-parallel search timing, after the collector is gone so
    // the extra runs don't pollute the phase table.
    let search = search_config.map(|(space, bound_only)| {
        let searcher = TileSearcher::new(&model, bound_only, opts.cache, space);
        let one = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("1-thread pool");
        let t = Instant::now();
        let seq = one.install(|| searcher.pruned());
        let sequential_micros = t.elapsed().as_micros() as u64;
        let t = Instant::now();
        let par = searcher.pruned();
        let parallel_micros = t.elapsed().as_micros() as u64;
        SearchSpeedup {
            workers: rayon::current_num_threads(),
            sequential_micros,
            parallel_micros,
            identical: seq.best == par.best
                && seq.evaluations == par.evaluations
                && seq.frontier == par.frontier,
        }
    });

    let records = collector.records();
    let phases = sdlo_trace::summarize(&records);
    Some(ProfileReport {
        program: canonical.to_string(),
        phases,
        records,
        search,
    })
}

/// One Chrome trace-event document covering several profiled builtins.
/// Span ids, thread ids and the timestamp epoch are process-global in
/// `sdlo_trace`, so concatenating per-run records is sound.
pub fn chrome_trace(reports: &[ProfileReport]) -> String {
    let all: Vec<Record> = reports.iter().flat_map(|r| r.records.clone()).collect();
    sdlo_trace::chrome::render(&all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_accepts_alias_and_builtins() {
        assert_eq!(resolve_name("two_index_tiled"), Some("tiled_two_index"));
        assert_eq!(resolve_name("matmul"), Some("matmul"));
        assert_eq!(resolve_name("nope"), None);
    }
}
