//! Integration tests for the `tables` binary: strict argument handling,
//! `results/` directory creation for `--json`, and the `lint` subcommand
//! that `ci.sh` uses as a gate.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tables() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tables"))
}

fn run(args: &[&str]) -> Output {
    tables().args(args).output().expect("spawn tables")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A unique scratch directory that does not yet contain `results/`.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tables-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn unknown_experiment_exits_2_with_usage() {
    let out = run(&["no_such_experiment"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown experiment"), "{err}");
    assert!(err.contains("usage: tables"), "{err}");
}

#[test]
fn unknown_flag_exits_2_with_usage() {
    let out = run(&["table1", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown flag"), "{}", stderr(&out));
}

#[test]
fn bad_scale_and_bad_n_exit_2() {
    let out = run(&["table2", "--scale", "huge"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown scale"), "{}", stderr(&out));

    let out = run(&["fig10", "--n", "-3"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("positive integer"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn help_exits_0_and_mentions_lint() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("usage: tables"), "{text}");
    assert!(text.contains("tables lint"), "{text}");
}

#[test]
fn lint_builtin_reports_diagnostics_and_exits_0() {
    let out = run(&["lint", "matmul"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("== matmul =="), "{text}");
    assert!(text.contains("untiled-reuse"), "{text}");
    assert!(text.contains("0 error(s)"), "{text}");
}

#[test]
fn lint_all_builtins_is_error_clean() {
    // The ci.sh gate: every builtin workload must lint clean at error
    // severity, which the binary reports through its exit status.
    let out = run(&["lint", "--all-builtins"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    for name in [
        "matmul",
        "tiled_matmul",
        "two_index_unfused",
        "two_index_fused",
        "tiled_two_index",
    ] {
        assert!(text.contains(&format!("== {name} ==")), "{text}");
    }
    assert!(text.contains("lint: 5 program(s), 0 error(s)"), "{text}");
}

#[test]
fn lint_unknown_program_and_missing_args_exit_2() {
    let out = run(&["lint", "no_such_program"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("unknown builtin program"),
        "{}",
        stderr(&out)
    );

    let out = run(&["lint"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("at least one program"),
        "{}",
        stderr(&out)
    );

    let out = run(&["lint", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn lint_json_creates_results_dir() {
    let dir = scratch("lint-json");
    let out = tables()
        .args(["lint", "matmul", "--json"])
        .current_dir(&dir)
        .output()
        .expect("spawn tables");
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let path = dir.join("results").join("lint.json");
    let body = std::fs::read_to_string(&path).expect("lint.json written");
    assert!(body.contains("\"matmul\""), "{body}");
    assert!(body.contains("untiled-reuse"), "{body}");
    assert!(body.contains("\"summary\""), "{body}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn experiment_json_creates_results_dir() {
    let dir = scratch("table1-json");
    let out = tables()
        .args(["table1", "--json"])
        .current_dir(&dir)
        .output()
        .expect("spawn tables");
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(dir.join("results").join("table1.json").is_file());
    let _ = std::fs::remove_dir_all(&dir);
}
