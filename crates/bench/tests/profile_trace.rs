//! Golden-shape tests for the profiler's Chrome trace export: the document
//! must parse, every Begin must balance an End on the same thread in stack
//! order, timestamps must be monotone per thread, and the expected pipeline
//! phases must all appear. The trace collector is process-global, so tests
//! that install one serialize through a mutex.

use sdlo_bench::profile::{chrome_trace, profile_builtin, ProfileOptions};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

static COLLECTOR_GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    COLLECTOR_GATE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn small() -> ProfileOptions {
    ProfileOptions {
        bound: 16,
        tile: 4,
        cache: 512,
    }
}

#[test]
fn chrome_trace_is_well_formed_and_covers_the_pipeline() {
    let _g = gate();
    let report = profile_builtin("two_index_tiled", &small()).expect("alias resolves");
    assert_eq!(report.program, "tiled_two_index");
    let speedup = report
        .search
        .as_ref()
        .expect("tiled builtin times the search");
    assert!(speedup.identical, "parallel search must match sequential");
    assert!(speedup.workers >= 1);
    let doc = chrome_trace(std::slice::from_ref(&report));
    let v = sdlo_wire::parse(&doc).expect("trace JSON parses");
    let events = v
        .get("traceEvents")
        .expect("traceEvents field")
        .as_array()
        .expect("traceEvents is an array");
    assert!(!events.is_empty());

    // Balanced B/E per thread with stack discipline, monotone timestamps.
    let mut stacks: BTreeMap<i64, Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<i64, i64> = BTreeMap::new();
    let mut names = std::collections::BTreeSet::new();
    for e in events {
        let ph = e.get("ph").unwrap().as_str().unwrap();
        let name = e.get("name").unwrap().as_str().unwrap().to_string();
        let tid = e.get("tid").unwrap().as_i64().unwrap();
        let ts = e.get("ts").unwrap().as_i64().unwrap();
        assert_eq!(e.get("pid").unwrap().as_i64(), Some(1));
        let prev = last_ts.entry(tid).or_insert(ts);
        assert!(
            ts >= *prev,
            "timestamps regress on tid {tid}: {ts} < {prev}"
        );
        *prev = ts;
        match ph {
            "B" => stacks.entry(tid).or_default().push(name.clone()),
            "E" => {
                let top = stacks
                    .entry(tid)
                    .or_default()
                    .pop()
                    .unwrap_or_else(|| panic!("E without matching B for {name}"));
                assert_eq!(top, name, "spans must close innermost-first");
            }
            other => panic!("unexpected phase {other}"),
        }
        names.insert(name);
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }
    for expected in [
        "profile.run",
        "model.build",
        "model.partition",
        "model.stack_distance",
        "tilesearch.pruned",
        "cachesim.replay",
    ] {
        assert!(names.contains(expected), "missing span {expected}");
    }
}

#[test]
fn phase_summary_counts_partition_cells() {
    let _g = gate();
    let report = profile_builtin("matmul", &small()).expect("builtin");
    let partition = report
        .phases
        .iter()
        .find(|p| p.name == "model.partition")
        .expect("partition phase recorded");
    assert_eq!(partition.calls, 1);
    assert!(partition.counters["cells"] > 0);
    // matmul is untiled: no tile symbols, so no tile-search span and no
    // search-speedup measurement.
    assert!(!report
        .phases
        .iter()
        .any(|p| p.name.starts_with("tilesearch")));
    assert!(report.search.is_none());
}

#[test]
fn uninstalled_collector_records_nothing() {
    let _g = gate();
    let collector = sdlo_trace::MemoryCollector::new();
    sdlo_trace::install(collector.clone());
    sdlo_trace::uninstall();
    // Work done while no collector is installed must not reach the old one,
    // and the span path must stay inert.
    assert!(!sdlo_trace::enabled());
    let model = sdlo_core::MissModel::build(&sdlo_ir::programs::matmul());
    assert!(!model.components().is_empty());
    assert!(collector.is_empty());
}
