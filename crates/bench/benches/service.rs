//! Service throughput: memoization is the tentpole claim of `sdlo-service`
//! (analyze once, query many), so this bench measures the same `batch` of
//! predict requests against a cold engine (every shape's model is rebuilt)
//! and a warm one (every shape served from the canonical-hash cache), and
//! verifies the warm path is at least 5× faster.

use criterion::{criterion_group, Criterion};
use sdlo_service::{Engine, EngineConfig};
use std::hint::black_box;
use std::time::Instant;

/// One `batch` request touching every builtin shape once: the cold path has
/// to build five miss models, the warm path answers the same five predicts
/// straight from the canonical-shape cache.
fn batch_line() -> String {
    let n = 512u64;
    let mm = format!(r#""Ni":{n},"Nj":{n},"Nk":{n}"#);
    let ti = format!(r#""Ni":{n},"Nj":{n},"Nm":{n},"Nn":{n}"#);
    let requests = [
        format!(
            r#"{{"op":"predict","id":"mm","program":"matmul","bindings":{{{mm}}},"cache":8192}}"#
        ),
        format!(
            r#"{{"op":"predict","id":"tmm","program":"tiled_matmul","bindings":{{{mm},"Ti":64,"Tj":64,"Tk":64}},"cache":8192}}"#
        ),
        format!(
            r#"{{"op":"predict","id":"unf","program":"two_index_unfused","bindings":{{{ti}}},"cache":8192}}"#
        ),
        format!(
            r#"{{"op":"predict","id":"fus","program":"two_index_fused","bindings":{{{ti}}},"cache":8192}}"#
        ),
        format!(
            r#"{{"op":"predict","id":"tti","program":"tiled_two_index","bindings":{{{ti},"Ti":64,"Tj":16,"Tm":16,"Tn":64}},"cache":8192}}"#
        ),
    ];
    format!(r#"{{"op":"batch","requests":[{}]}}"#, requests.join(","))
}

fn run_batch(engine: &Engine, line: &str) -> String {
    let response = engine.handle_line(line);
    assert!(
        response.contains(r#""ok":true"#) && !response.contains(r#""ok":false"#),
        "batch must succeed: {response}"
    );
    response
}

fn bench_service(c: &mut Criterion) {
    let line = batch_line();
    let mut g = c.benchmark_group("service");
    g.sample_size(10);
    g.bench_function("batch-predict/cold", |b| {
        b.iter(|| {
            // A fresh engine rebuilds both models (partitioning + symbolic
            // stack distances) before any prediction runs.
            let engine = Engine::new(EngineConfig::default());
            black_box(run_batch(&engine, &line))
        });
    });
    g.bench_function("batch-predict/warm", |b| {
        let engine = Engine::new(EngineConfig::default());
        run_batch(&engine, &line); // populate the model cache
        b.iter(|| black_box(run_batch(&engine, &line)));
    });
    g.finish();
}

criterion_group!(benches, bench_service);

/// Median seconds per call over `samples` runs of `f`.
fn median_secs(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    benches();

    // The acceptance check behind the numbers above: warm-cache batch
    // throughput must be at least 5× the cold-cache throughput.
    let line = batch_line();
    let cold = median_secs(7, || {
        let engine = Engine::new(EngineConfig::default());
        black_box(run_batch(&engine, &line));
    });
    let warm_engine = Engine::new(EngineConfig::default());
    run_batch(&warm_engine, &line);
    let warm = median_secs(7, || {
        black_box(run_batch(&warm_engine, &line));
    });
    let speedup = cold / warm;
    println!(
        "service/batch-predict speedup: warm is {speedup:.1}x cold \
         (cold {:.3} ms, warm {:.3} ms)",
        cold * 1e3,
        warm * 1e3
    );
    assert!(
        speedup >= 5.0,
        "memoized batch throughput must be >= 5x cold, measured {speedup:.2}x"
    );
}
