//! Criterion benchmarks, one group per paper experiment plus the machinery
//! they rely on. Inputs are sized so `cargo bench` completes in minutes on
//! one core; the `tables` binary runs the paper-scale configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdlo_bench::{figure, table2, table3, Scale};
use sdlo_cachesim::{simulate_stack_distances, Granularity, StackDistanceEngine};
use sdlo_core::MissModel;
use sdlo_ir::{programs, Bindings, CompiledProgram};
use sdlo_parallel::kernels;
use sdlo_tilesearch::{SearchSpace, TileSearcher};
use std::hint::black_box;

fn bindings_mm(n: i128, t: i128) -> Bindings {
    Bindings::new()
        .with("Ni", n)
        .with("Nj", n)
        .with("Nk", n)
        .with("Ti", t)
        .with("Tj", t)
        .with("Tk", t)
}

/// The model itself: building the symbolic component set and predicting
/// misses (the "compile time" cost the paper's compiler would pay).
fn bench_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("model");
    g.bench_function("build/tiled-matmul", |b| {
        let p = programs::tiled_matmul();
        b.iter(|| MissModel::build(black_box(&p)));
    });
    g.bench_function("build/tiled-two-index", |b| {
        let p = programs::tiled_two_index();
        b.iter(|| MissModel::build(black_box(&p)));
    });
    g.bench_function("predict/tiled-two-index", |b| {
        let p = programs::tiled_two_index();
        let model = MissModel::build(&p);
        let bind = Bindings::new()
            .with("Ni", 256)
            .with("Nj", 256)
            .with("Nm", 256)
            .with("Nn", 256)
            .with("Ti", 64)
            .with("Tj", 16)
            .with("Tm", 16)
            .with("Tn", 64);
        b.iter(|| {
            model
                .predict_misses(black_box(&bind), black_box(8192))
                .unwrap()
        });
    });
    g.finish();
}

/// The cache-simulator substrate (Tables 2–3 "actual" columns).
fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    let p = programs::tiled_matmul();
    for n in [32i128, 64] {
        let compiled = CompiledProgram::compile(&p, &bindings_mm(n, 16)).unwrap();
        g.bench_with_input(
            BenchmarkId::new("lru-stack-distances", n),
            &compiled,
            |b, cp| {
                b.iter(|| simulate_stack_distances(black_box(cp), Granularity::Element));
            },
        );
    }
    g.bench_function("engine/random-1M", |b| {
        let mut x = 99u64;
        let trace: Vec<u64> = (0..1_000_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 65536
            })
            .collect();
        b.iter(|| {
            let mut e = StackDistanceEngine::with_dense_addresses(65536);
            for &a in &trace {
                e.access(a);
            }
            black_box(e.distinct_blocks())
        });
    });
    g.finish();
}

/// Tables 2–3 end to end at reduced scale.
fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table2/small", |b| {
        b.iter(|| black_box(table2(Scale::Small)))
    });
    g.bench_function("table3/small", |b| {
        b.iter(|| black_box(table3(Scale::Small)))
    });
    g.finish();
}

/// Table 4 / §6: pruned vs exhaustive tile search.
fn bench_tilesearch(c: &mut Criterion) {
    let mut g = c.benchmark_group("tilesearch");
    g.sample_size(10);
    let model = MissModel::build(&programs::tiled_two_index());
    let mk = || {
        let base = Bindings::new()
            .with("Ni", 1024)
            .with("Nj", 1024)
            .with("Nm", 1024)
            .with("Nn", 1024);
        TileSearcher::new(
            &model,
            base,
            8192,
            SearchSpace {
                tile_syms: vec!["Ti".into(), "Tj".into(), "Tm".into(), "Tn".into()],
                max: vec![512; 4],
                min: 4,
            },
        )
    };
    g.bench_function("pruned", |b| {
        let s = mk();
        b.iter(|| black_box(s.pruned().best.misses));
    });
    g.bench_function("exhaustive", |b| {
        let s = mk();
        b.iter(|| black_box(s.exhaustive().best.misses));
    });
    g.finish();
}

/// Figures 10–11: the model-predicted curves, plus the real kernels at a
/// bench-friendly size (tiled vs equi-tiled — the locality effect the
/// figures demonstrate).
fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig10-model-curves", |b| {
        b.iter(|| black_box(figure(1024, false)));
    });
    let n = 256usize;
    let a = kernels::test_matrix(n, 1);
    let c1 = kernels::test_matrix(n, 2);
    let c2 = kernels::test_matrix(n, 3);
    for tiles in [(64usize, 16usize, 16usize, 64usize), (256, 256, 256, 256)] {
        g.bench_with_input(
            BenchmarkId::new("two-index-kernel", format!("{tiles:?}")),
            &tiles,
            |b, &t| {
                b.iter(|| {
                    black_box(kernels::tiled_two_index(&a, &c1, &c2, n, t, 1));
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_model,
    bench_simulator,
    bench_tables,
    bench_tilesearch,
    bench_figures
);
criterion_main!(benches);
