//! Sequential-vs-parallel tile search: the deadline-aware search engine
//! parallelizes candidate evaluation, so this bench runs the same pruned
//! search on one worker (a 1-thread installed pool) and on a multi-worker
//! pool, asserts the outcomes are byte-identical (the deterministic-reduction
//! promise), and reports the speedup into `results/search-speedup.txt`.
//!
//! The parallel pool is built explicitly with at least [`MIN_WORKERS`]
//! threads: rayon's default pool sizes itself to the visible cores, so on a
//! single-core CI runner it would degenerate to one worker and this bench
//! would measure nothing. With an explicit pool the candidate evaluation is
//! genuinely fanned out even there; the speedup *gate* (vs. the weaker
//! no-regression floor) only applies where the hardware can actually deliver
//! one.

use criterion::{criterion_group, Criterion};
use rayon::ThreadPoolBuilder;
use sdlo_core::MissModel;
use sdlo_ir::{programs, Bindings};
use sdlo_tilesearch::{SearchOutcome, SearchSpace, TileSearcher};
use std::hint::black_box;
use std::time::Instant;

const N: i128 = 512;
const CACHE: u64 = 8192;
/// Fan out at least this wide regardless of visible cores.
const MIN_WORKERS: usize = 4;

fn searcher(model: &MissModel) -> TileSearcher<'_> {
    let base = Bindings::new()
        .with("Ni", N)
        .with("Nj", N)
        .with("Nm", N)
        .with("Nn", N);
    TileSearcher::new(
        model,
        base,
        CACHE,
        SearchSpace {
            tile_syms: vec!["Ti".into(), "Tj".into(), "Tm".into(), "Tn".into()],
            max: vec![N as u64; 4],
            min: 4,
        },
    )
}

fn parallel_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(MIN_WORKERS)
}

fn bench_search(c: &mut Criterion) {
    let model = MissModel::build(&programs::tiled_two_index());
    let s = searcher(&model);
    let one = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let many = ThreadPoolBuilder::new()
        .num_threads(parallel_workers())
        .build()
        .unwrap();
    let mut g = c.benchmark_group("tilesearch");
    g.sample_size(10);
    g.bench_function("pruned/sequential", |b| {
        b.iter(|| black_box(one.install(|| s.pruned())));
    });
    g.bench_function("pruned/parallel", |b| {
        b.iter(|| black_box(many.install(|| s.pruned())));
    });
    g.finish();
}

criterion_group!(benches, bench_search);

/// Median seconds per call over `samples` runs of `f`.
fn median_secs(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn assert_identical(seq: &SearchOutcome, par: &SearchOutcome) {
    assert_eq!(seq.best, par.best, "parallel search changed the best tile");
    assert_eq!(seq.evaluations, par.evaluations);
    assert_eq!(seq.frontier, par.frontier);
    assert!(seq.completed && par.completed);
}

fn main() {
    benches();

    // The acceptance check behind the numbers above: the parallel search
    // must return byte-identical outcomes to one worker, must not regress
    // sequential throughput, and — where the hardware has the cores to show
    // it — must deliver a real multi-worker speedup.
    let model = MissModel::build(&programs::tiled_two_index());
    let s = searcher(&model);
    let one = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let workers = parallel_workers();
    let many = ThreadPoolBuilder::new()
        .num_threads(workers)
        .build()
        .unwrap();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let seq_out = one.install(|| s.pruned());
    let par_out = many.install(|| s.pruned());
    assert_identical(&seq_out, &par_out);

    let seq = median_secs(5, || {
        black_box(one.install(|| s.pruned()));
    });
    let par = median_secs(5, || {
        black_box(many.install(|| s.pruned()));
    });
    let speedup = seq / par;
    let summary = format!(
        "tilesearch/pruned on tiled_two_index (N={N}, cache={CACHE}): \
         sequential {:.3} ms, parallel {:.3} ms on {workers} workers \
         ({cores} cores visible), speedup {speedup:.2}x\n",
        seq * 1e3,
        par * 1e3
    );
    print!("{summary}");

    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    let _ = std::fs::create_dir_all(&results);
    std::fs::write(results.join("search-speedup.txt"), &summary)
        .expect("write results/search-speedup.txt");

    assert!(
        speedup >= 0.7,
        "parallel search must not regress sequential throughput, measured {speedup:.2}x"
    );
    // Timesliced workers on a small host can't beat one thread, so the real
    // speedup gate only arms when the pool maps onto distinct cores.
    if cores >= MIN_WORKERS {
        assert!(
            speedup >= 1.5,
            "expected >=1.5x speedup on {workers} workers across {cores} cores, \
             measured {speedup:.2}x"
        );
    }
}
