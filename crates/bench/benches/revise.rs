//! Warm-DAG revise vs cold rebuild: the tentpole claim of the reactive
//! model engine is that sweeping tile sizes over a live [`ModelDag`]
//! re-evaluates only the tile-dependent expression nodes, so a 64-point
//! tile sweep through `revise` must be much cheaper than rebuilding the
//! DAG (cold evaluation of every expression) at each point. The bench
//! asserts byte-identical miss counts between the two paths, gates on a
//! 5x warm-sweep speedup, and archives the measurement in
//! `results/revise.json`.

use criterion::{criterion_group, Criterion};
use sdlo_core::dag::{DagDelta, ModelDag};
use sdlo_core::MissModel;
use sdlo_ir::{programs, Bindings};
use std::hint::black_box;
use std::time::Instant;

const N: i128 = 512;
const CACHE: u64 = 8192;
const TILES: [i128; 4] = [8, 16, 32, 64];

fn base_bindings() -> Bindings {
    Bindings::new().with("Ni", N).with("Nj", N).with("Nk", N)
}

/// The 64-point sweep grid: every (Ti, Tj, Tk) over [`TILES`].
fn sweep_points() -> Vec<(i128, i128, i128)> {
    let mut points = Vec::new();
    for ti in TILES {
        for tj in TILES {
            for tk in TILES {
                points.push((ti, tj, tk));
            }
        }
    }
    points
}

fn bindings_for((ti, tj, tk): (i128, i128, i128)) -> Bindings {
    base_bindings().with("Ti", ti).with("Tj", tj).with("Tk", tk)
}

/// Cold path: a fresh DAG per point — every expression node evaluated.
fn sweep_cold(model: &MissModel, points: &[(i128, i128, i128)]) -> Vec<u64> {
    points
        .iter()
        .map(|p| {
            ModelDag::new(model, bindings_for(*p), &[CACHE])
                .expect("model evaluation")
                .misses_for(CACHE)
                .expect("tracked size")
        })
        .collect()
}

/// Warm path: one DAG, revised through every point.
fn sweep_warm(dag: &mut ModelDag, points: &[(i128, i128, i128)]) -> Vec<u64> {
    points
        .iter()
        .map(|(ti, tj, tk)| {
            let delta = DagDelta {
                bindings: Bindings::new()
                    .with("Ti", *ti)
                    .with("Tj", *tj)
                    .with("Tk", *tk),
                cache_sizes: None,
            };
            dag.revise(&delta).expect("model evaluation");
            dag.misses_for(CACHE).expect("tracked size")
        })
        .collect()
}

fn bench_revise(c: &mut Criterion) {
    let model = MissModel::build(&programs::tiled_matmul());
    let points = sweep_points();
    let mut dag = ModelDag::new(&model, bindings_for(points[0]), &[CACHE]).unwrap();
    let mut g = c.benchmark_group("revise");
    g.sample_size(10);
    g.bench_function("sweep64/cold_rebuild", |b| {
        b.iter(|| black_box(sweep_cold(&model, &points)));
    });
    g.bench_function("sweep64/warm_revise", |b| {
        b.iter(|| black_box(sweep_warm(&mut dag, &points)));
    });
    g.finish();
}

criterion_group!(benches, bench_revise);

/// Median seconds per call over `samples` runs of `f`.
fn median_secs(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    benches();

    let model = MissModel::build(&programs::tiled_matmul());
    let points = sweep_points();

    // Correctness before speed: the warm sweep must agree with the cold
    // sweep and with the batch evaluator at every point.
    let cold = sweep_cold(&model, &points);
    let mut dag = ModelDag::new(&model, bindings_for(points[0]), &[CACHE]).unwrap();
    let warm = sweep_warm(&mut dag, &points);
    assert_eq!(cold, warm, "warm revise sweep diverged from cold rebuilds");
    for (p, misses) in points.iter().zip(&warm) {
        let batch = model
            .predict_misses(&bindings_for(*p), CACHE)
            .expect("model evaluation");
        assert_eq!(*misses, batch, "revise diverged from predict at {p:?}");
    }

    let cold_secs = median_secs(7, || {
        black_box(sweep_cold(&model, &points));
    });
    let warm_secs = median_secs(7, || {
        black_box(sweep_warm(&mut dag, &points));
    });
    let speedup = cold_secs / warm_secs;
    let summary = format!(
        "{{\"program\":\"tiled_matmul\",\"n\":{N},\"cache\":{CACHE},\
         \"points\":{},\"full_rebuild_micros\":{:.1},\"revise_micros\":{:.1},\
         \"speedup\":{speedup:.2},\"identical\":true}}\n",
        points.len(),
        cold_secs * 1e6,
        warm_secs * 1e6,
    );
    println!(
        "revise/sweep64 on tiled_matmul (N={N}, cache={CACHE}): \
         cold {:.1} us, warm {:.1} us, speedup {speedup:.2}x",
        cold_secs * 1e6,
        warm_secs * 1e6
    );

    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    let _ = std::fs::create_dir_all(&results);
    std::fs::write(results.join("revise.json"), &summary).expect("write results/revise.json");

    assert!(
        speedup >= 5.0,
        "warm-DAG revise sweep must be at least 5x cheaper than cold \
         rebuilds over the 64-point grid, measured {speedup:.2}x"
    );
}
