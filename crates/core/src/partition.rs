//! Iteration-space partitioning (paper §5.1, Fig. 3) and per-component
//! symbolic stack distances (§5.2, Figs. 4–5).
//!
//! For every array reference, its instances are partitioned into
//! **components** such that all instances of a component have the same
//! incoming dependence (= previous access to the same element):
//!
//! * **Carried(ℓ)** — the previous access is one iteration of the
//!   non-appearing loop ℓ earlier (innermost non-appearing loop whose value
//!   exceeds 1; deeper non-appearing loops are at 1 — wrap-around).
//! * **CrossStmt** — every non-appearing loop below some sequence level is
//!   at 1 and an earlier sibling branch at that level references the array:
//!   the previous access comes from that branch (imperfectly nested reuse).
//! * **Compulsory** — no previous access exists (stack distance ∞).
//!
//! The stack distance of a component is the total number of distinct
//! elements accessed in the reuse span, summed over all arrays:
//! whole-subtree traversals are counted exactly ([`crate::extent`]); the
//! partial suffix/prefix of the source/target branches contribute terms
//! linear in the position of the reuse inside the branch, yielding the
//! paper's *non-constant* stack distances (reported as a [`StackDistance::Varying`]
//! interval and resolved by linear interpolation, exactly like the paper's
//! partial-miss formula in §5).

use crate::extent::{seq_costs, subtree_costs, CostMap};
use sdlo_ir::{ArrayId, ArrayRef, Expr, LoopNode, Node, Program, Stmt, StmtId, Sym};

/// Symbolic stack distance of a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackDistance {
    /// No incoming dependence — always a miss.
    Infinite,
    /// The same distance for every instance of the component.
    Constant(Expr),
    /// Distance varies linearly across the component between two (unordered)
    /// endpoint expressions.
    Varying {
        /// Distance at one extreme of the reuse position.
        lo: Expr,
        /// Distance at the other extreme.
        hi: Expr,
    },
}

impl std::fmt::Display for StackDistance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StackDistance::Infinite => write!(f, "∞"),
            StackDistance::Constant(e) => write!(f, "{e}"),
            StackDistance::Varying { lo, hi } => write!(f, "[{lo} .. {hi}]"),
        }
    }
}

/// What kind of reuse feeds a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComponentKind {
    /// First accesses — no reuse.
    Compulsory,
    /// Reuse carried by a non-appearing loop (same statement or wrap-around
    /// to the last touching statement of the loop body).
    Carried {
        /// The carrying loop's index variable.
        loop_index: Sym,
        /// The statement supplying the previous access.
        source_stmt: StmtId,
    },
    /// Reuse from an earlier sibling branch of an imperfect nest.
    CrossStmt {
        /// The statement supplying the previous access.
        source_stmt: StmtId,
    },
}

/// One partition of a reference's instances.
#[derive(Debug, Clone)]
pub struct Component {
    /// Array being reused.
    pub array: ArrayId,
    /// Statement containing the target reference.
    pub stmt: StmtId,
    /// Index of the reference within the statement.
    pub ref_idx: usize,
    /// Reuse kind.
    pub kind: ComponentKind,
    /// Number of reference instances in the component (symbolic).
    pub count: Expr,
    /// Stack distance (symbolic).
    pub distance: StackDistance,
}

/// One level of a statement's position in the loop tree: the sibling
/// sequence, the statement's branch position within it, and the loop owning
/// the sequence (`None` at the program root).
struct Level<'p> {
    owner: Option<&'p LoopNode>,
    seq: &'p [Node],
    pos: usize,
}

fn stmt_levels<'p>(program: &'p Program, stmt: StmtId) -> Vec<Level<'p>> {
    fn walk<'p>(
        seq: &'p [Node],
        owner: Option<&'p LoopNode>,
        stmt: StmtId,
        acc: &mut Vec<Level<'p>>,
    ) -> bool {
        for (pos, child) in seq.iter().enumerate() {
            acc.push(Level { owner, seq, pos });
            match child {
                Node::Stmt(s) if s.id == stmt => return true,
                Node::Stmt(_) => {}
                Node::Loop(l) => {
                    if walk(&l.body, Some(l), stmt, acc) {
                        return true;
                    }
                }
            }
            acc.pop();
        }
        false
    }
    let mut acc = Vec::new();
    assert!(
        walk(&program.root, None, stmt, &mut acc),
        "statement {stmt:?} not found"
    );
    acc
}

fn subtree_contains(node: &Node, array: ArrayId) -> bool {
    match node {
        Node::Stmt(s) => s.refs.iter().any(|r| r.array == array),
        Node::Loop(l) => l.body.iter().any(|n| subtree_contains(n, array)),
    }
}

/// Rightmost (last in program order) statement referencing `array` inside
/// `node`, with the reference index.
fn rightmost_leaf(node: &Node, array: ArrayId) -> Option<(&Stmt, usize)> {
    match node {
        Node::Stmt(s) => s
            .refs
            .iter()
            .rposition(|r| r.array == array)
            .map(|i| (s, i)),
        Node::Loop(l) => l.body.iter().rev().find_map(|n| rightmost_leaf(n, array)),
    }
}

fn rightmost_leaf_in_seq(seq: &[Node], array: ArrayId) -> Option<(&Stmt, usize)> {
    seq.iter().rev().find_map(|n| rightmost_leaf(n, array))
}

/// A linear boundary contribution: `position · unit_sum + const_sum` where
/// `position` ranges over `1..=trips`.
#[derive(Debug, Clone)]
struct Boundary {
    /// Sum of per-iteration units for arrays whose references involve the
    /// boundary loop (these grow with the position).
    unit_sum: Expr,
    /// Trip count of the boundary loop.
    trips: Expr,
    /// Contribution of arrays not involving the boundary loop plus fully
    /// traversed side subtrees (independent of position).
    const_sum: Expr,
}

impl Boundary {
    fn empty() -> Self {
        Boundary {
            unit_sum: Expr::zero(),
            trips: Expr::one(),
            const_sum: Expr::zero(),
        }
    }
}

/// Compute the boundary (suffix or prefix) contribution of `branch` for a
/// reference to `reused` at statement `stmt`, excluding the reused array
/// itself (its span coverage is accounted for separately).
///
/// `suffix == true` means the span *leaves* the branch at the reference's
/// last access (source side); `false` means it *enters* up to the first
/// access (target side). Both reduce to: find the outermost loop of the
/// branch path that appears in the reference (`ℓout`); arrays referenced
/// inside `ℓout`'s body contribute `position · unit` if they involve `ℓout`,
/// a constant `unit` otherwise; side subtrees above `ℓout` (after the path
/// for a suffix, before it for a prefix) are traversed in full.
fn boundary_costs(
    branch: &Node,
    stmt: StmtId,
    the_ref: &ArrayRef,
    reused: ArrayId,
    suffix: bool,
) -> Boundary {
    // A bare statement branch has no loops inside: no partial traversal.
    if matches!(branch, Node::Stmt(_)) {
        return Boundary::empty();
    }

    // Collect (loop, seq, pos) from the branch root down to `stmt`.
    fn path_into<'p>(
        node: &'p Node,
        stmt: StmtId,
        acc: &mut Vec<(&'p LoopNode, &'p [Node], usize)>,
    ) -> bool {
        match node {
            Node::Stmt(s) => s.id == stmt,
            Node::Loop(l) => {
                for (pos, child) in l.body.iter().enumerate() {
                    acc.push((l, &l.body, pos));
                    if path_into(child, stmt, acc) {
                        return true;
                    }
                    acc.pop();
                }
                false
            }
        }
    }
    let mut path = Vec::new();
    if !path_into(branch, stmt, &mut path) {
        return Boundary::empty();
    }

    // ℓout = outermost loop on the path appearing in the reference.
    let Some(out_level) = path.iter().position(|(l, _, _)| the_ref.appears(&l.index)) else {
        // No appearing loop inside the branch: the reuse position is pinned
        // to the very end (suffix) / start (prefix) — nothing in between.
        return Boundary::empty();
    };
    let (lout, _, _) = path[out_level];

    // Side subtrees above ℓout traversed in full.
    let mut sides = CostMap::default();
    for &(_, seq, pos) in &path[..out_level] {
        let range: &[Node] = if suffix { &seq[pos + 1..] } else { &seq[..pos] };
        for n in range {
            sides.merge(&subtree_costs(n));
        }
    }
    let side_cost = sides.without(reused).total();

    // One iteration of ℓout's body.
    let unit = seq_costs(&lout.body);
    let mut unit_sum = Expr::zero();
    let mut const_sum = side_cost;
    for b in unit.arrays() {
        if b == reused {
            continue;
        }
        let cost = unit.array_cost(b);
        if array_involves(&lout.body, b, &lout.index) {
            unit_sum += cost;
        } else {
            const_sum += cost;
        }
    }
    Boundary {
        unit_sum,
        trips: lout.bound.clone(),
        const_sum,
    }
}

/// Stack distance of a same-branch wrap-around reuse carried by `carrier`
/// over body `seq`, for a typical (interior) instance.
///
/// The wrap span is one full body sweep, *plus*, for arrays referenced in
/// the target's own branch whose subscripts involve the carrier (their
/// elements differ between carrier iterations `x` and `x+1`):
///
/// * if the array also involves the branch's outermost loop ℓ*, its suffix
///   and prefix portions split complementarily along ℓ* except for one
///   shared ℓ* iteration → one extra ℓ*-body unit;
/// * otherwise the array is swept fully on **both** sides of the wrap →
///   one extra full branch extent.
///
/// Boundary instances (first/last ℓ* iteration) fall short of this value by
/// up to one unit; the interior dominates by a factor of the tile size, so
/// the interior value is reported (validated against the simulated
/// stack-distance histogram).
fn wrap_distance(
    seq: &[Node],
    carrier: &LoopNode,
    branch: &Node,
    reused: ArrayId,
) -> StackDistance {
    let mut sd = seq_costs(seq).total();
    let branch_seq = std::slice::from_ref(branch);
    let branch_costs = seq_costs(branch_seq);
    let lstar: Option<&LoopNode> = match branch {
        Node::Loop(l) => Some(l),
        Node::Stmt(_) => None,
    };
    for b in branch_costs.arrays() {
        if b == reused || !array_involves(branch_seq, b, &carrier.index) {
            continue;
        }
        match lstar {
            Some(l) if array_involves(branch_seq, b, &l.index) => {
                sd += seq_costs(&l.body).array_cost(b);
            }
            _ => {
                sd += branch_costs.array_cost(b);
            }
        }
    }
    StackDistance::Constant(sd)
}

/// Whether any reference to `array` within `seq` uses loop index `idx`.
fn array_involves(seq: &[Node], array: ArrayId, idx: &Sym) -> bool {
    fn walk(node: &Node, array: ArrayId, idx: &Sym) -> bool {
        match node {
            Node::Stmt(s) => s.refs.iter().any(|r| r.array == array && r.appears(idx)),
            Node::Loop(l) => l.body.iter().any(|n| walk(n, array, idx)),
        }
    }
    seq.iter().any(|n| walk(n, array, idx))
}

/// Combine base + boundaries into a [`StackDistance`].
fn combine(base: Expr, src: Boundary, tgt: Boundary) -> StackDistance {
    let base = base + src.const_sum.clone() + tgt.const_sum.clone();
    let src_zero = src.unit_sum.is_zero();
    let tgt_zero = tgt.unit_sum.is_zero();
    if src_zero && tgt_zero {
        return StackDistance::Constant(base);
    }
    if src.trips == tgt.trips {
        // Tied positions (the reuse source and target sit at matching
        // offsets): SD(a) = base + a·tgt + (R−a)·src for a ∈ 1..=R.
        let r = src.trips;
        let at_start =
            base.clone() + tgt.unit_sum.clone() + src.unit_sum.clone() * (r.clone() - Expr::one());
        let at_end = base + tgt.unit_sum * r;
        StackDistance::Varying {
            lo: at_start,
            hi: at_end,
        }
    } else {
        // Independent positions: bracket with the corner extremes.
        let min = base.clone() + tgt.unit_sum.clone();
        let max = base + tgt.unit_sum * tgt.trips + src.unit_sum * (src.trips - Expr::one());
        StackDistance::Varying { lo: min, hi: max }
    }
}

/// Deferred stack-distance derivation for one component: everything stage 1
/// (partitioning + classification) learned that stage 2 needs. Splitting the
/// two stages keeps the `model.partition` and `model.stack_distance` trace
/// spans honest — each phase is timed separately.
enum DistanceJob<'p> {
    /// Compulsory component — no previous access.
    Infinite,
    /// Same-branch wrap-around reuse carried by `carrier`.
    Wrap {
        seq: &'p [Node],
        carrier: &'p LoopNode,
        branch_pos: usize,
        array: ArrayId,
    },
    /// Reuse spanning from a source branch to a target branch of `seq`:
    /// sibling reuse when `wraps` is false (`src_pos < tgt_pos`, span is the
    /// contiguous slice), carried wrap-around across branches when true
    /// (span leaves the end of `seq` and re-enters at the front).
    Span {
        seq: &'p [Node],
        src_pos: usize,
        tgt_pos: usize,
        wraps: bool,
        src_stmt: &'p Stmt,
        tgt_stmt_id: StmtId,
        the_ref: &'p ArrayRef,
        array: ArrayId,
    },
}

/// Stage 2: derive the symbolic stack distance for one component.
fn distance_for(job: DistanceJob<'_>) -> StackDistance {
    match job {
        DistanceJob::Infinite => StackDistance::Infinite,
        DistanceJob::Wrap {
            seq,
            carrier,
            branch_pos,
            array,
        } => wrap_distance(seq, carrier, &seq[branch_pos], array),
        DistanceJob::Span {
            seq,
            src_pos,
            tgt_pos,
            wraps,
            src_stmt,
            tgt_stmt_id,
            the_ref,
            array,
        } => {
            // Span: suffix of source branch + full mids + prefix of target
            // branch; the reused array's coverage is its union box over the
            // spanned branches.
            let mut mids = CostMap::default();
            let mut reused_span = CostMap::default();
            if wraps {
                for n in seq[src_pos + 1..].iter().chain(&seq[..tgt_pos]) {
                    mids.merge(&subtree_costs(n));
                }
                for n in seq {
                    reused_span.merge(&subtree_costs(n));
                }
            } else {
                for n in &seq[src_pos + 1..tgt_pos] {
                    mids.merge(&subtree_costs(n));
                }
                for n in &seq[src_pos..=tgt_pos] {
                    reused_span.merge(&subtree_costs(n));
                }
            }
            let base = mids.without(array).total() + reused_span.only(array).total();
            let src_ref = src_stmt
                .refs
                .iter()
                .find(|r| r.array == array)
                .expect("source stmt references array");
            let sb = boundary_costs(&seq[src_pos], src_stmt.id, src_ref, array, true);
            let tb = boundary_costs(&seq[tgt_pos], tgt_stmt_id, the_ref, array, false);
            combine(base, sb, tb)
        }
    }
}

/// Stage 1: partition the instances of reference `ref_idx` of `stmt` into
/// components (kind + symbolic count) and record, per component, the
/// [`DistanceJob`] stage 2 resolves into a stack distance.
fn partition_reference<'p>(
    program: &'p Program,
    stmt: &Stmt,
    ref_idx: usize,
) -> Vec<(Component, DistanceJob<'p>)> {
    let levels = stmt_levels(program, stmt.id);
    let last = levels.last().expect("statement occupies a level");
    let Node::Stmt(tgt_stmt) = &last.seq[last.pos] else {
        unreachable!("the last level addresses the statement itself")
    };
    let the_ref = &tgt_stmt.refs[ref_idx];
    let array = the_ref.array;
    let owners: Vec<Option<&LoopNode>> = levels.iter().map(|l| l.owner).collect();

    let product_of = |range: &dyn Fn(usize, &LoopNode) -> Option<Expr>| -> Expr {
        let mut acc = Expr::one();
        for (k, o) in owners.iter().enumerate() {
            if let Some(l) = o {
                if let Some(f) = range(k, l) {
                    acc *= f;
                }
            }
        }
        acc
    };

    let mut components = Vec::new();
    let mut found_cross = false;

    for k in (0..levels.len()).rev() {
        let level = &levels[k];
        // 1. Nearest earlier sibling branch containing the array.
        if let Some(j) = (0..level.pos)
            .rev()
            .find(|&j| subtree_contains(&level.seq[j], array))
        {
            let (src_stmt, _src_ref) =
                rightmost_leaf(&level.seq[j], array).expect("subtree_contains implies a leaf");
            // Count: enclosing loops of this sequence (levels 0..=k, the
            // level-k owner owns the sequence itself) free, appearing loops
            // below free, non-appearing loops below fixed at 1.
            let count = product_of(&|i, l| {
                if i <= k || the_ref.appears(&l.index) {
                    Some(l.bound.clone())
                } else {
                    None
                }
            });
            components.push((
                Component {
                    array,
                    stmt: stmt.id,
                    ref_idx,
                    kind: ComponentKind::CrossStmt {
                        source_stmt: src_stmt.id,
                    },
                    count,
                    distance: StackDistance::Infinite, // resolved in stage 2
                },
                DistanceJob::Span {
                    seq: level.seq,
                    src_pos: j,
                    tgt_pos: level.pos,
                    wraps: false,
                    src_stmt,
                    tgt_stmt_id: stmt.id,
                    the_ref,
                    array,
                },
            ));
            found_cross = true;
            break;
        }
        // 2. Reuse carried by the owning loop, if it does not appear.
        let Some(owner) = level.owner else { break };
        if the_ref.appears(&owner.index) {
            continue;
        }
        let (src_stmt, _) = rightmost_leaf_in_seq(level.seq, array)
            .expect("the target itself references the array");
        let count = product_of(&|i, l| {
            if i < k {
                Some(l.bound.clone())
            } else if i == k {
                Some(l.bound.clone() - Expr::one())
            } else if the_ref.appears(&l.index) {
                Some(l.bound.clone())
            } else {
                None
            }
        });
        // Source branch is the child of the loop body containing the
        // rightmost leaf; target branch is our own child position.
        let src_pos = level
            .seq
            .iter()
            .rposition(|n| subtree_contains(n, array))
            .expect("rightmost leaf exists");
        let job = if src_pos == level.pos {
            // Same branch: one full body traversal plus boundary extras for
            // carrier-dependent arrays (see `wrap_distance`).
            DistanceJob::Wrap {
                seq: level.seq,
                carrier: owner,
                branch_pos: level.pos,
                array,
            }
        } else {
            debug_assert!(src_pos > level.pos, "source is the rightmost leaf");
            DistanceJob::Span {
                seq: level.seq,
                src_pos,
                tgt_pos: level.pos,
                wraps: true,
                src_stmt,
                tgt_stmt_id: stmt.id,
                the_ref,
                array,
            }
        };
        components.push((
            Component {
                array,
                stmt: stmt.id,
                ref_idx,
                kind: ComponentKind::Carried {
                    loop_index: owner.index.clone(),
                    source_stmt: src_stmt.id,
                },
                count,
                distance: StackDistance::Infinite, // resolved in stage 2
            },
            job,
        ));
    }

    if !found_cross {
        let count = product_of(&|_, l| {
            if the_ref.appears(&l.index) {
                Some(l.bound.clone())
            } else {
                None
            }
        });
        components.push((
            Component {
                array,
                stmt: stmt.id,
                ref_idx,
                kind: ComponentKind::Compulsory,
                count,
                distance: StackDistance::Infinite,
            },
            DistanceJob::Infinite,
        ));
    }
    components
}

/// Enumerate the reuse components of reference `ref_idx` of statement `stmt`.
pub fn components_for(program: &Program, stmt: &Stmt, ref_idx: usize) -> Vec<Component> {
    partition_reference(program, stmt, ref_idx)
        .into_iter()
        .map(|(mut c, job)| {
            c.distance = distance_for(job);
            c
        })
        .collect()
}

/// Enumerate reuse components for **every** reference of the program, in two
/// traced phases: `model.partition` (enumeration + classification, with
/// per-kind cell counters) and `model.stack_distance` (symbolic distance
/// derivation, with term counters).
pub fn all_components(program: &Program) -> Vec<Component> {
    let skeletons = {
        let span = sdlo_trace::span("model.partition");
        let mut skeletons = Vec::new();
        program.for_each_stmt(|s| {
            for ref_idx in 0..s.refs.len() {
                skeletons.extend(partition_reference(program, s, ref_idx));
            }
        });
        span.add("cells", skeletons.len() as u64);
        if span.is_recording() {
            let count_kind = |pred: &dyn Fn(&ComponentKind) -> bool| {
                skeletons.iter().filter(|(c, _)| pred(&c.kind)).count() as u64
            };
            span.add(
                "compulsory",
                count_kind(&|k| matches!(k, ComponentKind::Compulsory)),
            );
            span.add(
                "carried",
                count_kind(&|k| matches!(k, ComponentKind::Carried { .. })),
            );
            span.add(
                "cross_stmt",
                count_kind(&|k| matches!(k, ComponentKind::CrossStmt { .. })),
            );
        }
        skeletons
    };

    let span = sdlo_trace::span("model.stack_distance");
    let mut terms = 0u64;
    let mut varying = 0u64;
    let out: Vec<Component> = skeletons
        .into_iter()
        .map(|(mut c, job)| {
            c.distance = distance_for(job);
            match &c.distance {
                StackDistance::Infinite => {}
                StackDistance::Constant(e) => terms += e.terms().len() as u64,
                StackDistance::Varying { lo, hi } => {
                    varying += 1;
                    terms += (lo.terms().len() + hi.terms().len()) as u64;
                }
            }
            c
        })
        .collect();
    span.add("distance_terms", terms);
    span.add("varying_distances", varying);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdlo_ir::{programs, Bindings};

    fn tmm_bindings() -> Bindings {
        Bindings::new()
            .with("Ni", 512)
            .with("Nj", 512)
            .with("Nk", 512)
            .with("Ti", 64)
            .with("Tj", 64)
            .with("Tk", 64)
    }

    #[test]
    fn tiled_matmul_has_nine_components() {
        // Paper Table 1: nine elementary partitions (three per reference).
        let p = programs::tiled_matmul();
        let comps = all_components(&p);
        assert_eq!(comps.len(), 9);
        let compulsory = comps
            .iter()
            .filter(|c| c.kind == ComponentKind::Compulsory)
            .count();
        assert_eq!(compulsory, 3);
    }

    #[test]
    fn component_counts_partition_instances() {
        // Σ counts per reference == total instances of the reference.
        let p = programs::tiled_matmul();
        let b = tmm_bindings();
        let total: i64 = 512 / 64 * 512 / 64 * (512 / 64) * 64 * 64 * 64;
        for ref_idx in 0..3 {
            let stmt = p.stmts()[0].clone();
            let comps = components_for(&p, &stmt, ref_idx);
            let sum: i64 = comps.iter().map(|c| c.count.eval(&b).unwrap()).sum();
            assert_eq!(sum, total, "ref {ref_idx}");
        }
    }

    #[test]
    fn tiled_matmul_stack_distances_match_paper_table1_shapes() {
        let p = programs::tiled_matmul();
        let b = tmm_bindings();
        let a_id = p.array_by_name("A").unwrap().id;
        let comps = all_components(&p);
        // A (no k): innermost carried by kI has SD 3; carried by kT has
        // SD = Ti·Tj + Tj·Tk + Ti·Tk.
        let a_comps: Vec<_> = comps.iter().filter(|c| c.array == a_id).collect();
        let mut found_inner = false;
        let mut found_tile = false;
        for c in &a_comps {
            if let ComponentKind::Carried { loop_index, .. } = &c.kind {
                let (lo, hi) = match &c.distance {
                    StackDistance::Constant(e) => (e.eval(&b).unwrap(), e.eval(&b).unwrap()),
                    StackDistance::Varying { lo, hi } => {
                        (lo.eval(&b).unwrap(), hi.eval(&b).unwrap())
                    }
                    StackDistance::Infinite => panic!("carried reuse is finite"),
                };
                match loop_index.name() {
                    "kI" => {
                        // One statement instance between consecutive kI
                        // iterations: paper reports 3 (we add ≤2 for the
                        // carrier-dependent operands).
                        assert!((3..=5).contains(&lo), "kI SD = {lo}");
                        found_inner = true;
                    }
                    "kT" => {
                        // One intra-tile sweep Ti·Tj + Tj·Tk + Ti·Tk, plus
                        // B swept on both sides of the wrap (+Tj·Tk) and one
                        // extra kI-row of C (+Tk).
                        assert_eq!(lo, 64 * 64 * 4 + 64);
                        assert_eq!(hi, lo);
                        found_tile = true;
                    }
                    other => panic!("unexpected carrier {other}"),
                }
            }
        }
        assert!(found_inner && found_tile);
    }

    #[test]
    fn two_index_t_has_cross_stmt_components() {
        let p = programs::tiled_two_index();
        let t_id = p.array_by_name("T").unwrap().id;
        let comps = all_components(&p);
        // S2's T reference must have a cross-statement component sourced
        // from S1 (the zeroing), and S3's from S2.
        let s2_cross = comps.iter().find(|c| {
            c.array == t_id
                && c.stmt == StmtId(2)
                && matches!(
                    c.kind,
                    ComponentKind::CrossStmt {
                        source_stmt: StmtId(1)
                    }
                )
        });
        assert!(s2_cross.is_some(), "missing S1→S2 cross component");
        let s3_cross = comps.iter().find(|c| {
            c.array == t_id
                && c.stmt == StmtId(3)
                && matches!(
                    c.kind,
                    ComponentKind::CrossStmt {
                        source_stmt: StmtId(2)
                    }
                )
        });
        assert!(s3_cross.is_some(), "missing S2→S3 cross component");
        // The S1→S2 reuse is the paper's non-constant stack distance
        // example: it must be a Varying interval.
        match &s2_cross.unwrap().distance {
            StackDistance::Varying { .. } => {}
            other => panic!("expected varying distance, got {other}"),
        }
    }

    #[test]
    fn s1_to_s2_varying_matches_paper_expression() {
        // Paper §5: SD ranges between Ti·Tn + Tj·Tn (+Tj) and
        // Ti·Tn + Tj·Tn + Ti·Tj.
        let p = programs::tiled_two_index();
        let t_id = p.array_by_name("T").unwrap().id;
        let comps = all_components(&p);
        let c = comps
            .iter()
            .find(|c| {
                c.array == t_id
                    && c.stmt == StmtId(2)
                    && matches!(c.kind, ComponentKind::CrossStmt { .. })
            })
            .unwrap();
        let b = Bindings::new()
            .with("Ti", 64)
            .with("Tj", 16)
            .with("Tn", 128)
            .with("Ni", 256)
            .with("Nj", 256)
            .with("Nm", 256)
            .with("Nn", 256)
            .with("Tm", 16);
        let StackDistance::Varying { lo, hi } = &c.distance else {
            panic!()
        };
        let (ti, tj, tn) = (64i64, 16, 128);
        let lo_v = lo.eval(&b).unwrap();
        let hi_v = hi.eval(&b).unwrap();
        let (lo_v, hi_v) = (lo_v.min(hi_v), lo_v.max(hi_v));
        // Expected: min ≈ Ti·Tn + Tj·Tn + Tj, max ≈ Ti·Tn + Tj·Tn + Ti·Tj.
        assert_eq!(hi_v, ti * tn + tj * tn + ti * tj);
        assert!(
            (lo_v - (ti * tn + tj * tn)).abs() <= tj + ti,
            "lo = {lo_v}, expected ≈ {}",
            ti * tn + tj * tn
        );
    }

    #[test]
    fn compulsory_only_for_chain_heads() {
        // In the tiled two-index transform, B is zeroed by S0 and updated by
        // S3: S3's B reference must NOT have a compulsory component (its
        // all-ones instances reuse S0's writes), S0's must.
        let p = programs::tiled_two_index();
        let b_id = p.array_by_name("B").unwrap().id;
        let comps = all_components(&p);
        let s0_comp = comps
            .iter()
            .any(|c| c.array == b_id && c.stmt == StmtId(0) && c.kind == ComponentKind::Compulsory);
        let s3_comp = comps
            .iter()
            .any(|c| c.array == b_id && c.stmt == StmtId(3) && c.kind == ComponentKind::Compulsory);
        assert!(s0_comp);
        assert!(!s3_comp);
    }
}
