//! The reactive model engine: an explicit dependency DAG over a built
//! [`MissModel`], so a changed tile size or loop bound re-evaluates only
//! the expressions it feeds instead of repricing the whole model.
//!
//! ## Node taxonomy
//!
//! The DAG has four layers, mirroring how the model is priced:
//!
//! 1. **Inputs** — the symbol bindings (tile sizes, loop bounds) and the
//!    tracked cache-size set. These are the only things a
//!    [`DagDelta`] can change.
//! 2. **Expression nodes** — every distinct symbolic expression appearing
//!    as a component count or stack-distance endpoint, interned so shared
//!    subexpressions are priced once. Each node records the exact symbols
//!    it reads ([`sdlo_symbolic::Expr::vars`]), its current value, and a
//!    **fingerprint** of the input values it read — the memoization key.
//! 3. **Component summaries** — per [`Component`], the evaluated count and
//!    [`DistanceValues`], wired to the expression nodes they read.
//! 4. **Miss cells and totals** — per `(component, cache size)`, the §5
//!    miss formula ([`predict_from_values`]) on layer-3 values, summed in
//!    component order into one total per cache size.
//!
//! ## Invalidation rules
//!
//! [`ModelDag::revise`] marks dirty exactly the expression nodes whose
//! symbol set intersects the *actually changed* bindings (a delta that
//! rebinds a symbol to its current value changes nothing). A dirty node is
//! re-evaluated only if its input fingerprint really moved; everything
//! else is reused. Miss cells recompute only for components fed by a
//! re-evaluated expression — plus every component for cache sizes newly
//! added by the delta. Totals update incrementally (subtract the stale
//! cell, add the fresh one).
//!
//! Revision is transactional: all staged evaluations must succeed before
//! any state is committed, so a failed delta (unbound symbol, negative
//! count) leaves the DAG answering for its previous state.

use crate::model::{predict_from_values, DistanceValues, MissModel, ModelError};
use crate::partition::StackDistance;
use sdlo_symbolic::{Bindings, Expr, Sym};
use std::collections::{BTreeMap, BTreeSet};

/// A structured change to a live [`ModelDag`]: sparse symbol rebindings
/// (tile sizes, loop bounds) and/or a replacement cache-size set.
#[derive(Debug, Clone, Default)]
pub struct DagDelta {
    /// Symbols to rebind; symbols not mentioned keep their values.
    pub bindings: Bindings,
    /// When present, replaces the tracked cache-size set (sorted, deduped).
    pub cache_sizes: Option<Vec<u64>>,
}

/// What one [`ModelDag::revise`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReviseOutcome {
    /// Expression nodes whose fingerprint moved and were re-evaluated.
    pub nodes_reevaluated: u64,
    /// Expression nodes reused without re-evaluation.
    pub nodes_reused: u64,
    /// `(component, cache size)` miss cells recomputed.
    pub cells_recomputed: u64,
    /// Total predicted misses per tracked cache size, ascending.
    pub misses: Vec<(u64, u64)>,
}

/// Lifetime counters of one DAG.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DagStats {
    /// Completed [`ModelDag::revise`] calls.
    pub revisions: u64,
    /// Expression nodes re-evaluated across all revisions.
    pub nodes_reevaluated: u64,
    /// Expression nodes reused across all revisions.
    pub nodes_reused: u64,
}

/// One interned expression node (layer 2).
#[derive(Debug, Clone)]
struct ExprNode {
    expr: Expr,
    /// The symbols this node reads, in symbol order.
    vars: Vec<Sym>,
    /// Current value under the DAG's bindings.
    value: i64,
    /// FNV-1a over the values of exactly the inputs this node reads.
    fingerprint: u64,
}

/// A component's stack distance as expression-node references.
#[derive(Debug, Clone, Copy)]
enum DistRef {
    Infinite,
    Constant(usize),
    Varying(usize, usize),
}

/// One component summary (layer 3): count + distance as node references.
#[derive(Debug, Clone, Copy)]
struct CompNode {
    count: usize,
    distance: DistRef,
}

/// The live reactive model: build once from a [`MissModel`], then feed it
/// [`DagDelta`]s.
///
/// ```
/// use sdlo_core::dag::{DagDelta, ModelDag};
/// use sdlo_core::MissModel;
/// use sdlo_ir::{programs, Bindings};
///
/// let model = MissModel::build(&programs::tiled_matmul());
/// let b = Bindings::new()
///     .with("Ni", 512).with("Nj", 512).with("Nk", 512)
///     .with("Ti", 32).with("Tj", 32).with("Tk", 32);
/// let mut dag = ModelDag::new(&model, b, &[8192]).unwrap();
/// assert_eq!(dag.misses(), vec![(8192, 8_650_752)]);
///
/// // Retile: only the tile-fed expressions re-evaluate.
/// let delta = DagDelta {
///     bindings: Bindings::new().with("Ti", 64).with("Tj", 64).with("Tk", 64),
///     cache_sizes: None,
/// };
/// let out = dag.revise(&delta).unwrap();
/// assert_eq!(out.misses, vec![(8192, 6_291_456)]); // Table 3 value
/// assert!(out.nodes_reused > 0);
/// ```
#[derive(Debug, Clone)]
pub struct ModelDag {
    exprs: Vec<ExprNode>,
    comps: Vec<CompNode>,
    /// Symbol → expression nodes reading it.
    sym_index: BTreeMap<Sym, Vec<usize>>,
    /// Expression node → components it feeds.
    expr_comps: Vec<Vec<usize>>,
    bindings: Bindings,
    /// Tracked cache sizes, ascending and deduped.
    cache_sizes: Vec<u64>,
    /// `comp_misses[size_idx][comp_idx]` — the layer-4 miss cells.
    comp_misses: Vec<Vec<u64>>,
    /// Per-size totals, parallel to `cache_sizes`.
    totals: Vec<u64>,
    stats: DagStats,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint of the values a node reads: FNV-1a over `(value)` in the
/// node's symbol order. Unbound symbols hash as a distinct tag so "unbound"
/// and "bound to zero" never collide.
fn input_fingerprint(vars: &[Sym], bindings: &Bindings) -> u64 {
    let mut h = FNV_OFFSET;
    for v in vars {
        match bindings.get(v) {
            Some(val) => {
                h = fnv1a64(h, &[1]);
                h = fnv1a64(h, &val.to_le_bytes());
            }
            None => h = fnv1a64(h, &[0]),
        }
    }
    h
}

impl ModelDag {
    /// Build the DAG from a built model, an initial full binding set, and
    /// the cache sizes to track. Every expression is evaluated once; the
    /// model layers below the expressions (partitioning, symbolic stack
    /// distances) are captured by reference and never recomputed.
    pub fn new(
        model: &MissModel,
        bindings: Bindings,
        cache_sizes: &[u64],
    ) -> Result<Self, ModelError> {
        let span = sdlo_trace::span(sdlo_trace::names::REVISE_DAG_BUILD);
        let mut exprs: Vec<ExprNode> = Vec::new();
        let mut interned: BTreeMap<Expr, usize> = BTreeMap::new();
        let mut intern = |e: &Expr, exprs: &mut Vec<ExprNode>| -> usize {
            if let Some(id) = interned.get(e) {
                return *id;
            }
            let id = exprs.len();
            exprs.push(ExprNode {
                expr: e.clone(),
                vars: e.vars().into_iter().collect(),
                value: 0,
                fingerprint: 0,
            });
            interned.insert(e.clone(), id);
            id
        };

        let comps: Vec<CompNode> = model
            .components()
            .iter()
            .map(|c| CompNode {
                count: intern(&c.count, &mut exprs),
                distance: match &c.distance {
                    StackDistance::Infinite => DistRef::Infinite,
                    StackDistance::Constant(e) => DistRef::Constant(intern(e, &mut exprs)),
                    StackDistance::Varying { lo, hi } => {
                        DistRef::Varying(intern(lo, &mut exprs), intern(hi, &mut exprs))
                    }
                },
            })
            .collect();

        let mut sym_index: BTreeMap<Sym, Vec<usize>> = BTreeMap::new();
        for (id, node) in exprs.iter_mut().enumerate() {
            for v in &node.vars {
                sym_index.entry(v.clone()).or_default().push(id);
            }
            node.value = node.expr.eval(&bindings)?;
            node.fingerprint = input_fingerprint(&node.vars, &bindings);
        }

        let mut expr_comps: Vec<Vec<usize>> = vec![Vec::new(); exprs.len()];
        for (ci, comp) in comps.iter().enumerate() {
            let feed = |id: usize, expr_comps: &mut Vec<Vec<usize>>| {
                if expr_comps[id].last() != Some(&ci) {
                    expr_comps[id].push(ci);
                }
            };
            feed(comp.count, &mut expr_comps);
            match comp.distance {
                DistRef::Infinite => {}
                DistRef::Constant(d) => feed(d, &mut expr_comps),
                DistRef::Varying(lo, hi) => {
                    feed(lo, &mut expr_comps);
                    feed(hi, &mut expr_comps);
                }
            }
        }

        let mut sizes: Vec<u64> = cache_sizes.to_vec();
        sizes.sort_unstable();
        sizes.dedup();

        let mut dag = ModelDag {
            exprs,
            comps,
            sym_index,
            expr_comps,
            bindings,
            cache_sizes: sizes,
            comp_misses: Vec::new(),
            totals: Vec::new(),
            stats: DagStats::default(),
        };
        for k in 0..dag.cache_sizes.len() {
            let (row, total) = dag.price_size(dag.cache_sizes[k])?;
            dag.comp_misses.push(row);
            dag.totals.push(total);
        }
        span.add("exprs", dag.exprs.len() as u64);
        span.add("components", dag.comps.len() as u64);
        span.add("cache_sizes", dag.cache_sizes.len() as u64);
        Ok(dag)
    }

    /// Evaluate one component against the *current* expression values.
    fn comp_prediction(&self, ci: usize, cache_size: u64) -> Result<u64, ModelError> {
        let comp = &self.comps[ci];
        let count = self.exprs[comp.count].value;
        let distance = match comp.distance {
            DistRef::Infinite => DistanceValues::Infinite,
            DistRef::Constant(d) => DistanceValues::Constant(self.exprs[d].value),
            DistRef::Varying(lo, hi) => DistanceValues::Varying {
                lo: self.exprs[lo].value,
                hi: self.exprs[hi].value,
            },
        };
        Ok(predict_from_values(count, distance, cache_size)?.misses)
    }

    /// Price every component for one cache size: the full miss-cell row
    /// plus its total, in component order (matching
    /// [`MissModel::predict_misses`] exactly).
    fn price_size(&self, cache_size: u64) -> Result<(Vec<u64>, u64), ModelError> {
        let mut row = Vec::with_capacity(self.comps.len());
        let mut total = 0u64;
        for ci in 0..self.comps.len() {
            let m = self.comp_prediction(ci, cache_size)?;
            total += m;
            row.push(m);
        }
        Ok((row, total))
    }

    /// Apply one structured delta: rebind symbols, optionally replace the
    /// cache-size set, re-evaluate only what the changes feed.
    pub fn revise(&mut self, delta: &DagDelta) -> Result<ReviseOutcome, ModelError> {
        let span = sdlo_trace::span(sdlo_trace::names::REVISE_APPLY_DELTA);

        // Which symbols actually changed value?
        let changed: Vec<&Sym> = delta
            .bindings
            .iter()
            .filter(|(s, v)| self.bindings.get(s) != Some(*v))
            .map(|(s, _)| s)
            .collect();

        let mut staged_bindings = self.bindings.clone();
        staged_bindings.extend(&delta.bindings);

        // Dirty set: expression nodes reading any changed symbol.
        let mut dirty: BTreeSet<usize> = BTreeSet::new();
        for s in &changed {
            if let Some(ids) = self.sym_index.get(s) {
                dirty.extend(ids.iter().copied());
            }
        }

        // Stage re-evaluations; the fingerprint decides reuse.
        let mut reevaluated: Vec<(usize, i64, u64)> = Vec::new();
        let mut nodes_reused = (self.exprs.len() - dirty.len()) as u64;
        for id in &dirty {
            let node = &self.exprs[*id];
            let fp = input_fingerprint(&node.vars, &staged_bindings);
            if fp == node.fingerprint {
                nodes_reused += 1;
                continue;
            }
            reevaluated.push((*id, node.expr.eval(&staged_bindings)?, fp));
        }
        let nodes_reevaluated = reevaluated.len() as u64;

        // Commit expression values (totals still reflect the old cells).
        for (id, value, fp) in &reevaluated {
            self.exprs[*id].value = *value;
            self.exprs[*id].fingerprint = *fp;
        }
        self.bindings = staged_bindings;

        // Components fed by a re-evaluated node.
        let mut touched: BTreeSet<usize> = BTreeSet::new();
        for (id, _, _) in &reevaluated {
            touched.extend(self.expr_comps[*id].iter().copied());
        }

        // Reconcile the cache-size set: kept sizes keep their rows.
        let mut cells_recomputed = 0u64;
        if let Some(sizes) = &delta.cache_sizes {
            let mut new_sizes = sizes.clone();
            new_sizes.sort_unstable();
            new_sizes.dedup();
            let mut comp_misses = Vec::with_capacity(new_sizes.len());
            let mut totals = Vec::with_capacity(new_sizes.len());
            for cs in &new_sizes {
                match self.cache_sizes.binary_search(cs) {
                    Ok(k) => {
                        comp_misses.push(std::mem::take(&mut self.comp_misses[k]));
                        totals.push(self.totals[k]);
                    }
                    Err(_) => {
                        let (row, total) = self.price_size(*cs)?;
                        cells_recomputed += row.len() as u64;
                        comp_misses.push(row);
                        totals.push(total);
                    }
                }
            }
            self.cache_sizes = new_sizes;
            self.comp_misses = comp_misses;
            self.totals = totals;
        }

        // Recompute the touched miss cells for every tracked size, updating
        // totals incrementally.
        for (k, cs) in self.cache_sizes.iter().enumerate() {
            for ci in &touched {
                let fresh = self.comp_prediction(*ci, *cs)?;
                cells_recomputed += 1;
                let stale = std::mem::replace(&mut self.comp_misses[k][*ci], fresh);
                self.totals[k] = self.totals[k] - stale + fresh;
            }
        }

        self.stats.revisions += 1;
        self.stats.nodes_reevaluated += nodes_reevaluated;
        self.stats.nodes_reused += nodes_reused;
        span.add("changed_symbols", changed.len() as u64);
        span.add("nodes_reevaluated", nodes_reevaluated);
        span.add("nodes_reused", nodes_reused);
        span.add("cells_recomputed", cells_recomputed);
        Ok(ReviseOutcome {
            nodes_reevaluated,
            nodes_reused,
            cells_recomputed,
            misses: self.misses(),
        })
    }

    /// Current totals per tracked cache size, ascending.
    pub fn misses(&self) -> Vec<(u64, u64)> {
        self.cache_sizes
            .iter()
            .copied()
            .zip(self.totals.iter().copied())
            .collect()
    }

    /// Current total for one tracked cache size.
    pub fn misses_for(&self, cache_size: u64) -> Option<u64> {
        self.cache_sizes
            .binary_search(&cache_size)
            .ok()
            .map(|k| self.totals[k])
    }

    /// The DAG's current bindings.
    pub fn bindings(&self) -> &Bindings {
        &self.bindings
    }

    /// The tracked cache sizes, ascending.
    pub fn cache_sizes(&self) -> &[u64] {
        &self.cache_sizes
    }

    /// Interned expression nodes (the memoizable layer).
    pub fn expr_count(&self) -> usize {
        self.exprs.len()
    }

    /// Components priced by the DAG.
    pub fn component_count(&self) -> usize {
        self.comps.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> DagStats {
        self.stats
    }

    /// The symbols any expression in the DAG reads — exactly the bindings a
    /// cold start must provide.
    pub fn required_symbols(&self) -> Vec<Sym> {
        self.sym_index.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdlo_ir::programs;

    fn tmm(n: i128, t: (i128, i128, i128)) -> Bindings {
        Bindings::new()
            .with("Ni", n)
            .with("Nj", n)
            .with("Nk", n)
            .with("Ti", t.0)
            .with("Tj", t.1)
            .with("Tk", t.2)
    }

    #[test]
    fn matches_cold_rebuild_on_table3_cases() {
        let model = MissModel::build(&programs::tiled_matmul());
        let mut dag = ModelDag::new(&model, tmm(512, (32, 32, 32)), &[2048, 8192]).unwrap();
        let cases = [
            (512, (64, 64, 64)),
            (512, (128, 128, 128)),
            (256, (64, 32, 32)),
            (256, (64, 64, 64)),
            (256, (32, 64, 128)),
        ];
        for (n, t) in cases {
            let out = dag
                .revise(&DagDelta {
                    bindings: tmm(n, t),
                    cache_sizes: None,
                })
                .unwrap();
            for (cs, got) in out.misses {
                let want = model.predict_misses(&tmm(n, t), cs).unwrap();
                assert_eq!(got, want, "N={n} tiles={t:?} CS={cs}");
            }
        }
    }

    #[test]
    fn tile_only_delta_reuses_bound_only_nodes() {
        let model = MissModel::build(&programs::tiled_matmul());
        let mut dag = ModelDag::new(&model, tmm(512, (32, 32, 32)), &[8192]).unwrap();
        // Change a single tile: some expressions must be untouched (e.g.
        // pure bound products), so reuse is non-trivial.
        let out = dag
            .revise(&DagDelta {
                bindings: Bindings::new().with("Ti", 64),
                cache_sizes: None,
            })
            .unwrap();
        assert!(out.nodes_reused > 0, "{out:?}");
        assert!(out.nodes_reevaluated > 0, "{out:?}");
        assert!(
            out.nodes_reevaluated < dag.expr_count() as u64,
            "expected partial re-evaluation: {out:?}"
        );
    }

    #[test]
    fn noop_delta_reuses_everything() {
        let model = MissModel::build(&programs::tiled_matmul());
        let mut dag = ModelDag::new(&model, tmm(256, (64, 64, 64)), &[8192]).unwrap();
        let before = dag.misses();
        let out = dag
            .revise(&DagDelta {
                bindings: Bindings::new().with("Ti", 64),
                cache_sizes: None,
            })
            .unwrap();
        assert_eq!(out.nodes_reevaluated, 0);
        assert_eq!(out.nodes_reused, dag.expr_count() as u64);
        assert_eq!(out.misses, before);
    }

    #[test]
    fn cache_size_delta_keeps_rows_and_adds_new() {
        let model = MissModel::build(&programs::tiled_matmul());
        let b = tmm(512, (64, 64, 64));
        let mut dag = ModelDag::new(&model, b.clone(), &[8192]).unwrap();
        let out = dag
            .revise(&DagDelta {
                bindings: Bindings::new(),
                cache_sizes: Some(vec![2048, 8192]),
            })
            .unwrap();
        assert_eq!(out.nodes_reevaluated, 0);
        assert_eq!(
            out.misses,
            vec![
                (2048, model.predict_misses(&b, 2048).unwrap()),
                (8192, model.predict_misses(&b, 8192).unwrap()),
            ]
        );
        // Only the new size paid any cells.
        assert_eq!(out.cells_recomputed, dag.component_count() as u64);
    }

    #[test]
    fn failed_revise_leaves_state_intact() {
        let model = MissModel::build(&programs::tiled_matmul());
        let mut dag = ModelDag::new(&model, tmm(256, (32, 32, 32)), &[2048]).unwrap();
        let before = dag.misses();
        let before_bindings = dag.bindings().clone();
        // Unbinding is impossible via a delta, but a division by zero is
        // reachable: Ti = 0 makes ceil-div terms blow up.
        let err = dag.revise(&DagDelta {
            bindings: Bindings::new().with("Ti", 0),
            cache_sizes: None,
        });
        assert!(err.is_err());
        assert_eq!(dag.misses(), before);
        assert_eq!(dag.bindings(), &before_bindings);
        // Still serviceable after the failure.
        let out = dag
            .revise(&DagDelta {
                bindings: Bindings::new().with("Ti", 64),
                cache_sizes: None,
            })
            .unwrap();
        let want = model
            .predict_misses(&tmm(256, (32, 32, 32)).with("Ti", 64), 2048)
            .unwrap();
        assert_eq!(out.misses, vec![(2048, want)]);
    }

    #[test]
    fn two_index_program_agrees_across_deltas() {
        let model = MissModel::build(&programs::tiled_two_index());
        let base = Bindings::new()
            .with("Ni", 64)
            .with("Nj", 64)
            .with("Nm", 64)
            .with("Nn", 64)
            .with("Ti", 16)
            .with("Tj", 8)
            .with("Tm", 8)
            .with("Tn", 16);
        let sizes = [256u64, 4096, 65536];
        let mut dag = ModelDag::new(&model, base.clone(), &sizes).unwrap();
        for (sym, val) in [("Ti", 8), ("Nn", 128), ("Tm", 32), ("Nj", 32)] {
            let out = dag
                .revise(&DagDelta {
                    bindings: Bindings::new().with(sym, val),
                    cache_sizes: None,
                })
                .unwrap();
            for (cs, got) in out.misses {
                let want = model.predict_misses(dag.bindings(), cs).unwrap();
                assert_eq!(got, want, "{sym}={val} CS={cs}");
            }
        }
    }

    #[test]
    fn required_symbols_cover_free_symbols() {
        let p = programs::tiled_matmul();
        let model = MissModel::build(&p);
        let dag = ModelDag::new(&model, tmm(64, (8, 8, 8)), &[1024]).unwrap();
        let req = dag.required_symbols();
        for s in p.free_symbols() {
            assert!(req.contains(&s), "missing {s:?}");
        }
    }
}
