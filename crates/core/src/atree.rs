//! Per-array loop trees.
//!
//! The paper's partitioning algorithm (§5.1, Fig. 3) operates on "a tree
//! representing the loop structure for each array, created by deleting all
//! the loop nests which do not contain any reference to that array". This
//! module builds that filtered tree and the leaf paths the partition walk
//! needs.

use sdlo_ir::{ArrayId, Expr, Program, StmtId, Sym};

/// A node of the per-array tree.
#[derive(Debug, Clone)]
pub enum ANode {
    /// A loop that (transitively) contains references to the array.
    Loop {
        /// Loop index variable.
        index: Sym,
        /// Symbolic trip count.
        bound: Expr,
        /// Children in program order.
        body: Vec<ANode>,
    },
    /// A statement referencing the array.
    Leaf {
        /// The statement.
        stmt: StmtId,
        /// Index of the reference to this array within the statement.
        ref_idx: usize,
    },
}

impl ANode {
    /// The rightmost (= last in program order) leaf of this subtree.
    pub fn rightmost_leaf(&self) -> (StmtId, usize) {
        match self {
            ANode::Leaf { stmt, ref_idx } => (*stmt, *ref_idx),
            ANode::Loop { body, .. } => body
                .last()
                .expect("per-array loop nodes are non-empty by construction")
                .rightmost_leaf(),
        }
    }

    /// Visit every leaf in program order.
    pub fn for_each_leaf(&self, f: &mut impl FnMut(StmtId, usize)) {
        match self {
            ANode::Leaf { stmt, ref_idx } => f(*stmt, *ref_idx),
            ANode::Loop { body, .. } => {
                for n in body {
                    n.for_each_leaf(f);
                }
            }
        }
    }
}

/// The filtered loop tree of one array.
#[derive(Debug, Clone)]
pub struct ATree {
    /// The array this tree describes.
    pub array: ArrayId,
    /// Top-level children in program order.
    pub root: Vec<ANode>,
}

impl ATree {
    /// Build the per-array tree for `array` from `program`.
    pub fn build(program: &Program, array: ArrayId) -> ATree {
        fn filter(node: &sdlo_ir::Node, array: ArrayId) -> Option<ANode> {
            match node {
                sdlo_ir::Node::Stmt(s) => {
                    s.refs
                        .iter()
                        .position(|r| r.array == array)
                        .map(|ref_idx| ANode::Leaf {
                            stmt: s.id,
                            ref_idx,
                        })
                }
                sdlo_ir::Node::Loop(l) => {
                    let body: Vec<ANode> = l.body.iter().filter_map(|n| filter(n, array)).collect();
                    if body.is_empty() {
                        None
                    } else {
                        Some(ANode::Loop {
                            index: l.index.clone(),
                            bound: l.bound.clone(),
                            body,
                        })
                    }
                }
            }
        }
        ATree {
            array,
            root: program
                .root
                .iter()
                .filter_map(|n| filter(n, array))
                .collect(),
        }
    }

    /// All leaves in program order.
    pub fn leaves(&self) -> Vec<(StmtId, usize)> {
        let mut out = Vec::new();
        for n in &self.root {
            n.for_each_leaf(&mut |s, r| out.push((s, r)));
        }
        out
    }

    /// The path from the root to the leaf for `stmt`: a list of
    /// `(sequence, child position)` pairs, outermost first. The sequence at
    /// level 0 is `self.root`; deeper sequences are loop bodies. Returns
    /// `None` if the statement does not reference this array.
    pub fn path_to(&self, stmt: StmtId) -> Option<Vec<PathStep<'_>>> {
        fn walk<'a>(
            seq: &'a [ANode],
            owner: Option<(&'a Sym, &'a Expr)>,
            stmt: StmtId,
            acc: &mut Vec<PathStep<'a>>,
        ) -> bool {
            for (pos, child) in seq.iter().enumerate() {
                acc.push(PathStep { seq, pos, owner });
                match child {
                    ANode::Leaf { stmt: s, .. } if *s == stmt => return true,
                    ANode::Leaf { .. } => {}
                    ANode::Loop { index, bound, body } => {
                        if walk(body, Some((index, bound)), stmt, acc) {
                            return true;
                        }
                    }
                }
                acc.pop();
            }
            false
        }
        let mut acc = Vec::new();
        if walk(&self.root, None, stmt, &mut acc) {
            Some(acc)
        } else {
            None
        }
    }
}

/// One step of a leaf path: a position within a sequence of siblings, plus
/// the loop owning that sequence (`None` at the program root).
#[derive(Debug, Clone, Copy)]
pub struct PathStep<'a> {
    /// The sibling sequence at this level.
    pub seq: &'a [ANode],
    /// Position of the child on the path within `seq`.
    pub pos: usize,
    /// The loop whose body is `seq` (`None` for the root sequence).
    pub owner: Option<(&'a Sym, &'a Expr)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdlo_ir::programs;

    #[test]
    fn matmul_trees_are_single_leaves() {
        let p = programs::matmul();
        for name in ["A", "B", "C"] {
            let id = p.array_by_name(name).unwrap().id;
            let t = ATree::build(&p, id);
            assert_eq!(t.leaves().len(), 1, "{name}");
        }
    }

    #[test]
    fn two_index_t_tree_has_three_leaves() {
        let p = programs::tiled_two_index();
        let t_id = p.array_by_name("T").unwrap().id;
        let t = ATree::build(&p, t_id);
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 3);
        // S1 (zero), S2 (produce), S3 (consume) in program order.
        assert_eq!(leaves[0].0, StmtId(1));
        assert_eq!(leaves[1].0, StmtId(2));
        assert_eq!(leaves[2].0, StmtId(3));
        // The root of T's tree must contain only the iT loop (the B-init nest
        // does not reference T).
        assert_eq!(t.root.len(), 1);
        match &t.root[0] {
            ANode::Loop { index, .. } => assert_eq!(index.name(), "iT"),
            ANode::Leaf { .. } => panic!("expected loop"),
        }
    }

    #[test]
    fn b_tree_keeps_init_nest() {
        let p = programs::tiled_two_index();
        let b_id = p.array_by_name("B").unwrap().id;
        let t = ATree::build(&p, b_id);
        assert_eq!(t.root.len(), 2); // init nest + main nest
        assert_eq!(t.leaves().len(), 2); // S0 and S3
    }

    #[test]
    fn path_to_reports_positions_and_owners() {
        let p = programs::tiled_two_index();
        let t_id = p.array_by_name("T").unwrap().id;
        let t = ATree::build(&p, t_id);
        // Path to S2 (produce): root(iT) → nT → produce-branch(jT) → iI → nI → jI → leaf.
        let path = t.path_to(StmtId(2)).unwrap();
        let owners: Vec<String> = path
            .iter()
            .map(|s| {
                s.owner
                    .map(|(i, _)| i.name().to_string())
                    .unwrap_or("<root>".into())
            })
            .collect();
        assert_eq!(owners, ["<root>", "iT", "nT", "jT", "iI", "nI", "jI"]);
        // Within nT's body, the produce branch is child 1 (after the zero branch).
        assert_eq!(path[2].pos, 1);
        // No path for a statement that does not touch T.
        assert!(t.path_to(StmtId(0)).is_none());
    }

    #[test]
    fn rightmost_leaf_of_main_nest_is_s3() {
        let p = programs::tiled_two_index();
        let t_id = p.array_by_name("T").unwrap().id;
        let t = ATree::build(&p, t_id);
        assert_eq!(t.root[0].rightmost_leaf().0, StmtId(3));
    }
}
