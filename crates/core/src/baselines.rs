//! Baseline cache-behaviour models from the paper's §3.
//!
//! The paper contrasts stack distances with two weaker metrics before
//! adopting them:
//!
//! * **Reuse distance** — iterations between successive touches of the same
//!   element. Cheap, but "improvements in reuse distance may not necessarily
//!   translate to improvements in cache miss cost" (§3): it ignores how much
//!   *other* data intervenes. [`reuse_distance_misses`] makes that model
//!   concrete so benchmarks can quantify the gap.
//! * **Capacity misses / distinct accesses** (Cociorva et al., paper ref. 10) — find
//!   the loop level whose one-iteration footprint no longer fits in cache
//!   and charge a full reload per iteration. Ignores interference between
//!   references and partial reuse. Implemented by
//!   [`capacity_miss_estimate`].

use crate::extent::{seq_costs, subtree_costs};
use sdlo_ir::{Bindings, CompiledProgram, Expr, Node, Program};

/// Miss estimate of the *reuse distance* model: an access is charged as a
/// miss iff the number of **accesses** (a proxy for iterations) since the
/// previous touch of the same element exceeds `window`.
///
/// Trace-driven; exact for the model it implements, which is itself
/// deliberately naive — it counts intervening accesses rather than
/// intervening *distinct* elements.
pub fn reuse_distance_misses(program: &CompiledProgram, window: u64) -> u64 {
    let mut last = vec![u64::MAX; program.total_elements() as usize];
    let mut time = 0u64;
    let mut misses = 0u64;
    program.walk(&mut |a| {
        let prev = last[a.addr as usize];
        if prev == u64::MAX || time - prev > window {
            misses += 1;
        }
        last[a.addr as usize] = time;
        time += 1;
    });
    misses
}

/// Miss estimate of the *capacity miss* model: descend the loop tree; when a
/// subtree's total data footprint fits in cache, charge one load of that
/// footprint per enclosing iteration; otherwise recurse. At a statement,
/// charge every reference.
pub fn capacity_miss_estimate(
    program: &Program,
    bindings: &Bindings,
    cache_size: u64,
) -> Result<u64, sdlo_symbolic::EvalError> {
    fn eval(e: &Expr, b: &Bindings) -> Result<u64, sdlo_symbolic::EvalError> {
        Ok(e.eval(b)?.max(0) as u64)
    }
    fn walk(
        node: &Node,
        bindings: &Bindings,
        cache_size: u64,
        enclosing_iters: u64,
    ) -> Result<u64, sdlo_symbolic::EvalError> {
        let footprint = eval(&subtree_costs(node).total(), bindings)?;
        if footprint <= cache_size {
            // Whole subtree fits: loaded once per enclosing iteration.
            return Ok(enclosing_iters.saturating_mul(footprint));
        }
        match node {
            Node::Stmt(s) => Ok(enclosing_iters.saturating_mul(s.refs.len() as u64)),
            Node::Loop(l) => {
                let trips = eval(&l.bound, bindings)?;
                let inner_iters = enclosing_iters.saturating_mul(trips);
                let mut total = 0u64;
                for n in &l.body {
                    total = total.saturating_add(walk(n, bindings, cache_size, inner_iters)?);
                }
                Ok(total)
            }
        }
    }
    let mut total = 0u64;
    for n in &program.root {
        total = total.saturating_add(walk(n, bindings, cache_size, 1)?);
    }
    Ok(total)
}

/// The total data footprint (distinct elements) of the whole program —
/// the lower bound any model must respect (cold misses).
pub fn total_footprint(
    program: &Program,
    bindings: &Bindings,
) -> Result<u64, sdlo_symbolic::EvalError> {
    Ok(seq_costs(&program.root).total().eval(bindings)?.max(0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdlo_ir::programs;

    fn square(n: i128) -> Bindings {
        Bindings::new().with("Ni", n).with("Nj", n).with("Nk", n)
    }

    #[test]
    fn capacity_model_whole_problem_fits() {
        let p = programs::matmul();
        let b = square(8);
        // Footprint 3·64 = 192 ≤ 1000: one load of everything.
        assert_eq!(capacity_miss_estimate(&p, &b, 1000).unwrap(), 192);
    }

    #[test]
    fn capacity_model_degrades_with_tiny_cache() {
        let p = programs::matmul();
        let b = square(8);
        // Cache of 2: nothing fits, every reference is charged.
        let m = capacity_miss_estimate(&p, &b, 2).unwrap();
        assert_eq!(m, 8 * 8 * 8 * 3);
    }

    #[test]
    fn capacity_model_intermediate_level() {
        let p = programs::matmul();
        let b = square(8);
        // One i-iteration footprint: A row 8 + B 64 + C row 8 = 80 ≤ 100,
        // whole problem 192 > 100 → 8 iterations × 80.
        assert_eq!(capacity_miss_estimate(&p, &b, 100).unwrap(), 8 * 80);
    }

    #[test]
    fn reuse_distance_model_bounds() {
        let p = programs::matmul();
        let c = sdlo_ir::CompiledProgram::compile(&p, &square(6)).unwrap();
        // Infinite window: only cold misses.
        let cold = reuse_distance_misses(&c, u64::MAX);
        assert_eq!(cold, 3 * 36);
        // Zero window: everything except immediate re-touches misses.
        let all = reuse_distance_misses(&c, 0);
        assert!(all > cold);
        assert!(all <= c.total_accesses());
    }

    #[test]
    fn reuse_distance_blind_to_interference() {
        // The §3 criticism: reuse distance can claim hits where a true LRU
        // cache misses. Construct the comparison on matmul with a small
        // cache: the reuse-distance model with window = capacity under-
        // estimates misses relative to exact stack distances.
        let p = programs::matmul();
        let b = square(16);
        let c = sdlo_ir::CompiledProgram::compile(&p, &b).unwrap();
        let h = sdlo_cachesim::simulate_stack_distances(&c, sdlo_cachesim::Granularity::Element);
        let disagree = [8u64, 16, 32, 64, 128, 256, 300, 512]
            .iter()
            .any(|&capacity| reuse_distance_misses(&c, capacity) != h.misses(capacity));
        assert!(disagree, "models should disagree under interference");
    }

    #[test]
    fn footprint_matches_compiled_elements() {
        let p = programs::matmul();
        let b = square(8);
        let c = sdlo_ir::CompiledProgram::compile(&p, &b).unwrap();
        assert_eq!(total_footprint(&p, &b).unwrap(), c.total_elements());
    }
}
