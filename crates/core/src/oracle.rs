//! Ground-truth oracles for validating the symbolic model.
//!
//! Everything here is exact and brute-force: it exists so the test suite can
//! pin the compile-time model to reality on sizes small enough to simulate.

use sdlo_ir::{CompiledProgram, Program, StmtId};
use std::collections::BTreeMap;

/// Exact per-reference miss counts from a full LRU stack-distance
/// simulation: key is `(statement, reference index within the statement)`.
pub fn per_reference_misses(
    program: &Program,
    compiled: &CompiledProgram,
    cache_size: u64,
) -> BTreeMap<(StmtId, usize), u64> {
    let nrefs: BTreeMap<StmtId, usize> = {
        let mut m = BTreeMap::new();
        program.for_each_stmt(|s| {
            m.insert(s.id, s.refs.len());
        });
        m
    };
    let mut engine =
        sdlo_cachesim::StackDistanceEngine::with_dense_addresses(compiled.total_elements());
    let mut out: BTreeMap<(StmtId, usize), u64> = BTreeMap::new();
    // References of one statement instance are emitted consecutively in
    // declaration order, so a per-statement counter recovers the ref index.
    let mut cursor: BTreeMap<StmtId, usize> = BTreeMap::new();
    compiled.walk(&mut |a| {
        let n = nrefs[&a.stmt];
        let c = cursor.entry(a.stmt).or_insert(0);
        let ref_idx = *c;
        *c = (*c + 1) % n;
        let miss = match engine.access(a.addr) {
            sdlo_cachesim::Distance::Cold => true,
            sdlo_cachesim::Distance::Finite(d) => d >= cache_size,
        };
        if miss {
            *out.entry((a.stmt, ref_idx)).or_insert(0) += 1;
        }
    });
    out
}

/// Exact total misses (fully associative LRU, element granularity).
pub fn exact_misses(compiled: &CompiledProgram, cache_size: u64) -> u64 {
    sdlo_cachesim::simulate_fully_associative(
        compiled,
        cache_size,
        sdlo_cachesim::Granularity::Element,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdlo_ir::{programs, Bindings};

    #[test]
    fn per_reference_misses_sum_to_total() {
        let p = programs::tiled_matmul();
        let b = Bindings::new()
            .with("Ni", 16)
            .with("Nj", 16)
            .with("Nk", 16)
            .with("Ti", 4)
            .with("Tj", 4)
            .with("Tk", 4);
        let c = sdlo_ir::CompiledProgram::compile(&p, &b).unwrap();
        for cs in [8u64, 64, 512] {
            let per = per_reference_misses(&p, &c, cs);
            let total: u64 = per.values().sum();
            assert_eq!(total, exact_misses(&c, cs), "cs={cs}");
        }
    }
}
