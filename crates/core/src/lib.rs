//! # sdlo-core
//!
//! The paper's primary contribution: **compile-time cache-miss
//! characterization for imperfectly nested loops** via iteration-space
//! partitioning and symbolic stack distances (Sahoo et al., IPPS 2005,
//! §4–5).
//!
//! Pipeline:
//!
//! 1. [`partition::all_components`] splits the iteration space of every
//!    array reference into components whose instances share the same
//!    incoming dependence (Fig. 3),
//! 2. each component receives a symbolic [`StackDistance`] — the number of
//!    distinct elements accessed within its reuse span (Figs. 4–5),
//! 3. [`MissModel`] evaluates the components against concrete bounds/tile
//!    sizes and a cache capacity: every instance whose stack distance
//!    reaches the capacity is a predicted miss.
//!
//! The crate also ships the §3 baseline models ([`baselines`]) the paper
//! compares against conceptually, and a brute-force [`oracle`] used by the
//! test suite to pin the symbolic engine to ground truth on small sizes.

/// Revision of the model *semantics*: what the components of a
/// [`MissModel`] mean and how they are derived. Bump whenever partitioning
/// or stack-distance computation changes in a way that makes previously
/// built models stale — persisted model-cache entries are stamped with this
/// and silently rebuilt on mismatch.
pub const MODEL_REVISION: u32 = 1;

pub mod atree;
pub mod baselines;
pub mod dag;
pub mod extent;
pub mod model;
pub mod oracle;
pub mod partition;

pub use atree::{ANode, ATree};
pub use dag::{DagDelta, DagStats, ModelDag, ReviseOutcome};
pub use extent::{seq_costs, subtree_costs, CostMap};
pub use model::{ComponentPrediction, MissModel, ModelError};
pub use partition::{all_components, components_for, Component, ComponentKind, StackDistance};
