//! Symbolic distinct-element counting.
//!
//! The stack distance of a reuse is the number of **distinct** elements (of
//! every array) accessed inside the reuse span. For the TCE loop class, a
//! span decomposes into whole subtree traversals plus boundary
//! suffixes/prefixes, and the distinct count of one reference over a whole
//! subtree is a product of trip counts of the *free* loops contributing to
//! each subscript dimension. This module computes those per-array counts.

use sdlo_ir::{ArrayId, ArrayRef, Expr, Node, Sym};
use std::collections::{BTreeMap, BTreeSet};

/// Per-array distinct-element counts (symbolic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostMap {
    map: BTreeMap<ArrayId, Vec<Vec<Expr>>>,
}

impl CostMap {
    /// Record one reference's per-dimension extent vector.
    fn push(&mut self, array: ArrayId, dims: Vec<Expr>) {
        let boxes = self.map.entry(array).or_default();
        // Union rule: identical boxes cover the same elements — count once.
        // Distinct boxes are summed (overlap between genuinely different
        // boxes does not occur in the TCE reference class: references to the
        // same array in one program use identical subscript shapes).
        if !boxes.contains(&dims) {
            boxes.push(dims);
        }
    }

    /// Merge another cost map (union semantics per array).
    pub fn merge(&mut self, other: &CostMap) {
        for (a, boxes) in &other.map {
            for b in boxes {
                self.push(*a, b.clone());
            }
        }
    }

    /// Distinct count for one array.
    pub fn array_cost(&self, array: ArrayId) -> Expr {
        match self.map.get(&array) {
            None => Expr::zero(),
            Some(boxes) => boxes
                .iter()
                .map(|dims| dims.iter().fold(Expr::one(), |acc, d| acc * d.clone()))
                .fold(Expr::zero(), |acc, x| acc + x),
        }
    }

    /// Total distinct count across all arrays (arrays occupy disjoint
    /// address ranges, so the sum is exact given per-array counts).
    pub fn total(&self) -> Expr {
        self.map
            .keys()
            .map(|a| self.array_cost(*a))
            .fold(Expr::zero(), |acc, x| acc + x)
    }

    /// Arrays present in the map.
    pub fn arrays(&self) -> impl Iterator<Item = ArrayId> + '_ {
        self.map.keys().copied()
    }

    /// Whether the map mentions `array`.
    pub fn contains(&self, array: ArrayId) -> bool {
        self.map.contains_key(&array)
    }

    /// Restrict to a single array.
    pub fn only(&self, array: ArrayId) -> CostMap {
        let mut out = CostMap::default();
        if let Some(boxes) = self.map.get(&array) {
            out.map.insert(array, boxes.clone());
        }
        out
    }

    /// Drop one array from the map.
    pub fn without(&self, array: ArrayId) -> CostMap {
        let mut out = self.clone();
        out.map.remove(&array);
        out
    }
}

/// Environment for extent computation: which loop indices are *free*
/// (iterate over their full range inside the region being costed) and the
/// trip count of every loop.
#[derive(Debug, Clone, Default)]
pub struct ExtentCtx {
    /// Trip count per loop index (loops on the path into the region).
    bounds: BTreeMap<Sym, Expr>,
    /// Indices considered free (full range) in the region.
    free: BTreeSet<Sym>,
}

impl ExtentCtx {
    /// Empty context: all indices fixed.
    pub fn new() -> Self {
        Self::default()
    }

    fn enter(&mut self, index: &Sym, bound: &Expr) -> Option<(Sym, Option<Expr>)> {
        let prev = self.bounds.insert(index.clone(), bound.clone());
        let newly_free = self.free.insert(index.clone());
        if newly_free {
            Some((index.clone(), prev))
        } else {
            None
        }
    }

    fn exit(&mut self, token: Option<(Sym, Option<Expr>)>) {
        if let Some((index, prev)) = token {
            self.free.remove(&index);
            match prev {
                Some(b) => {
                    self.bounds.insert(index, b);
                }
                None => {
                    self.bounds.remove(&index);
                }
            }
        }
    }

    /// Extent of one subscript dimension: the product of trip counts of the
    /// free indices contributing to it (fixed indices contribute a single
    /// value).
    pub fn dim_extent(&self, dim: &sdlo_ir::DimExpr) -> Expr {
        dim.parts.iter().fold(Expr::one(), |acc, (idx, _)| {
            if self.free.contains(idx) {
                acc * self.bounds[idx].clone()
            } else {
                acc
            }
        })
    }

    fn ref_extents(&self, r: &ArrayRef) -> Vec<Expr> {
        r.dims.iter().map(|d| self.dim_extent(d)).collect()
    }
}

/// Distinct-element costs of executing `seq` once in full, with every loop
/// inside `seq` free and every enclosing loop fixed.
pub fn seq_costs(seq: &[Node]) -> CostMap {
    let mut ctx = ExtentCtx::new();
    let mut out = CostMap::default();
    for n in seq {
        collect(n, &mut ctx, &mut out);
    }
    out
}

/// Distinct-element costs of one full traversal of `node`.
pub fn subtree_costs(node: &Node) -> CostMap {
    let mut ctx = ExtentCtx::new();
    let mut out = CostMap::default();
    collect(node, &mut ctx, &mut out);
    out
}

fn collect(node: &Node, ctx: &mut ExtentCtx, out: &mut CostMap) {
    match node {
        Node::Loop(l) => {
            let tok = ctx.enter(&l.index, &l.bound);
            for n in &l.body {
                collect(n, ctx, out);
            }
            ctx.exit(tok);
        }
        Node::Stmt(s) => {
            for r in &s.refs {
                out.push(r.array, ctx.ref_extents(r));
            }
        }
    }
}

/// Costs of one iteration of the body of loop `outer` restricted to the
/// subtree below it, i.e. with `outer`'s own index fixed and everything
/// inside its body free.
pub fn loop_body_costs(outer: &sdlo_ir::LoopNode) -> CostMap {
    seq_costs(&outer.body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdlo_ir::{programs, Bindings};

    fn expect(e: &Expr, bindings: &Bindings, v: i64) {
        assert_eq!(e.eval(bindings).unwrap(), v, "expr {e}");
    }

    #[test]
    fn matmul_full_program_costs() {
        let p = programs::matmul();
        let m = seq_costs(&p.root);
        let b = Bindings::new().with("Ni", 4).with("Nj", 5).with("Nk", 6);
        expect(&m.array_cost(p.array_by_name("A").unwrap().id), &b, 20);
        expect(&m.array_cost(p.array_by_name("B").unwrap().id), &b, 30);
        expect(&m.array_cost(p.array_by_name("C").unwrap().id), &b, 24);
        expect(&m.total(), &b, 74);
    }

    #[test]
    fn inner_loop_body_costs_fix_outer_indices() {
        // One iteration of matmul's j loop (body = k loop): A is fixed to a
        // single element, B and C to one row / one row.
        let p = programs::matmul();
        let Node::Loop(i) = &p.root[0] else { panic!() };
        let Node::Loop(j) = &i.body[0] else { panic!() };
        let m = loop_body_costs(j);
        let b = Bindings::new().with("Ni", 4).with("Nj", 5).with("Nk", 6);
        expect(&m.array_cost(p.array_by_name("A").unwrap().id), &b, 1);
        expect(&m.array_cost(p.array_by_name("B").unwrap().id), &b, 6);
        expect(&m.array_cost(p.array_by_name("C").unwrap().id), &b, 6);
    }

    #[test]
    fn tiled_two_index_nt_body_costs() {
        // One iteration of the nT loop: T is the whole tile buffer, A a
        // Ti × Nj slab, C2 a Tn × Nj slab, B an Nm × Tn slab, C1 Nm × Ti.
        let p = programs::tiled_two_index();
        let Node::Loop(it) = &p.root[1] else { panic!() };
        let Node::Loop(nt) = &it.body[0] else {
            panic!()
        };
        let m = loop_body_costs(nt);
        let b = Bindings::new()
            .with("Ni", 16)
            .with("Nj", 16)
            .with("Nm", 16)
            .with("Nn", 16)
            .with("Ti", 4)
            .with("Tj", 2)
            .with("Tm", 8)
            .with("Tn", 2);
        expect(&m.array_cost(p.array_by_name("T").unwrap().id), &b, 4 * 2);
        expect(&m.array_cost(p.array_by_name("A").unwrap().id), &b, 4 * 16);
        expect(&m.array_cost(p.array_by_name("C2").unwrap().id), &b, 2 * 16);
        expect(&m.array_cost(p.array_by_name("B").unwrap().id), &b, 16 * 2);
        expect(&m.array_cost(p.array_by_name("C1").unwrap().id), &b, 16 * 4);
    }

    #[test]
    fn union_dedup_counts_t_once() {
        // Within one nT-body iteration T is referenced by S1, S2 and S3 with
        // the same box; the union must count Ti·Tn once, not three times.
        let p = programs::tiled_two_index();
        let Node::Loop(it) = &p.root[1] else { panic!() };
        let Node::Loop(nt) = &it.body[0] else {
            panic!()
        };
        let m = loop_body_costs(nt);
        let t = p.array_by_name("T").unwrap().id;
        let b = Bindings::new()
            .with("Ti", 4)
            .with("Tn", 2)
            .with("Ni", 16)
            .with("Nj", 16)
            .with("Nm", 16)
            .with("Nn", 16)
            .with("Tj", 2)
            .with("Tm", 8);
        expect(&m.array_cost(t), &b, 8);
    }

    #[test]
    fn cost_map_merge_and_restrict() {
        let p = programs::tiled_two_index();
        let m = seq_costs(&p.root);
        let t = p.array_by_name("T").unwrap().id;
        let only = m.only(t);
        assert!(only.contains(t));
        assert_eq!(only.arrays().count(), 1);
        let without = m.without(t);
        assert!(!without.contains(t));
        let mut merged = only.clone();
        merged.merge(&without);
        assert_eq!(merged.total(), m.total());
    }
}
