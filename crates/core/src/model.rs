//! The cache-miss model: evaluate symbolic components against concrete
//! bounds, tile sizes and a cache capacity.

use crate::partition::{all_components, Component, ComponentKind, StackDistance};
use sdlo_ir::{ArrayId, Bindings, Program};
use std::collections::BTreeMap;

/// Error from miss prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A symbolic expression failed to evaluate (unbound symbol, overflow).
    Eval(sdlo_symbolic::EvalError),
    /// A component count evaluated negative (malformed bindings, e.g. a
    /// bound smaller than a tile size in a non-divisible configuration).
    NegativeCount(i64),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Eval(e) => write!(f, "evaluation failed: {e}"),
            ModelError::NegativeCount(c) => write!(f, "component count {c} is negative"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<sdlo_symbolic::EvalError> for ModelError {
    fn from(e: sdlo_symbolic::EvalError) -> Self {
        ModelError::Eval(e)
    }
}

/// Predicted misses of one component under concrete bindings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentPrediction {
    /// Instances in the component.
    pub count: u64,
    /// Instances predicted to miss.
    pub misses: u64,
}

/// A component's stack distance with its endpoint expressions already
/// evaluated — the input layer of the §5 miss formula once all symbolic
/// work is done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceValues {
    /// No incoming dependence — always a miss.
    Infinite,
    /// The same distance for every instance.
    Constant(i64),
    /// Distance varies linearly between two (unordered) endpoints.
    Varying { lo: i64, hi: i64 },
}

/// The §5 miss formula on already-evaluated inputs. [`MissModel::predict_component`]
/// and the reactive DAG ([`crate::dag::ModelDag`]) both funnel through this
/// one function, so the incremental path agrees with a cold rebuild
/// bit-for-bit by construction.
pub fn predict_from_values(
    count_i: i64,
    distance: DistanceValues,
    cache_size: u64,
) -> Result<ComponentPrediction, ModelError> {
    if count_i < 0 {
        return Err(ModelError::NegativeCount(count_i));
    }
    let count = count_i as u64;
    let misses = match distance {
        DistanceValues::Infinite => count,
        DistanceValues::Constant(d) => {
            if d as u64 >= cache_size {
                count
            } else {
                0
            }
        }
        DistanceValues::Varying { lo, hi } => {
            let (lo_v, hi_v) = (lo.min(hi), lo.max(hi));
            let cs = cache_size as i64;
            if lo_v >= cs {
                count
            } else if hi_v < cs {
                0
            } else {
                // Linear interpolation across the component — the
                // paper's partial-miss formula (§5).
                let span = (hi_v - lo_v) as u128 + 1;
                let missing = (hi_v - cs) as u128 + 1;
                ((count as u128 * missing) / span) as u64
            }
        }
    };
    Ok(ComponentPrediction { count, misses })
}

/// Compile-time cache-miss model of a program: the full set of reuse
/// components with symbolic counts and stack distances.
///
/// ```
/// use sdlo_core::MissModel;
/// use sdlo_ir::{programs, Bindings};
///
/// let program = programs::tiled_matmul();
/// let model = MissModel::build(&program);
/// let b = Bindings::new()
///     .with("Ni", 512).with("Nj", 512).with("Nk", 512)
///     .with("Ti", 64).with("Tj", 64).with("Tk", 64);
/// // 64 KiB of f64 elements, the paper's Table 3 configuration:
/// let misses = model.predict_misses(&b, 8192).unwrap();
/// assert_eq!(misses, 6_291_456); // paper's predicted value
/// ```
#[derive(Debug, Clone)]
pub struct MissModel {
    components: Vec<Component>,
}

impl MissModel {
    /// Analyze `program` (paper §5: partition every reference's iteration
    /// space and attach symbolic stack distances).
    pub fn build(program: &Program) -> Self {
        let span = sdlo_trace::span("model.build");
        span.attr("program", program.name.as_str());
        let model = MissModel {
            components: all_components(program),
        };
        span.add("components", model.components.len() as u64);
        model
    }

    /// The underlying components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Build a model from an explicit component list (used for filtered
    /// models, e.g. the bounds-free tile search of §6).
    pub fn from_components(components: Vec<Component>) -> Self {
        MissModel { components }
    }

    /// Retain only components satisfying `keep` (e.g. those whose stack
    /// distance does not mention any loop-bound symbol).
    pub fn filtered(&self, keep: impl Fn(&Component) -> bool) -> Self {
        MissModel {
            components: self
                .components
                .iter()
                .filter(|c| keep(c))
                .cloned()
                .collect(),
        }
    }

    /// Predict the misses of one component for a fully associative LRU cache
    /// of `cache_size` blocks.
    pub fn predict_component(
        component: &Component,
        bindings: &Bindings,
        cache_size: u64,
    ) -> Result<ComponentPrediction, ModelError> {
        let count_i = component.count.eval(bindings)?;
        let distance = match &component.distance {
            StackDistance::Infinite => DistanceValues::Infinite,
            StackDistance::Constant(e) => DistanceValues::Constant(e.eval(bindings)?),
            StackDistance::Varying { lo, hi } => DistanceValues::Varying {
                lo: lo.eval(bindings)?,
                hi: hi.eval(bindings)?,
            },
        };
        predict_from_values(count_i, distance, cache_size)
    }

    /// Total predicted misses for a fully associative LRU cache of
    /// `cache_size` blocks (elements).
    pub fn predict_misses(&self, bindings: &Bindings, cache_size: u64) -> Result<u64, ModelError> {
        let mut total = 0u64;
        for c in &self.components {
            total += Self::predict_component(c, bindings, cache_size)?.misses;
        }
        Ok(total)
    }

    /// Predicted misses per `(statement, reference index)` — comparable to
    /// [`crate::oracle::per_reference_misses`].
    pub fn predict_per_reference(
        &self,
        bindings: &Bindings,
        cache_size: u64,
    ) -> Result<BTreeMap<(sdlo_ir::StmtId, usize), u64>, ModelError> {
        let mut out = BTreeMap::new();
        for c in &self.components {
            let p = Self::predict_component(c, bindings, cache_size)?;
            *out.entry((c.stmt, c.ref_idx)).or_insert(0) += p.misses;
        }
        Ok(out)
    }

    /// Predicted misses per array.
    pub fn predict_by_array(
        &self,
        bindings: &Bindings,
        cache_size: u64,
    ) -> Result<BTreeMap<ArrayId, u64>, ModelError> {
        let mut out = BTreeMap::new();
        for c in &self.components {
            let p = Self::predict_component(c, bindings, cache_size)?;
            *out.entry(c.array).or_insert(0) += p.misses;
        }
        Ok(out)
    }

    /// Total reference instances covered by the model (must equal the
    /// trace length — checked in tests).
    pub fn total_instances(&self, bindings: &Bindings) -> Result<u64, ModelError> {
        let mut total = 0u64;
        for c in &self.components {
            let v = c.count.eval(bindings)?;
            if v < 0 {
                return Err(ModelError::NegativeCount(v));
            }
            total += v as u64;
        }
        Ok(total)
    }

    /// The distinct stack-distance expressions of the model, evaluated;
    /// used by the tile-size search to find capacities where the miss count
    /// jumps.
    pub fn distance_values(&self, bindings: &Bindings) -> Result<Vec<u64>, ModelError> {
        let mut out = Vec::new();
        for c in &self.components {
            match &c.distance {
                StackDistance::Infinite => {}
                StackDistance::Constant(e) => out.push(e.eval(bindings)?.max(0) as u64),
                StackDistance::Varying { lo, hi } => {
                    out.push(lo.eval(bindings)?.max(0) as u64);
                    out.push(hi.eval(bindings)?.max(0) as u64);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Render the model as a table (paper Table 1 style).
    pub fn render(&self, program: &Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<6} {:<5} {:<22} {:<34} stack distance",
            "array", "stmt", "kind", "#instances"
        );
        for c in &self.components {
            let name = program.array(c.array).name.clone();
            let kind = match &c.kind {
                ComponentKind::Compulsory => "compulsory".to_string(),
                ComponentKind::Carried {
                    loop_index,
                    source_stmt,
                } => {
                    format!("carried by {loop_index} (S{})", source_stmt.0)
                }
                ComponentKind::CrossStmt { source_stmt } => {
                    format!("from S{}", source_stmt.0)
                }
            };
            let _ = writeln!(
                out,
                "{:<6} S{:<4} {:<22} {:<34} {}",
                name.name(),
                c.stmt.0,
                kind,
                c.count.to_string(),
                c.distance
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdlo_ir::programs;

    fn tmm(n: i128, t: (i128, i128, i128)) -> Bindings {
        Bindings::new()
            .with("Ni", n)
            .with("Nj", n)
            .with("Nk", n)
            .with("Ti", t.0)
            .with("Tj", t.1)
            .with("Tk", t.2)
    }

    #[test]
    fn reproduces_paper_table3_predictions() {
        // (N, tiles, cache elements, paper predicted). Row 4 of the paper's
        // table uses tiles (64,32,32) in loop order — the printed (32,64,32)
        // is inconsistent with the table's own convention (see
        // EXPERIMENTS.md).
        let model = MissModel::build(&programs::tiled_matmul());
        let cases = [
            (512, (32, 32, 32), 8192, 8_650_752u64),
            (512, (64, 64, 64), 8192, 6_291_456),
            (512, (128, 128, 128), 8192, 136_314_880),
            (256, (64, 32, 32), 2048, 1_310_720),
            (256, (64, 64, 64), 2048, 17_301_504),
            (256, (32, 64, 128), 2048, 17_170_432),
        ];
        for (n, t, cs, expected) in cases {
            let misses = model.predict_misses(&tmm(n, t), cs).unwrap();
            assert_eq!(misses, expected, "N={n} tiles={t:?} CS={cs}");
        }
    }

    #[test]
    fn total_instances_match_trace_length() {
        let p = programs::tiled_matmul();
        let model = MissModel::build(&p);
        let b = tmm(64, (16, 8, 32));
        let compiled = sdlo_ir::CompiledProgram::compile(&p, &b).unwrap();
        assert_eq!(
            model.total_instances(&b).unwrap(),
            compiled.total_accesses()
        );
    }

    #[test]
    fn two_index_instances_match_trace_length() {
        let p = programs::tiled_two_index();
        let model = MissModel::build(&p);
        let b = Bindings::new()
            .with("Ni", 32)
            .with("Nj", 32)
            .with("Nm", 32)
            .with("Nn", 32)
            .with("Ti", 8)
            .with("Tj", 4)
            .with("Tm", 16)
            .with("Tn", 8);
        let compiled = sdlo_ir::CompiledProgram::compile(&p, &b).unwrap();
        assert_eq!(
            model.total_instances(&b).unwrap(),
            compiled.total_accesses()
        );
    }

    #[test]
    fn huge_cache_leaves_only_compulsory() {
        let p = programs::tiled_matmul();
        let model = MissModel::build(&p);
        let b = tmm(256, (64, 64, 64));
        // Compulsory misses = one per distinct element = 3·N².
        assert_eq!(
            model.predict_misses(&b, u64::MAX / 2).unwrap(),
            3 * 256 * 256
        );
    }

    #[test]
    fn misses_monotone_in_cache_size() {
        let p = programs::tiled_two_index();
        let model = MissModel::build(&p);
        let b = Bindings::new()
            .with("Ni", 64)
            .with("Nj", 64)
            .with("Nm", 64)
            .with("Nn", 64)
            .with("Ti", 16)
            .with("Tj", 8)
            .with("Tm", 8)
            .with("Tn", 16);
        let mut prev = u64::MAX;
        for cs in [16u64, 64, 256, 1024, 4096, 16384, 65536] {
            let m = model.predict_misses(&b, cs).unwrap();
            assert!(m <= prev, "cs={cs}: {m} > {prev}");
            prev = m;
        }
    }

    #[test]
    fn render_mentions_every_array() {
        let p = programs::tiled_two_index();
        let model = MissModel::build(&p);
        let text = model.render(&p);
        for name in ["A", "B", "C1", "C2", "T"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn missing_binding_is_an_error() {
        let model = MissModel::build(&programs::tiled_matmul());
        assert!(matches!(
            model.predict_misses(&Bindings::new(), 1024),
            Err(ModelError::Eval(_))
        ));
    }
}
