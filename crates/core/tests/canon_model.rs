//! Canonicalization soundness at the analysis level: a canonicalized program
//! must yield the *same* stack-distance components and the same miss
//! predictions as the original, with per-array results translating back
//! through `Canonical::array_map`.

use sdlo_core::model::MissModel;
use sdlo_ir::canon::canonicalize;
use sdlo_ir::{programs, Bindings, Program};

fn cases() -> Vec<(Program, Bindings)> {
    let square = |n: i128| {
        Bindings::new()
            .with("Ni", n)
            .with("Nj", n)
            .with("Nk", n)
            .with("Nm", n)
            .with("Nn", n)
    };
    let tiles = |b: Bindings, t: i128| {
        b.with("Ti", t)
            .with("Tj", t)
            .with("Tk", t)
            .with("Tm", t)
            .with("Tn", t)
    };
    vec![
        (programs::matmul(), square(40)),
        (programs::tiled_matmul(), tiles(square(48), 8)),
        (programs::two_index_unfused(), square(24)),
        (programs::two_index_fused(), square(24)),
        (programs::tiled_two_index(), tiles(square(24), 4)),
    ]
}

/// The canonical program's model predicts exactly what the original's does —
/// free symbols are preserved, so the same bindings apply to both.
#[test]
fn canonical_model_predicts_identically() {
    for (p, b) in cases() {
        let c = canonicalize(&p);
        let orig = MissModel::build(&p);
        let canon = MissModel::build(&c.program);
        for cache in [64u64, 512, 4096, 1 << 20] {
            let m0 = orig.predict_misses(&b, cache).expect("orig predicts");
            let m1 = canon.predict_misses(&b, cache).expect("canon predicts");
            assert_eq!(m0, m1, "{} at C={cache}", p.name);
        }
    }
}

/// Per-array miss counts translate through `array_map`: canonical array `Ak`
/// is original array `array_map[k]`.
#[test]
fn per_array_results_translate_back() {
    for (p, b) in cases() {
        let c = canonicalize(&p);
        let orig = MissModel::build(&p);
        let canon = MissModel::build(&c.program);
        let cache = 512;
        let by_orig = orig.predict_by_array(&b, cache).expect("orig per-array");
        let by_canon = canon.predict_by_array(&b, cache).expect("canon per-array");
        for (canon_id, misses) in &by_canon {
            let orig_id = c.array_map[canon_id.0];
            assert_eq!(
                by_orig.get(&orig_id).copied().unwrap_or(0),
                *misses,
                "{}: canonical {:?} ↦ original {:?}",
                p.name,
                canon_id,
                orig_id
            );
        }
        assert_eq!(
            by_orig.values().sum::<u64>(),
            by_canon.values().sum::<u64>(),
            "{}",
            p.name
        );
    }
}

/// The symbolic stack-distance expressions themselves agree: for every
/// component of the original model there is a component of the canonical
/// model with the same statement, reference index, count expression and
/// distance expression (arrays translated through `array_map`).
#[test]
fn components_agree_symbolically() {
    for (p, _) in cases() {
        let c = canonicalize(&p);
        let orig = MissModel::build(&p);
        let canon = MissModel::build(&c.program);
        let key = |stmt: usize, ref_idx: usize, array: usize, count: &str, dist: &str| {
            format!("S{stmt}/r{ref_idx}/a{array}: count={count} dist={dist}")
        };
        let mut orig_keys: Vec<String> = orig
            .components()
            .iter()
            .map(|k| {
                key(
                    k.stmt.0,
                    k.ref_idx,
                    k.array.0,
                    &k.count.to_string(),
                    &k.distance.to_string(),
                )
            })
            .collect();
        let mut canon_keys: Vec<String> = canon
            .components()
            .iter()
            .map(|k| {
                key(
                    k.stmt.0,
                    k.ref_idx,
                    c.array_map[k.array.0].0,
                    &k.count.to_string(),
                    &k.distance.to_string(),
                )
            })
            .collect();
        orig_keys.sort();
        canon_keys.sort();
        assert_eq!(orig_keys, canon_keys, "{}", p.name);
    }
}
