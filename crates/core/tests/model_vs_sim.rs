//! End-to-end validation: the compile-time model's predicted miss counts
//! must track the exact LRU simulation across workloads, tile shapes and
//! cache sizes.

use sdlo_cachesim::{simulate_stack_distances, Granularity};
use sdlo_core::MissModel;
use sdlo_ir::{programs, Bindings, CompiledProgram, Program};

fn check(program: &Program, b: &Bindings, cache_sizes: &[u64], tol: f64) {
    let model = MissModel::build(program);
    let compiled = CompiledProgram::compile(program, b).unwrap();
    assert_eq!(
        model.total_instances(b).unwrap(),
        compiled.total_accesses(),
        "instance accounting"
    );
    let h = simulate_stack_distances(&compiled, Granularity::Element);
    for &cs in cache_sizes {
        let predicted = model.predict_misses(b, cs).unwrap();
        let actual = h.misses(cs);
        let denom = actual.max(1) as f64;
        let err = (predicted as f64 - actual as f64).abs() / denom;
        assert!(
            err <= tol,
            "{}: cs={cs}: predicted {predicted} vs actual {actual} (err {:.3})",
            program.name,
            err
        );
    }
}

fn tmm(n: i128, t: (i128, i128, i128)) -> Bindings {
    Bindings::new()
        .with("Ni", n)
        .with("Nj", n)
        .with("Nk", n)
        .with("Ti", t.0)
        .with("Tj", t.1)
        .with("Tk", t.2)
}

fn t2i(n: i128, t: (i128, i128, i128, i128)) -> Bindings {
    Bindings::new()
        .with("Ni", n)
        .with("Nj", n)
        .with("Nm", n)
        .with("Nn", n)
        .with("Ti", t.0)
        .with("Tj", t.1)
        .with("Tm", t.2)
        .with("Tn", t.3)
}

#[test]
fn tiled_matmul_tracks_simulation() {
    let p = programs::tiled_matmul();
    for t in [(8, 8, 8), (16, 4, 8), (4, 16, 16), (32, 8, 4)] {
        // Cache sizes straddling the intra/inter-tile knees (but not
        // *exactly* on a knee -- see `knife_edge_capacity_is_bounded`).
        check(&p, &tmm(64, t), &[16, 64, 320, 1024, 4096, 1 << 20], 0.02);
    }
}

#[test]
fn knife_edge_capacity_is_bounded() {
    // When the capacity lands exactly inside a component's boundary
    // shoulder (here: the kT-carried reuse of A at tiles (16,4,8) has its
    // interior stack distance at 263 with boundary mass at 255/256), the
    // interior-value model misclassifies the shoulder. The error must stay
    // bounded by that component's share of the trace.
    let p = programs::tiled_matmul();
    check(&p, &tmm(64, (16, 4, 8)), &[256], 0.15);
}

#[test]
fn untiled_matmul_tracks_simulation() {
    let p = programs::matmul();
    let b = Bindings::new().with("Ni", 48).with("Nj", 32).with("Nk", 40);
    check(&p, &b, &[8, 64, 512, 2048, 8192], 0.05);
}

#[test]
fn tiled_two_index_tracks_simulation() {
    let p = programs::tiled_two_index();
    for t in [(8, 8, 8, 8), (16, 4, 4, 16), (4, 16, 16, 4)] {
        check(&p, &t2i(64, t), &[32, 128, 512, 2048, 8192, 1 << 20], 0.06);
    }
}

#[test]
fn fused_two_index_tracks_simulation() {
    let p = programs::two_index_fused();
    let b = Bindings::new()
        .with("Ni", 24)
        .with("Nj", 24)
        .with("Nm", 24)
        .with("Nn", 24);
    check(&p, &b, &[8, 32, 128, 512, 4096], 0.08);
}

#[test]
fn unfused_two_index_tracks_simulation() {
    let p = programs::two_index_unfused();
    let b = Bindings::new()
        .with("Ni", 24)
        .with("Nj", 24)
        .with("Nm", 24)
        .with("Nn", 24);
    check(&p, &b, &[8, 32, 128, 512, 4096], 0.08);
}

#[test]
fn per_reference_predictions_track_per_reference_simulation() {
    // The strongest check of the partitioning itself: miss counts must be
    // right *per reference*, not just in aggregate (aggregate agreement
    // could hide compensating errors between references).
    let p = programs::tiled_two_index();
    let b = t2i(64, (16, 8, 8, 16));
    let model = MissModel::build(&p);
    let compiled = CompiledProgram::compile(&p, &b).unwrap();
    for cs in [128u64, 1024, 4096] {
        let predicted = model.predict_per_reference(&b, cs).unwrap();
        let actual = sdlo_core::oracle::per_reference_misses(&p, &compiled, cs);
        for (key, act) in &actual {
            let pred = predicted.get(key).copied().unwrap_or(0);
            let err = (pred as f64 - *act as f64).abs() / (*act).max(1) as f64;
            assert!(
                err < 0.10 || pred.abs_diff(*act) < 2000,
                "cs={cs} stmt S{} ref {}: predicted {pred} vs actual {act}",
                key.0 .0,
                key.1
            );
        }
    }
}
