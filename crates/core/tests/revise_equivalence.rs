//! Property test: the reactive DAG is *invisible*. After any sequence of
//! random deltas — sparse rebindings and cache-size set swaps — a revised
//! [`ModelDag`] must answer byte-identically to (a) a DAG rebuilt from
//! scratch at the accumulated bindings and (b) the batch evaluator
//! [`MissModel::predict_misses`] at every tracked size. The corpus mixes
//! the paper's builtin kernels with programs synthesized by the mini
//! tensor-contraction engine, so the equivalence is exercised on loop
//! nests the builtins' shapes never produce.

use proptest::prelude::*;
use sdlo_core::dag::{DagDelta, ModelDag};
use sdlo_core::MissModel;
use sdlo_ir::programs;
use sdlo_symbolic::{Bindings, Sym};
use std::sync::OnceLock;

/// Corpus programs with their (expensively) prebuilt models, shared across
/// all proptest cases.
fn corpus() -> &'static [(Vec<Sym>, MissModel)] {
    static CORPUS: OnceLock<Vec<(Vec<Sym>, MissModel)>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let mut progs = vec![
            programs::matmul(),
            programs::tiled_matmul(),
            programs::tiled_two_index(),
            programs::two_index_fused(),
        ];
        let sizes = Bindings::new().with("N", 40).with("V", 40);
        for fuse in [false, true] {
            progs.push(
                sdlo_tce::synthesize(
                    "B[a,b] = C1[a,i] * C2[b,j] * A[i,j]",
                    &[("a", "V"), ("b", "V"), ("i", "N"), ("j", "N")],
                    &sizes,
                    fuse,
                )
                .expect("synthesis succeeds"),
            );
        }
        progs
            .into_iter()
            .map(|p| {
                let mut syms = p.free_symbols().into_iter().collect::<Vec<_>>();
                syms.sort();
                let model = MissModel::build(&p);
                (syms, model)
            })
            .collect()
    })
}

/// Tile symbols (`T…`) stay at or below the smallest bound value; every
/// other symbol is a loop bound / extent.
fn value_for(sym: &Sym, choice: u8) -> i128 {
    if sym.name().starts_with('T') {
        [4i128, 8, 16, 32][(choice % 4) as usize]
    } else {
        [64i128, 128, 256][(choice % 3) as usize]
    }
}

const SIZE_SETS: [&[u64]; 3] = [&[1024, 8192], &[512], &[2048, 4096, 16384]];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn revise_matches_rebuild_and_batch_predict(
        program_choice in 0usize..6,
        // Four deltas per case; each rebinds 0–3 of its generated
        // (symbol index, value choice) pairs and, when `size_choice < 3`,
        // also swaps the tracked cache-size set (≥ 3 leaves it alone).
        deltas in proptest::collection::vec(
            (proptest::collection::vec((0usize..16, 0u8..12), 3),
             0usize..4,
             0u8..6),
            4,
        ),
    ) {
        let (syms, model) = &corpus()[program_choice];

        // Full initial bindings: every free symbol bound.
        let mut current = Bindings::new();
        for s in syms {
            current.set(s.name(), value_for(s, 0));
        }
        let mut sizes: Vec<u64> = SIZE_SETS[0].to_vec();
        let mut dag = ModelDag::new(model, current.clone(), &sizes).unwrap();

        for (rebinds, rebind_count, size_choice) in &deltas {
            let mut delta = DagDelta::default();
            for (sym_idx, choice) in &rebinds[..*rebind_count.min(&rebinds.len())] {
                let s = &syms[sym_idx % syms.len()];
                let v = value_for(s, *choice);
                delta.bindings.set(s.name(), v);
                current.set(s.name(), v);
            }
            if (*size_choice as usize) < SIZE_SETS.len() {
                sizes = SIZE_SETS[*size_choice as usize].to_vec();
                delta.cache_sizes = Some(sizes.clone());
            }
            let outcome = dag.revise(&delta).unwrap();

            // (a) Byte-identical to a from-scratch DAG at the same state.
            let fresh = ModelDag::new(model, current.clone(), &sizes).unwrap();
            prop_assert_eq!(&outcome.misses, &fresh.misses());
            prop_assert_eq!(dag.misses(), fresh.misses());

            // (b) Byte-identical to the batch evaluator per tracked size.
            for (size, total) in dag.misses() {
                prop_assert_eq!(
                    total,
                    model.predict_misses(&current, size).unwrap(),
                    "program {} size {}", program_choice, size
                );
            }
        }
    }
}
