//! `sdlo-service` — the tile-advisor daemon.
//!
//! ```text
//! sdlo-service [--addr HOST:PORT] [--workers N] [--queue N]
//!              [--cache-capacity N] [--max-line BYTES] [--cache-dir DIR]
//! ```
//!
//! Speaks newline-delimited JSON; see the crate docs and the repository
//! README for the wire protocol. Runs until it receives `{"op":"shutdown"}`.

use sdlo_service::{serve, EngineConfig, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: sdlo-service [--addr HOST:PORT] [--workers N] [--queue N]\n\
         \x20                   [--cache-capacity N] [--max-line BYTES]\n\
         \x20                   [--cache-dir DIR]\n\
         \n\
         Tile-advisor daemon: newline-delimited JSON over TCP.\n\
         Requests: analyze | predict | advise | batch | lint | stats |\n\
         \x20         metrics | shutdown ({{\"op\":\"metrics\",\"raw\":true}} for a\n\
         \x20         plain-text Prometheus scrape).\n\
         --cache-dir enables the persistent model-cache tier: built models\n\
         are stored there and reloaded after a restart (safe to share\n\
         between backends).\n\
         Defaults: --addr 127.0.0.1:7464 --workers 4 --queue 64\n\
         \x20         --cache-capacity 256 --max-line 1048576"
    );
    std::process::exit(2);
}

fn parse_args() -> ServerConfig {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7464".to_string(),
        engine: EngineConfig::default(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value_of = |flag: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {flag} requires a value\n");
                usage();
            }
        };
        match flag.as_str() {
            "--addr" => config.addr = value_of("--addr"),
            "--workers" => match value_of("--workers").parse() {
                Ok(n) if n > 0 => config.workers = n,
                _ => usage(),
            },
            "--queue" => match value_of("--queue").parse() {
                Ok(n) if n > 0 => config.queue = n,
                _ => usage(),
            },
            "--cache-capacity" => match value_of("--cache-capacity").parse() {
                Ok(n) if n > 0 => config.engine.cache_capacity = n,
                _ => usage(),
            },
            "--max-line" => match value_of("--max-line").parse() {
                Ok(n) if n > 0 => config.max_line_bytes = n,
                _ => usage(),
            },
            "--cache-dir" => {
                config.engine.cache_dir = Some(value_of("--cache-dir").into());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag `{other}`\n");
                usage();
            }
        }
    }
    config
}

fn main() {
    let config = parse_args();
    match serve(config) {
        Ok(handle) => {
            println!("sdlo-service listening on {}", handle.addr());
            handle.run_until_shutdown();
            println!("sdlo-service stopped");
        }
        Err(e) => {
            eprintln!("error: failed to bind: {e}");
            std::process::exit(1);
        }
    }
}
