//! `sdlo-service` — the tile-advisor daemon.
//!
//! ```text
//! sdlo-service [--addr HOST:PORT] [--workers N] [--queue N]
//!              [--cache-capacity N] [--max-line BYTES] [--cache-dir DIR]
//!              [--slow-micros N]
//! ```
//!
//! Speaks newline-delimited JSON; see the crate docs and the repository
//! README for the wire protocol. Runs until it receives `{"op":"shutdown"}`.
//!
//! Setting `SDLO_TRACE=1` installs the engine's flight recorder as the
//! process trace collector: request spans stream into its bounded span
//! ring, `{"op":"debug"}` dumps them, and requests slower than
//! `--slow-micros` capture their full span tree.

use sdlo_service::{serve, EngineConfig, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: sdlo-service [--addr HOST:PORT] [--workers N] [--queue N]\n\
         \x20                   [--cache-capacity N] [--max-line BYTES]\n\
         \x20                   [--cache-dir DIR] [--slow-micros N]\n\
         \n\
         Tile-advisor daemon: newline-delimited JSON over TCP.\n\
         Requests: analyze | predict | advise | batch | lint | stats |\n\
         \x20         metrics | debug | shutdown ({{\"op\":\"metrics\",\"raw\":true}}\n\
         \x20         for a plain-text Prometheus scrape).\n\
         --cache-dir enables the persistent model-cache tier: built models\n\
         are stored there and reloaded after a restart (safe to share\n\
         between backends).\n\
         --slow-micros sets the flight recorder's slow-request capture\n\
         threshold (0 disables captures). SDLO_TRACE=1 enables span\n\
         recording into the flight recorder; SDLO_LOG=error|warn|info|debug\n\
         sets the structured-log level (default info).\n\
         Defaults: --addr 127.0.0.1:7464 --workers 4 --queue 64\n\
         \x20         --cache-capacity 256 --max-line 1048576\n\
         \x20         --slow-micros 100000"
    );
    std::process::exit(2);
}

fn parse_args() -> ServerConfig {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7464".to_string(),
        engine: EngineConfig::default(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value_of = |flag: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {flag} requires a value\n");
                usage();
            }
        };
        match flag.as_str() {
            "--addr" => config.addr = value_of("--addr"),
            "--workers" => match value_of("--workers").parse() {
                Ok(n) if n > 0 => config.workers = n,
                _ => usage(),
            },
            "--queue" => match value_of("--queue").parse() {
                Ok(n) if n > 0 => config.queue = n,
                _ => usage(),
            },
            "--cache-capacity" => match value_of("--cache-capacity").parse() {
                Ok(n) if n > 0 => config.engine.cache_capacity = n,
                _ => usage(),
            },
            "--max-line" => match value_of("--max-line").parse() {
                Ok(n) if n > 0 => config.max_line_bytes = n,
                _ => usage(),
            },
            "--cache-dir" => {
                config.engine.cache_dir = Some(value_of("--cache-dir").into());
            }
            "--slow-micros" => match value_of("--slow-micros").parse() {
                Ok(n) => config.engine.slow_threshold_micros = n,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag `{other}`\n");
                usage();
            }
        }
    }
    config
}

fn main() {
    let config = parse_args();
    match serve(config) {
        Ok(handle) => {
            if std::env::var("SDLO_TRACE")
                .map(|v| v == "1")
                .unwrap_or(false)
            {
                sdlo_trace::install(handle.engine().flight());
            }
            println!("sdlo-service listening on {}", handle.addr());
            handle.run_until_shutdown();
            println!("sdlo-service stopped");
        }
        Err(e) => {
            eprintln!("error: failed to bind: {e}");
            std::process::exit(1);
        }
    }
}
