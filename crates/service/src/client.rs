//! Minimal synchronous client for the tile-advisor wire protocol, with an
//! opt-in, budget-bounded retry policy for `overloaded` rejections.

use crate::api::ErrorKind;
use sdlo_wire::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Opt-in retry-on-`overloaded` policy for [`Client::request_with_retry`].
///
/// Only `overloaded` replies are retried — they are the one error kind the
/// protocol defines as transient (admission control), and the server
/// guarantees the rejected request had no side effects. Every other error,
/// and every transport failure, surfaces immediately. Retries are capped
/// three ways: a retry count, an exponential (jittered) per-retry delay
/// with a ceiling, and a total wall-clock budget.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt. 0 behaves like
    /// [`Client::request`].
    pub max_retries: u32,
    /// Backoff before retry `n` is `base_delay_ms << (n-1)`, jittered ±50%.
    pub base_delay_ms: u64,
    /// Ceiling on any single backoff sleep.
    pub max_delay_ms: u64,
    /// Total wall-clock budget across every attempt; once spent, the last
    /// overloaded reply is returned as-is.
    pub budget_ms: u64,
    /// Seed for deterministic jitter (tests pin this).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay_ms: 5,
            max_delay_ms: 200,
            budget_ms: 2_000,
            jitter_seed: 0x243f_6a88_85a3_08d3,
        }
    }
}

/// One connection; requests are answered in order.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Bound how long a reply may take. The timeout is a socket option, so
    /// it applies to the connection as a whole.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Send one raw line, receive one raw line.
    pub fn request_line(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Send one request document, receive one response document.
    pub fn request(&mut self, request: &Value) -> std::io::Result<Value> {
        let line = self.request_line(&request.render())?;
        sdlo_wire::parse(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response: {e}"),
            )
        })
    }

    /// [`Client::request`] with bounded retry on `overloaded` replies. The
    /// same request line (same `id`/`request_id`) is resent, so the reply
    /// that finally comes back correlates with the original request.
    pub fn request_with_retry(
        &mut self,
        request: &Value,
        policy: &RetryPolicy,
    ) -> std::io::Result<Value> {
        let deadline = Instant::now() + Duration::from_millis(policy.budget_ms);
        let mut jitter = policy.jitter_seed;
        let mut reply = self.request(request)?;
        for retry in 1..=policy.max_retries {
            if !is_overloaded(&reply) || Instant::now() >= deadline {
                break;
            }
            let base = (policy.base_delay_ms << (retry - 1).min(16)).max(1);
            jitter = splitmix64(jitter);
            let delay = (base / 2 + jitter % base).min(policy.max_delay_ms);
            // Never sleep past the budget.
            let room = deadline.saturating_duration_since(Instant::now());
            std::thread::sleep(Duration::from_millis(delay).min(room));
            reply = self.request(request)?;
        }
        Ok(reply)
    }

    /// Ask the server to stop; returns its acknowledgement.
    pub fn shutdown(&mut self) -> std::io::Result<Value> {
        self.request(&Value::obj(vec![("op", Value::from("shutdown"))]))
    }
}

/// Whether a reply is the server's `overloaded` admission-control error.
pub fn is_overloaded(reply: &Value) -> bool {
    reply.get("ok").and_then(Value::as_bool) == Some(false)
        && reply.path(&["error", "kind"]).and_then(Value::as_str)
            == Some(ErrorKind::Overloaded.as_str())
}

fn splitmix64(state: u64) -> u64 {
    let mut x = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    /// A scripted fake server: replies `overloaded` (echoing the request's
    /// correlation ids, as the real transport does) for the first
    /// `overloads` lines, then succeeds.
    fn fake_server(overloads: usize) -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut writer = stream.try_clone().unwrap();
            let reader = BufReader::new(stream);
            for (n, line) in reader.lines().enumerate() {
                let Ok(line) = line else { break };
                let req = sdlo_wire::parse(&line).unwrap();
                let id = req.get("id").cloned();
                let request_id = req
                    .get("request_id")
                    .and_then(Value::as_str)
                    .unwrap_or("srv-generated")
                    .to_string();
                let reply = if n < overloads {
                    crate::api::error_reply(
                        id,
                        &request_id,
                        &crate::api::ApiError::new(ErrorKind::Overloaded, "queue full"),
                    )
                } else {
                    crate::api::reply(id, &request_id, vec![("answer", Value::from(42u64))])
                };
                writer.write_all(reply.render().as_bytes()).unwrap();
                writer.write_all(b"\n").unwrap();
            }
        });
        addr
    }

    fn request() -> Value {
        sdlo_wire::parse(r#"{"op":"stats","id":7,"request_id":"cli-1"}"#).unwrap()
    }

    #[test]
    fn retried_reply_correlates_the_original_request() {
        let addr = fake_server(2);
        let mut client = Client::connect(addr).unwrap();
        let policy = RetryPolicy {
            base_delay_ms: 1,
            ..RetryPolicy::default()
        };
        let reply = client.request_with_retry(&request(), &policy).unwrap();
        // Two overloads were absorbed; the final reply is the success, and
        // it carries the *original* request's correlation ids.
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true), "{reply:?}");
        assert_eq!(reply.get("id").unwrap().as_i64(), Some(7));
        assert_eq!(reply.get("request_id").unwrap().as_str(), Some("cli-1"));
        assert_eq!(reply.get("answer").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn retries_are_capped() {
        // The server overloads more times than the policy allows: the last
        // overloaded reply surfaces (still correlated), not an error.
        let addr = fake_server(100);
        let mut client = Client::connect(addr).unwrap();
        let policy = RetryPolicy {
            max_retries: 2,
            base_delay_ms: 1,
            ..RetryPolicy::default()
        };
        let reply = client.request_with_retry(&request(), &policy).unwrap();
        assert!(is_overloaded(&reply), "{reply:?}");
        assert_eq!(reply.get("id").unwrap().as_i64(), Some(7));
        assert_eq!(reply.get("request_id").unwrap().as_str(), Some("cli-1"));
    }

    #[test]
    fn zero_retries_behaves_like_plain_request() {
        let addr = fake_server(1);
        let mut client = Client::connect(addr).unwrap();
        let policy = RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        };
        let reply = client.request_with_retry(&request(), &policy).unwrap();
        assert!(is_overloaded(&reply), "{reply:?}");
    }
}
