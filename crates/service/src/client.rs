//! Minimal synchronous client for the tile-advisor wire protocol.

use sdlo_wire::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One connection; requests are answered in order.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one raw line, receive one raw line.
    pub fn request_line(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Send one request document, receive one response document.
    pub fn request(&mut self, request: &Value) -> std::io::Result<Value> {
        let line = self.request_line(&request.render())?;
        sdlo_wire::parse(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response: {e}"),
            )
        })
    }

    /// Ask the server to stop; returns its acknowledgement.
    pub fn shutdown(&mut self) -> std::io::Result<Value> {
        self.request(&Value::obj(vec![("op", Value::from("shutdown"))]))
    }
}
