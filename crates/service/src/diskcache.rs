//! Disk-backed model-cache tier: canon-hash-keyed files under one
//! directory, written via `sdlo-wire`, so a restarted backend warm-starts
//! without rebuilding any model.
//!
//! ## File format
//!
//! One file per canonical shape, named `<canon-hash:016x>.model.json`, one
//! JSON document per file:
//!
//! ```text
//! {"magic":"sdlo-model-cache","format":1,
//!  "model_rev":1,"protocol_rev":1,
//!  "canon_hash":"<016x>","crc":"<016x>",
//!  "payload":{"program":{…},"components":[…]}}
//! ```
//!
//! `model_rev` stamps the *model semantics* ([`sdlo_core::MODEL_REVISION`]):
//! a file built by a different partitioning/stack-distance algorithm is
//! stale. `protocol_rev` stamps the wire protocol the payload codecs belong
//! to ([`crate::api::PROTOCOL_VERSION`]). `crc` is a stable FNV-1a 64 hash
//! of the rendered payload, so truncation and bit rot are caught before any
//! decoding is trusted.
//!
//! ## Trust policy
//!
//! A cached file is **never trusted**: it is an optimization, not a source
//! of truth. [`DiskCache::load`] re-verifies, in order, the envelope magic
//! and format, both revision stamps, the key hash, the payload checksum,
//! that the decoded program validates, *and* that it is byte-for-byte the
//! canonical program the caller asked about (canon-hash collisions are
//! harmless). Any failure — truncated file, corrupt JSON, flipped bit,
//! version bump, hash mismatch — yields [`DiskOutcome::Rejected`] and the
//! caller rebuilds from scratch, overwriting the bad file. Missing files
//! are an ordinary [`DiskOutcome::Miss`].
//!
//! Writes go through a temp file in the same directory followed by an
//! atomic rename, so concurrent backends sharing one cache directory never
//! observe half-written entries.

use sdlo_core::MissModel;
use sdlo_ir::Program;
use sdlo_wire::{
    program_from_value, program_to_value, stored_component_from_value, stored_component_to_value,
    Value,
};
use std::path::{Path, PathBuf};

/// Format of the on-disk envelope itself (field layout). Distinct from the
/// model/protocol revisions, which stamp the *content*.
pub const FORMAT: u64 = 1;

const MAGIC: &str = "sdlo-model-cache";

/// Result of a disk lookup.
pub enum DiskOutcome {
    /// A verified entry for exactly this canonical program.
    Hit(MissModel),
    /// No file for this hash — the ordinary cold-start case.
    Miss,
    /// A file exists but failed verification (truncated, corrupt, stale
    /// revision, wrong shape). The caller must rebuild; the reason is for
    /// metrics/logging only.
    Rejected(&'static str),
}

/// One model-cache directory. Cheap to clone; all state is the path.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
}

/// Stable FNV-1a 64 over bytes — matches no std `Hash` impl on purpose, so
/// checksums are identical across platforms and processes.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl DiskCache {
    /// A cache rooted at `dir`. The directory is created lazily on first
    /// store; a missing or unreadable directory makes every load a miss.
    pub fn new(dir: impl Into<PathBuf>) -> DiskCache {
        DiskCache { dir: dir.into() }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file that does (or would) hold the entry for `hash`.
    pub fn path_for(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.model.json"))
    }

    /// Encode one entry as the on-disk document. Public so durability tests
    /// can pin the golden format.
    pub fn encode(hash: u64, program: &Program, model: &MissModel) -> Value {
        let payload = Value::obj(vec![
            ("program", program_to_value(program)),
            (
                "components",
                Value::Array(
                    model
                        .components()
                        .iter()
                        .map(stored_component_to_value)
                        .collect(),
                ),
            ),
        ]);
        let crc = fnv1a64(payload.render().as_bytes());
        Value::obj(vec![
            ("magic", Value::from(MAGIC)),
            ("format", Value::from(FORMAT)),
            (
                "model_rev",
                Value::from(u64::from(sdlo_core::MODEL_REVISION)),
            ),
            ("protocol_rev", Value::from(crate::api::PROTOCOL_VERSION)),
            ("canon_hash", Value::from(format!("{hash:016x}"))),
            ("crc", Value::from(format!("{crc:016x}"))),
            ("payload", payload),
        ])
    }

    /// Decode and verify one on-disk document against the `(hash, program)`
    /// the caller is asking about. Every rejection reason is a distinct
    /// static string (asserted by the durability tests).
    pub fn decode(text: &str, hash: u64, program: &Program) -> Result<MissModel, &'static str> {
        let v = sdlo_wire::parse(text).map_err(|_| "corrupt json")?;
        if v.get("magic").and_then(Value::as_str) != Some(MAGIC) {
            return Err("bad magic");
        }
        if v.get("format").and_then(Value::as_u64) != Some(FORMAT) {
            return Err("format mismatch");
        }
        if v.get("model_rev").and_then(Value::as_u64) != Some(u64::from(sdlo_core::MODEL_REVISION))
        {
            return Err("model revision mismatch");
        }
        if v.get("protocol_rev").and_then(Value::as_u64) != Some(crate::api::PROTOCOL_VERSION) {
            return Err("protocol revision mismatch");
        }
        if v.get("canon_hash").and_then(Value::as_str) != Some(format!("{hash:016x}").as_str()) {
            return Err("key hash mismatch");
        }
        let payload = v.get("payload").ok_or("missing payload")?;
        let crc = u64::from_str_radix(
            v.get("crc").and_then(Value::as_str).ok_or("missing crc")?,
            16,
        )
        .map_err(|_| "unparseable crc")?;
        if fnv1a64(payload.render().as_bytes()) != crc {
            return Err("checksum mismatch");
        }
        let stored_program = program_from_value(payload.get("program").ok_or("missing program")?)
            .map_err(|_| "undecodable program")?;
        // The canonical program is the real key; the hash only names the
        // file. A collision (or a re-keyed file) must read as a rejection,
        // not serve a model for the wrong shape.
        if &stored_program != program {
            return Err("program mismatch");
        }
        let components = payload
            .get("components")
            .and_then(Value::as_array)
            .ok_or("missing components")?
            .iter()
            .map(stored_component_from_value)
            .collect::<Result<Vec<_>, _>>()
            .map_err(|_| "undecodable component")?;
        Ok(MissModel::from_components(components))
    }

    /// Look up the entry for `(hash, program)`.
    pub fn load(&self, hash: u64, program: &Program) -> DiskOutcome {
        let span = sdlo_trace::span("cache.disk_load");
        let path = self.path_for(hash);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return DiskOutcome::Miss,
            Err(_) => return DiskOutcome::Rejected("unreadable file"),
        };
        match Self::decode(&text, hash, program) {
            Ok(model) => {
                span.attr("outcome", "hit");
                DiskOutcome::Hit(model)
            }
            Err(why) => {
                span.attr("outcome", why);
                DiskOutcome::Rejected(why)
            }
        }
    }

    /// Look up an entry by canonical hash alone, returning the stored
    /// canonical program alongside the model. Used by the `revise` op,
    /// whose base is a hash with no program attached; the entry is
    /// **self-authenticating** instead of caller-verified — the stored
    /// program must canonicalize back to the hash that names the file, so
    /// a re-keyed or colliding file can never establish a session for the
    /// wrong shape.
    pub fn load_by_hash(&self, hash: u64) -> Option<(Program, MissModel)> {
        let span = sdlo_trace::span("cache.disk_load");
        let text = match std::fs::read_to_string(self.path_for(hash)) {
            Ok(t) => t,
            Err(_) => return None,
        };
        let v = sdlo_wire::parse(&text).ok()?;
        let program = program_from_value(v.get("payload")?.get("program")?).ok()?;
        if sdlo_ir::canon::canonicalize(&program).hash != hash {
            span.attr("outcome", "self-auth hash mismatch");
            return None;
        }
        match Self::decode(&text, hash, &program) {
            Ok(model) => {
                span.attr("outcome", "hit");
                Some((program, model))
            }
            Err(why) => {
                span.attr("outcome", why);
                None
            }
        }
    }

    /// Persist one built model: temp file + atomic rename, creating the
    /// cache directory on first use. An existing (possibly corrupt) entry
    /// for the same hash is overwritten.
    pub fn store(&self, hash: u64, program: &Program, model: &MissModel) -> std::io::Result<()> {
        let span = sdlo_trace::span("cache.disk_store");
        span.attr("hash", format!("{hash:016x}").as_str());
        std::fs::create_dir_all(&self.dir)?;
        let doc = Self::encode(hash, program, model);
        let tmp = self
            .dir
            .join(format!(".{hash:016x}.tmp-{}", std::process::id()));
        std::fs::write(&tmp, format!("{}\n", doc.render()))?;
        match std::fs::rename(&tmp, self.path_for(hash)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Number of entry files currently on disk (telemetry; racy by nature).
    pub fn len(&self) -> usize {
        match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().ends_with(".model.json"))
                .count(),
            Err(_) => 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdlo_ir::{canonicalize, programs};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sdlo-diskcache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = tmpdir("roundtrip");
        let cache = DiskCache::new(&dir);
        let canon = canonicalize(&programs::tiled_matmul());
        let model = MissModel::build(&canon.program);
        assert!(matches!(
            cache.load(canon.hash, &canon.program),
            DiskOutcome::Miss
        ));
        cache.store(canon.hash, &canon.program, &model).unwrap();
        assert_eq!(cache.len(), 1);
        let DiskOutcome::Hit(loaded) = cache.load(canon.hash, &canon.program) else {
            panic!("expected hit");
        };
        // The reloaded model must predict identically to the built one.
        let b = sdlo_ir::Bindings::new()
            .with("Ni", 512)
            .with("Nj", 512)
            .with("Nk", 512)
            .with("Ti", 64)
            .with("Tj", 64)
            .with("Tk", 64);
        assert_eq!(
            loaded.predict_misses(&b, 8192).unwrap(),
            model.predict_misses(&b, 8192).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_program_under_same_hash_is_rejected() {
        let dir = tmpdir("collide");
        let cache = DiskCache::new(&dir);
        let a = canonicalize(&programs::matmul());
        let b = canonicalize(&programs::tiled_matmul());
        let model = MissModel::build(&a.program);
        cache.store(a.hash, &a.program, &model).unwrap();
        // Rename a's file onto b's key: the content no longer matches the
        // shape being asked about, whatever the file name claims.
        std::fs::rename(cache.path_for(a.hash), cache.path_for(b.hash)).unwrap();
        assert!(matches!(
            cache.load(b.hash, &b.program),
            DiskOutcome::Rejected("key hash mismatch")
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
