//! # sdlo-service
//!
//! Long-running **tile-advisor service** over the paper's stack-distance
//! machinery: programs come in over newline-delimited JSON, reuse analyses,
//! miss predictions and tile recommendations go back out.
//!
//! The analyze-once/query-many asymmetry is the whole point: building a
//! [`MissModel`](sdlo_core::model::MissModel) (reuse partitioning + symbolic
//! stack-distance computation) is expensive, while evaluating it for a
//! `(bounds, cache size)` instance is cheap. The engine therefore memoizes
//! built models in a sharded LRU cache keyed by the **canonical structural
//! hash** of the loop nest (`sdlo_ir::canon`), so every client asking about
//! a structurally identical nest — whatever its variable names or array
//! declaration order — is served from the same entry.
//!
//! Layers:
//!
//! * [`api`] — the versioned protocol layer: envelope, error vocabulary,
//!   routing, reply builders (the unified error envelope),
//! * [`ops`] — the op registry: one module per protocol op behind a common
//!   [`ops::ServiceOp`] trait; the registry table drives both dispatch and
//!   the `stats.ops` advertisement,
//! * [`engine`] — embeddable request handler (JSON in, JSON out),
//! * [`server`] — TCP transport: event-driven reactor multiplexing every
//!   connection onto one thread, bounded worker pool, explicit admission
//!   control (`overloaded`), per-connection write-buffer backpressure,
//!   per-line size caps, graceful drain on shutdown,
//! * [`client`] — minimal synchronous client,
//! * [`cache`] / [`metrics`] — the shared infrastructure behind both.

pub mod api;
pub mod cache;
pub mod client;
pub mod diskcache;
pub mod engine;
pub mod metrics;
pub mod ops;
pub mod server;

pub use api::{ApiError, ErrorKind, RoutingKey, PROTOCOL_VERSION};
pub use client::{is_overloaded, Client, RetryPolicy};
pub use diskcache::{DiskCache, DiskOutcome};
pub use engine::{Engine, EngineConfig};
pub use metrics::{Kind, Metrics};
pub use server::{serve, ServerConfig, ServerHandle};
