//! Sharded LRU cache from canonical program shapes to built miss models.
//!
//! The expensive middle of every request — reuse partitioning plus symbolic
//! stack-distance computation (`MissModel::build`) — depends only on the
//! *canonical* program, so structurally identical requests share one entry.
//! Keys are `(stable hash, canonical Program)`; the full program equality
//! check makes hash collisions harmless.
//!
//! Sharding bounds contention: a shard is chosen by hash, and the model is
//! built *outside* the shard lock so one slow build never blocks lookups of
//! other shapes in the same shard. Two threads racing to build the same
//! shape may both build; the loser's model is dropped (double-build is
//! correct, just wasted work — the standard memoization trade).

use sdlo_ir::Program;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Entry<V> {
    hash: u64,
    program: Program,
    value: Arc<V>,
    last_used: u64,
}

struct Shard<V> {
    entries: Vec<Entry<V>>,
}

/// Sharded LRU keyed by canonical program shape.
pub struct ShardedCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard_capacity: usize,
    tick: AtomicU64,
}

impl<V> ShardedCache<V> {
    /// `shards` is rounded up to one; `capacity` is the *total* entry budget,
    /// split evenly (each shard holds at least one entry).
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: Vec::new(),
                    })
                })
                .collect(),
            per_shard_capacity,
            tick: AtomicU64::new(0),
        }
    }

    fn shard(&self, hash: u64) -> &Mutex<Shard<V>> {
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    fn touch(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Look up the value for `(hash, program)`, building it with `build` on
    /// a miss. Returns `(value, hit)`.
    pub fn get_or_build(
        &self,
        hash: u64,
        program: &Program,
        build: impl FnOnce() -> V,
    ) -> (Arc<V>, bool) {
        if let Some(v) = self.get(hash, program) {
            return (v, true);
        }
        let value = Arc::new(build());
        // Re-check under the lock: another thread may have inserted while
        // we were building. Prefer the existing entry so all callers share.
        let mut shard = self.shard(hash).lock().unwrap();
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        if let Some(e) = shard
            .entries
            .iter_mut()
            .find(|e| e.hash == hash && &e.program == program)
        {
            e.last_used = now;
            return (Arc::clone(&e.value), true);
        }
        if shard.entries.len() >= self.per_shard_capacity {
            let lru = shard
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("non-empty shard");
            shard.entries.swap_remove(lru);
        }
        shard.entries.push(Entry {
            hash,
            program: program.clone(),
            value: Arc::clone(&value),
            last_used: now,
        });
        (value, false)
    }

    /// Lookup without building.
    pub fn get(&self, hash: u64, program: &Program) -> Option<Arc<V>> {
        let mut shard = self.shard(hash).lock().unwrap();
        let now = self.touch();
        shard
            .entries
            .iter_mut()
            .find(|e| e.hash == hash && &e.program == program)
            .map(|e| {
                e.last_used = now;
                Arc::clone(&e.value)
            })
    }

    /// Lookup by canonical hash alone, for callers that reference a shape
    /// by hash without carrying the program (the `revise` op's base). The
    /// hash is the entry's *name* rather than its full key, so this serves
    /// whichever cached program bears it — acceptable because a client can
    /// only learn a base hash from a reply about that very program.
    pub fn get_by_hash(&self, hash: u64) -> Option<Arc<V>> {
        let mut shard = self.shard(hash).lock().unwrap();
        let now = self.touch();
        shard.entries.iter_mut().find(|e| e.hash == hash).map(|e| {
            e.last_used = now;
            Arc::clone(&e.value)
        })
    }

    /// Number of cached shapes across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().entries.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdlo_ir::{canonicalize, programs};

    fn shape(p: &Program) -> (u64, Program) {
        let c = canonicalize(p);
        (c.hash, c.program)
    }

    #[test]
    fn second_lookup_hits() {
        let cache: ShardedCache<String> = ShardedCache::new(4, 8);
        let (h, p) = shape(&programs::matmul());
        let (v1, hit1) = cache.get_or_build(h, &p, || "built".to_string());
        let (v2, hit2) = cache.get_or_build(h, &p, || unreachable!("must hit"));
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&v1, &v2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_shapes_do_not_collide() {
        let cache: ShardedCache<&'static str> = ShardedCache::new(2, 8);
        let (h1, p1) = shape(&programs::matmul());
        let (h2, p2) = shape(&programs::tiled_matmul());
        cache.get_or_build(h1, &p1, || "a");
        let (v, hit) = cache.get_or_build(h2, &p2, || "b");
        assert!(!hit);
        assert_eq!(*v, "b");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_evicts_the_coldest() {
        // Single shard, capacity 2: inserting a third shape evicts the
        // least recently used one.
        let cache: ShardedCache<usize> = ShardedCache::new(1, 2);
        let shapes: Vec<(u64, Program)> = [
            programs::matmul(),
            programs::tiled_matmul(),
            programs::two_index_fused(),
        ]
        .iter()
        .map(shape)
        .collect();
        cache.get_or_build(shapes[0].0, &shapes[0].1, || 0);
        cache.get_or_build(shapes[1].0, &shapes[1].1, || 1);
        // Touch shape 0 so shape 1 is the LRU.
        assert!(cache.get(shapes[0].0, &shapes[0].1).is_some());
        cache.get_or_build(shapes[2].0, &shapes[2].1, || 2);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(shapes[0].0, &shapes[0].1).is_some());
        assert!(
            cache.get(shapes[1].0, &shapes[1].1).is_none(),
            "LRU entry evicted"
        );
        assert!(cache.get(shapes[2].0, &shapes[2].1).is_some());
    }

    #[test]
    fn concurrent_builds_converge() {
        let cache: Arc<ShardedCache<u64>> = Arc::new(ShardedCache::new(4, 8));
        let (h, p) = shape(&programs::tiled_matmul());
        let results: Vec<Arc<u64>> = std::thread::scope(|s| {
            (0..8)
                .map(|i| {
                    let cache = Arc::clone(&cache);
                    let p = p.clone();
                    s.spawn(move || cache.get_or_build(h, &p, || i).0)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|t| t.join().unwrap())
                .collect()
        });
        // All callers observe a cached value; exactly one shape is stored.
        assert_eq!(cache.len(), 1);
        let stored = cache.get(h, &p).unwrap();
        assert!(results.iter().all(|r| **r == *stored));
    }
}
