//! `lint` — static diagnostics (`sdlo-analysis`) plus the dependence
//! summary. Inline programs that fail [`Program::validate`] still lint: the
//! `structure` diagnostic reports the problem, so validation is skipped at
//! parse time on purpose.
//!
//! [`Program::validate`]: sdlo_ir::Program::validate

use crate::api::{self, ApiError, ErrorKind, LintSpec};
use crate::engine::{Engine, OpResult};
use crate::ops::{OpCtx, ServiceOp};
use sdlo_ir::programs::{builtin, BUILTIN_NAMES as BUILTINS};
use sdlo_wire::{diagnostic_to_value, program_from_value_unchecked, Value};

struct Lint {
    program: LintSpec,
}

fn parse(request: &Value) -> Result<Lint, ApiError> {
    let spec = request
        .get("program")
        .ok_or_else(|| api::schema("missing `program` field"))?;
    let program = if let Some(name) = spec.as_str() {
        LintSpec::Builtin(name.to_string())
    } else {
        LintSpec::Inline(program_from_value_unchecked(spec)?)
    };
    Ok(Lint { program })
}

pub struct LintOp;

impl ServiceOp for LintOp {
    fn name(&self) -> &'static str {
        "lint"
    }

    fn serve(&self, engine: &Engine, ctx: &OpCtx<'_>) -> OpResult {
        use std::sync::atomic::Ordering::Relaxed;
        let request = parse(ctx.request)?;
        let program = match request.program {
            LintSpec::Builtin(name) => builtin(&name).ok_or_else(|| {
                api::fail(
                    ErrorKind::Schema,
                    format!(
                        "unknown builtin program `{name}` (expected one of {})",
                        BUILTINS.join(", ")
                    ),
                )
            })?,
            // Validation was deliberately skipped at parse time: structural
            // problems are exactly what the `structure` diagnostic reports.
            LintSpec::Inline(program) => program,
        };
        let diags = sdlo_analysis::lint(&program);
        let counts = sdlo_analysis::SeverityCounts::of(&diags);
        // Dependence info is only meaningful for structurally valid trees;
        // for the invalid inline programs `lint` deliberately accepts, the
        // `deps` field is null.
        let deps = match program.validate() {
            Ok(()) => sdlo_wire::dep_summary_to_value(&sdlo_deps::analyze(&program).summary()),
            Err(_) => Value::Null,
        };
        engine
            .metrics
            .lint_diag_errors
            .fetch_add(counts.errors as u64, Relaxed);
        engine
            .metrics
            .lint_diag_warnings
            .fetch_add(counts.warnings as u64, Relaxed);
        engine
            .metrics
            .lint_diag_infos
            .fetch_add(counts.infos as u64, Relaxed);
        Ok(vec![
            ("program", Value::from(program.name.as_str())),
            (
                "diagnostics",
                Value::Array(diags.iter().map(diagnostic_to_value).collect()),
            ),
            (
                "summary",
                Value::obj(vec![
                    ("error", Value::from(counts.errors)),
                    ("warning", Value::from(counts.warnings)),
                    ("info", Value::from(counts.infos)),
                ]),
            ),
            ("deps", deps),
        ])
    }
}
