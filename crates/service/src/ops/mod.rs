//! The op registry: one module per protocol op, one dispatcher table.
//!
//! Each op implements [`ServiceOp`] — parse its own request schema out of
//! the raw document, validate, execute against the [`Engine`], and return
//! the reply body fields (the envelope itself is owned by
//! [`crate::api::reply`] / [`crate::api::error_reply`]). The [`REGISTRY`]
//! table drives both the engine's dispatch and the `stats.ops`
//! advertisement, so adding an op is: write the module, add one registry
//! line. The version gate and the unknown-op error stay centralized in the
//! engine, **before** the registry lookup, so clients can probe versions
//! safely.
//!
//! Registration order is wire-visible: [`advertised`] preserves it, and the
//! `stats.ops` golden test pins it.

pub mod advise;
pub mod analyze;
pub mod batch;
pub mod debug;
pub mod lint;
pub mod metrics;
pub mod predict;
pub mod revise;
pub mod sleep;
pub mod stats;

use crate::api::Envelope;
use crate::engine::{Engine, OpResult};
use sdlo_wire::Value;
use std::time::Instant;

/// Everything an op gets to see about the request being served: the raw
/// document (each op owns its body schema), the already-extracted shared
/// [`Envelope`] fields, and when the engine picked the request up (`batch`
/// charges its sub-requests against this).
pub struct OpCtx<'a> {
    pub request: &'a Value,
    pub envelope: &'a Envelope,
    pub started: Instant,
}

/// One protocol op: a name for the dispatcher plus the parse → validate →
/// execute pipeline. Implementations are stateless unit structs; all state
/// lives in the [`Engine`].
pub trait ServiceOp: Sync {
    /// The wire name dispatched on (`"analyze"`, `"predict"`, …).
    fn name(&self) -> &'static str;

    /// Whether `stats.ops` advertises this op. Test-only ops opt out.
    fn advertised(&self) -> bool {
        true
    }

    /// Parse the request body, validate it and execute. Returns the reply
    /// body fields in wire order.
    fn serve(&self, engine: &Engine, ctx: &OpCtx<'_>) -> OpResult;
}

/// Every op this build serves, in advertisement order.
static REGISTRY: &[&dyn ServiceOp] = &[
    &analyze::AnalyzeOp,
    &predict::PredictOp,
    &advise::AdviseOp,
    &batch::BatchOp,
    &lint::LintOp,
    &stats::StatsOp,
    &metrics::MetricsOp,
    &debug::DebugOp,
    &revise::ReviseOp,
    &sleep::SleepOp,
];

/// Resolve an op name against the registry.
pub fn find(name: &str) -> Option<&'static dyn ServiceOp> {
    REGISTRY.iter().copied().find(|op| op.name() == name)
}

/// The advertised op names in registration order (the `stats.ops` list).
pub fn advertised() -> &'static [&'static str] {
    static NAMES: std::sync::OnceLock<Vec<&'static str>> = std::sync::OnceLock::new();
    NAMES.get_or_init(|| {
        REGISTRY
            .iter()
            .filter(|op| op.advertised())
            .map(|op| op.name())
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ErrorKind;
    use crate::engine::{Engine, EngineConfig};

    fn parse(s: &str) -> Value {
        sdlo_wire::parse(s).unwrap()
    }

    #[test]
    fn registry_names_are_unique_and_advertised_in_order() {
        let mut names: Vec<&str> = REGISTRY.iter().map(|op| op.name()).collect();
        let adv = advertised();
        assert_eq!(
            adv,
            &[
                "analyze", "predict", "advise", "batch", "lint", "stats", "metrics", "debug",
                "revise",
            ],
        );
        // Unadvertised ops still dispatch.
        assert!(find("sleep").is_some());
        assert!(!find("sleep").unwrap().advertised());
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REGISTRY.len(), "duplicate op name");
    }

    #[test]
    fn unknown_and_missing_ops_are_unsupported() {
        let e = Engine::new(EngineConfig::default());
        let resp = e.handle(&parse(r#"{"op":"frobnicate"}"#));
        let err = resp.get("error").unwrap();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("unsupported"));
        assert!(err
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("frobnicate"));
        let resp = e.handle(&parse(r#"{"id":3}"#));
        let err = resp.get("error").unwrap();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("unsupported"));
        assert_eq!(
            err.get("message").unwrap().as_str(),
            Some("missing `op` field")
        );
        // The version gate wins over the op lookup.
        let resp = e.handle(&parse(r#"{"op":"frobnicate","v":2}"#));
        assert_eq!(
            resp.get("error").unwrap().get("kind").unwrap().as_str(),
            Some(ErrorKind::UnsupportedVersion.as_str())
        );
    }
}
