//! `sleep` — test-only op the loopback tests use to make backpressure
//! deterministic. Gated behind `enable_test_ops` and never advertised.

use crate::api::{self, ErrorKind};
use crate::engine::{Engine, OpResult};
use crate::ops::{OpCtx, ServiceOp};
use sdlo_wire::Value;
use std::time::Duration;

pub struct SleepOp;

impl ServiceOp for SleepOp {
    fn name(&self) -> &'static str {
        "sleep"
    }

    fn advertised(&self) -> bool {
        false
    }

    fn serve(&self, engine: &Engine, ctx: &OpCtx<'_>) -> OpResult {
        if !engine.config.enable_test_ops {
            return Err(api::fail(ErrorKind::Unsupported, "test ops are disabled"));
        }
        let millis = ctx
            .request
            .get("millis")
            .and_then(Value::as_u64)
            .unwrap_or(10)
            .min(5_000);
        std::thread::sleep(Duration::from_millis(millis));
        Ok(vec![("slept_millis", Value::from(millis))])
    }
}
