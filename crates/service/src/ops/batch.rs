//! `batch` — sub-requests evaluated in parallel, each through the full
//! parse → dispatch → encode cycle; one sub-request failing never fails the
//! batch, and replies come back in request order.

use crate::api::{self, ApiError, ErrorKind};
use crate::engine::{Engine, OpResult};
use crate::ops::{OpCtx, ServiceOp};
use rayon::prelude::*;
use sdlo_wire::Value;
use std::time::Duration;

#[derive(Debug)]
struct Batch {
    /// Sub-requests, still raw: each goes through the full parse → dispatch
    /// → encode cycle (and failures must not fail the batch).
    requests: Vec<Value>,
}

fn parse(request: &Value) -> Result<Batch, ApiError> {
    let items = request
        .get("requests")
        .and_then(Value::as_array)
        .ok_or_else(|| api::schema("`requests` must be an array"))?;
    if items
        .iter()
        .any(|i| i.get("op").and_then(Value::as_str) == Some("batch"))
    {
        return Err(api::fail(ErrorKind::Unsupported, "nested batch requests"));
    }
    Ok(Batch {
        requests: items.to_vec(),
    })
}

pub struct BatchOp;

impl ServiceOp for BatchOp {
    fn name(&self) -> &'static str {
        "batch"
    }

    fn serve(&self, engine: &Engine, ctx: &OpCtx<'_>) -> OpResult {
        let items = parse(ctx.request)?.requests;
        if items.len() > engine.config.max_batch {
            return Err(api::fail(
                ErrorKind::Limit,
                format!(
                    "batch of {} exceeds max_batch={}",
                    items.len(),
                    engine.config.max_batch
                ),
            ));
        }
        let started = ctx.started;
        let budget = Duration::from_millis(engine.config.max_request_millis);
        let responses: Vec<Value> = items
            .iter()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|item| {
                if started.elapsed() > budget {
                    let err = api::fail(
                        ErrorKind::DeadlineExceeded,
                        "batch exceeded the request time budget",
                    );
                    return api::error_reply(
                        item.get("id").cloned(),
                        &engine.next_request_id(),
                        &err,
                    );
                }
                engine.handle(item)
            })
            .collect();
        Ok(vec![("responses", Value::Array(responses))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_batches_are_rejected_at_parse_time() {
        let err = parse(
            &sdlo_wire::parse(r#"{"op":"batch","requests":[{"op":"batch","requests":[]}]}"#)
                .unwrap(),
        )
        .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unsupported);
    }
}
