//! `stats` — the metrics snapshot plus engine-level extras: per-op slowest
//! requests, current cache size, protocol version and the advertised op
//! list (driven by the registry, so it can never drift from dispatch).

use crate::api;
use crate::engine::{Engine, OpResult};
use crate::ops::{OpCtx, ServiceOp};
use sdlo_wire::Value;

pub struct StatsOp;

impl ServiceOp for StatsOp {
    fn name(&self) -> &'static str {
        "stats"
    }

    fn serve(&self, engine: &Engine, _ctx: &OpCtx<'_>) -> OpResult {
        let mut snap = match engine.metrics.snapshot() {
            Value::Object(fields) => fields,
            _ => unreachable!("snapshot is an object"),
        };
        snap.push((
            "slowest".to_string(),
            Value::Object(
                engine
                    .flight
                    .slowest_per_op()
                    .into_iter()
                    .map(|(op, r)| {
                        (
                            op,
                            Value::obj(vec![
                                ("total_micros", Value::from(r.total_micros)),
                                ("request_id", Value::from(r.request_id.as_str())),
                                ("trace_id", Value::from(r.trace_id.as_str())),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ));
        snap.push(("cached_shapes".to_string(), Value::from(engine.cache.len())));
        snap.push((
            "protocol_version".to_string(),
            Value::from(api::PROTOCOL_VERSION),
        ));
        snap.push((
            "ops".to_string(),
            Value::Array(api::ops().iter().map(|o| Value::from(*o)).collect()),
        ));
        Ok(vec![("stats", Value::Object(snap))])
    }
}
