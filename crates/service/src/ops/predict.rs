//! `predict` — evaluate the memoized miss model for one `(bindings, cache)`
//! instance; `"per_array":true` adds the per-array split.

use crate::api::{self, ApiError, ErrorKind, ProgramSpec};
use crate::engine::{Engine, OpResult};
use crate::ops::{OpCtx, ServiceOp};
use sdlo_symbolic::Bindings;
use sdlo_wire::Value;

struct Predict {
    program: ProgramSpec,
    bindings: Bindings,
    cache: u64,
    per_array: bool,
}

fn parse(request: &Value) -> Result<Predict, ApiError> {
    Ok(Predict {
        program: api::program_spec(request)?,
        bindings: api::bindings(request)?,
        cache: api::cache_elements(request)?,
        per_array: request
            .get("per_array")
            .and_then(Value::as_bool)
            .unwrap_or(false),
    })
}

pub struct PredictOp;

impl ServiceOp for PredictOp {
    fn name(&self) -> &'static str {
        "predict"
    }

    fn serve(&self, engine: &Engine, ctx: &OpCtx<'_>) -> OpResult {
        let request = parse(ctx.request)?;
        let resolved = engine.resolve_spec(request.program)?;
        let program = &resolved.program;
        engine.require_bound(program, &request.bindings, &[])?;
        let (cached, hit) = engine.model_for(&resolved);
        let misses = cached
            .model
            .predict_misses(&request.bindings, request.cache)
            .map_err(|e| api::fail(ErrorKind::Eval, e.to_string()))?;
        let mut body = vec![
            ("misses", Value::from(misses)),
            ("cache_hit", Value::from(hit)),
            (
                "shape",
                Value::from(format!("{:016x}", cached.canonical.hash)),
            ),
        ];
        if request.per_array {
            let name_of = Engine::original_name(program, &cached.canonical);
            let by_array = cached
                .model
                .predict_by_array(&request.bindings, request.cache)
                .map_err(|e| api::fail(ErrorKind::Eval, e.to_string()))?;
            body.push((
                "by_array",
                Value::Object(
                    by_array
                        .iter()
                        .map(|(id, m)| (name_of(*id), Value::from(*m)))
                        .collect(),
                ),
            ));
        }
        Ok(body)
    }
}
