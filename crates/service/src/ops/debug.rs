//! `debug` — introspection queries against the process's flight recorder.
//! `what` defaults to `trace_dump`: the raw request ring, the retained
//! slow captures (each with its span subtree rendered as its own Chrome
//! document) and the whole span ring as one Chrome document, plus the
//! process's unix epoch anchor so `tables trace-merge` can align dumps
//! from different processes.

use crate::api::{self, ApiError, ErrorKind};
use crate::engine::{Engine, OpResult};
use crate::ops::{OpCtx, ServiceOp};
use sdlo_wire::Value;

struct DebugQuery {
    what: String,
}

fn parse(request: &Value) -> Result<DebugQuery, ApiError> {
    Ok(DebugQuery {
        what: request
            .get("what")
            .and_then(Value::as_str)
            .unwrap_or("trace_dump")
            .to_string(),
    })
}

pub struct DebugOp;

impl ServiceOp for DebugOp {
    fn name(&self) -> &'static str {
        "debug"
    }

    fn serve(&self, engine: &Engine, ctx: &OpCtx<'_>) -> OpResult {
        let query = parse(ctx.request)?;
        if query.what != "trace_dump" {
            return Err(api::fail(
                ErrorKind::Schema,
                format!("unknown debug query `{}` (expected trace_dump)", query.what),
            ));
        }
        Ok(api::flight_dump_body(&engine.flight))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_op_parses_with_default_what() {
        let q = parse(&sdlo_wire::parse(r#"{"op":"debug"}"#).unwrap()).unwrap();
        assert_eq!(q.what, "trace_dump");
        let q = parse(&sdlo_wire::parse(r#"{"op":"debug","what":"trace_dump"}"#).unwrap()).unwrap();
        assert_eq!(q.what, "trace_dump");
        assert!(crate::ops::advertised().contains(&"debug"));
    }
}
