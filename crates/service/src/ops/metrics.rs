//! `metrics` — the same counters as `stats`, in Prometheus text exposition
//! format (a `"text"` field; the transport's raw-scrape path serves the
//! text directly).

use crate::engine::{Engine, OpResult};
use crate::ops::{OpCtx, ServiceOp};
use sdlo_wire::Value;

pub struct MetricsOp;

impl ServiceOp for MetricsOp {
    fn name(&self) -> &'static str {
        "metrics"
    }

    fn serve(&self, engine: &Engine, _ctx: &OpCtx<'_>) -> OpResult {
        Ok(vec![
            ("content_type", Value::from("text/plain; version=0.0.4")),
            ("text", Value::from(engine.prometheus())),
        ])
    }
}
