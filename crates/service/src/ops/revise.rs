//! `revise` — incremental re-evaluation of a live model DAG.
//!
//! A client that sweeps tile sizes (or cache capacities) over one program
//! shape should not pay a full model evaluation per point. `revise` keeps a
//! per-shape [`sdlo_core::ModelDag`] session on the engine, keyed by the
//! canonical shape hash (`base`), and applies a structured delta — new
//! symbol bindings and/or a new tracked cache-size set — re-evaluating only
//! the expression nodes whose input fingerprints actually moved.
//!
//! ## Session lifecycle
//!
//! * **Warm** (`revised: true`): the base names a live DAG; the delta is
//!   applied transactionally in place. An evaluation error (e.g. a binding
//!   driving a distance negative) leaves the session untouched.
//! * **Cold** (`revised: false`): no live DAG. The model is recovered from
//!   the request's optional `program` (which must canonicalize to `base`),
//!   the in-memory model cache, or the disk tier — in that order — and a
//!   fresh DAG is built from the delta, which must then carry
//!   `cache_sizes` and bindings for every free symbol. Sessions are
//!   LRU-bounded ([`crate::EngineConfig::revise_sessions`]); eviction just
//!   means the next revise against that base is cold again.
//!
//! The answers are byte-identical to `predict` over the same points — the
//! DAG shares the §5 miss formula with the batch path — so `revise` is
//! purely a latency/throughput optimization, never a different model.

use crate::api::{self, schema, ApiError, ErrorKind, ProgramSpec};
use crate::engine::{Engine, OpResult};
use crate::ops::{OpCtx, ServiceOp};
use sdlo_core::dag::{DagDelta, ModelDag};
use sdlo_wire::Value;
use std::sync::atomic::Ordering::Relaxed;

#[derive(Debug)]
struct Revise {
    /// Canonical shape hash naming the session (and the model on a cold
    /// start).
    base: u64,
    delta: DagDelta,
    /// Optional program spec to establish a session for a shape the engine
    /// has never seen. Must canonicalize to `base`.
    program: Option<ProgramSpec>,
}

fn parse(request: &Value) -> Result<Revise, ApiError> {
    let base_str = request
        .get("base")
        .and_then(Value::as_str)
        .ok_or_else(|| schema("missing `base` canonical shape hash"))?;
    let base = (base_str.len() == 16)
        .then(|| u64::from_str_radix(base_str, 16).ok())
        .flatten()
        .ok_or_else(|| schema("`base` must be a 16-hex canonical shape hash"))?;
    let delta = sdlo_wire::delta_from_value(
        request
            .get("delta")
            .ok_or_else(|| schema("missing `delta` object"))?,
    )
    .map_err(|e| schema(e.to_string()))?;
    let program = match request.get("program") {
        Some(_) => Some(api::program_spec(request)?),
        None => None,
    };
    Ok(Revise {
        base,
        delta,
        program,
    })
}

/// Reply body shared by the warm and cold paths. `misses` is keyed by the
/// decimal cache size so sweep clients can index replies without tracking
/// array order.
fn body(
    base: u64,
    revised: bool,
    misses: &[(u64, u64)],
    sessions: usize,
    reevaluated: u64,
    reused: u64,
    exprs: usize,
) -> Vec<(&'static str, Value)> {
    vec![
        ("revised", Value::from(revised)),
        ("base", Value::from(format!("{base:016x}"))),
        (
            "misses",
            Value::Object(
                misses
                    .iter()
                    .map(|(size, count)| (size.to_string(), Value::from(*count)))
                    .collect(),
            ),
        ),
        (
            "revise",
            Value::obj(vec![
                ("sessions", Value::from(sessions as u64)),
                ("nodes_reevaluated", Value::from(reevaluated)),
                ("nodes_reused", Value::from(reused)),
                ("exprs", Value::from(exprs as u64)),
            ]),
        ),
    ]
}

pub struct ReviseOp;

impl ServiceOp for ReviseOp {
    fn name(&self) -> &'static str {
        "revise"
    }

    fn serve(&self, engine: &Engine, ctx: &OpCtx<'_>) -> OpResult {
        let request = parse(ctx.request)?;
        let metrics = &engine.metrics;

        // Warm path: the base names a live DAG. The delta applies in place
        // under the session lock — this is exactly the cheap operation the
        // DAG exists for, so holding the lock across it is fine.
        {
            let mut sessions = engine.revise.lock().unwrap();
            if let Some(dag) = sessions.dag_mut(request.base) {
                let outcome = dag
                    .revise(&request.delta)
                    .map_err(|e| api::fail(ErrorKind::Eval, e.to_string()))?;
                let exprs = dag.expr_count();
                let live = sessions.len();
                metrics
                    .revise_nodes_reevaluated
                    .fetch_add(outcome.nodes_reevaluated, Relaxed);
                metrics
                    .revise_nodes_reused
                    .fetch_add(outcome.nodes_reused, Relaxed);
                return Ok(body(
                    request.base,
                    true,
                    &outcome.misses,
                    live,
                    outcome.nodes_reevaluated,
                    outcome.nodes_reused,
                    exprs,
                ));
            }
        }

        // Cold path: recover the model, build a fresh DAG outside the
        // session lock, then install it.
        metrics.revise_base_misses.fetch_add(1, Relaxed);
        let cached = if let Some(spec) = request.program {
            let resolved = engine.resolve_spec(spec)?;
            if resolved.canonical.hash != request.base {
                return Err(schema(format!(
                    "`program` canonicalizes to `{:016x}`, which is not base `{:016x}`",
                    resolved.canonical.hash, request.base
                )));
            }
            engine.model_for(&resolved).0
        } else {
            engine.model_by_hash(request.base).ok_or_else(|| {
                schema(format!(
                    "unknown base `{:016x}`; include `program` to establish the session",
                    request.base
                ))
            })?
        };
        let Some(sizes) = request.delta.cache_sizes.clone() else {
            return Err(schema(
                "`delta.cache_sizes` is required to establish a new revise session",
            ));
        };
        engine.require_bound(&cached.canonical.program, &request.delta.bindings, &[])?;
        let dag = {
            let _span = sdlo_trace::span(sdlo_trace::names::REVISE_FULL_BUILD);
            ModelDag::new(&cached.model, request.delta.bindings.clone(), &sizes)
                .map_err(|e| api::fail(ErrorKind::Eval, e.to_string()))?
        };
        metrics.revise_full_builds.fetch_add(1, Relaxed);
        let misses = dag.misses();
        let exprs = dag.expr_count();
        let live = {
            let mut sessions = engine.revise.lock().unwrap();
            sessions.insert(request.base, dag);
            sessions.len()
        };
        metrics.revise_sessions.store(live as u64, Relaxed);
        Ok(body(request.base, false, &misses, live, 0, 0, exprs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(s: &str) -> Value {
        sdlo_wire::parse(s).unwrap()
    }

    #[test]
    fn base_hash_is_validated_strictly() {
        let err = parse(&doc(r#"{"op":"revise","delta":{}}"#)).unwrap_err();
        assert_eq!(err.message, "missing `base` canonical shape hash");
        for bad in ["abc", "zzzzzzzzzzzzzzzz", "00112233445566778899"] {
            let err = parse(&doc(&format!(
                r#"{{"op":"revise","base":"{bad}","delta":{{}}}}"#
            )))
            .unwrap_err();
            assert_eq!(err.message, "`base` must be a 16-hex canonical shape hash");
        }
        let ok = parse(&doc(r#"{"op":"revise","base":"00ff00ff00ff00ff",
                "delta":{"bindings":{"Ti":32},"cache_sizes":[1024]}}"#))
        .unwrap();
        assert_eq!(ok.base, 0x00ff_00ff_00ff_00ff);
        assert_eq!(ok.delta.cache_sizes.as_deref(), Some(&[1024u64][..]));
        assert!(ok.program.is_none());
    }

    #[test]
    fn delta_is_required() {
        let err = parse(&doc(r#"{"op":"revise","base":"0011223344556677"}"#)).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Schema);
        assert_eq!(err.message, "missing `delta` object");
    }
}
