//! `analyze` — reuse components + symbolic stack-distance expressions for
//! one program, under the requester's original array names.

use crate::api::{self, ApiError, ProgramSpec};
use crate::engine::{Engine, OpResult};
use crate::ops::{OpCtx, ServiceOp};
use sdlo_wire::{component_to_value, Value};

struct Analyze {
    program: ProgramSpec,
}

fn parse(request: &Value) -> Result<Analyze, ApiError> {
    Ok(Analyze {
        program: api::program_spec(request)?,
    })
}

pub struct AnalyzeOp;

impl ServiceOp for AnalyzeOp {
    fn name(&self) -> &'static str {
        "analyze"
    }

    fn serve(&self, engine: &Engine, ctx: &OpCtx<'_>) -> OpResult {
        let request = parse(ctx.request)?;
        let resolved = engine.resolve_spec(request.program)?;
        let program = &resolved.program;
        let (cached, hit) = engine.model_for(&resolved);
        let name_of = Engine::original_name(program, &cached.canonical);
        let components: Vec<Value> = cached
            .model
            .components()
            .iter()
            .map(|c| component_to_value(c, &name_of))
            .collect();
        let free: Vec<Value> = program
            .free_symbols()
            .iter()
            .map(|s| Value::from(s.name()))
            .collect();
        Ok(vec![
            ("program", Value::from(program.name.as_str())),
            (
                "shape",
                Value::from(format!("{:016x}", cached.canonical.hash)),
            ),
            ("cache_hit", Value::from(hit)),
            ("free_symbols", Value::Array(free)),
            ("components", Value::Array(components)),
        ])
    }
}
