//! `advise` — tile-size search over the memoized model: pruned (§6) or
//! exhaustive over concrete bounds, or the bounds-free §6 variant, under an
//! optional wall-clock / evaluation budget.

use crate::api::{self, schema, ApiError, ProgramSpec};
use crate::engine::{Engine, OpResult};
use crate::ops::{OpCtx, ServiceOp};
use sdlo_symbolic::Bindings;
use sdlo_tilesearch::{SearchBudget, SearchSpace, TileSearcher};
use sdlo_wire::{outcome_to_value, Value};
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    Pruned,
    Exhaustive,
}

/// What `advise` searches against: concrete loop bounds, or the §6
/// bounds-free variant.
#[derive(Debug)]
pub enum AdviseTarget {
    Bound {
        bindings: Bindings,
        mode: SearchMode,
    },
    BoundsFree {
        bounds: Vec<String>,
        nominal: i128,
    },
}

#[derive(Debug)]
pub struct Advise {
    pub program: ProgramSpec,
    pub cache: u64,
    pub space: SearchSpace,
    pub target: AdviseTarget,
    /// Wall-clock budget for the tile search, from dispatch.
    pub deadline_ms: Option<u64>,
    /// Model-evaluation cap for the tile search.
    pub max_evals: Option<usize>,
}

pub(crate) fn parse(request: &Value) -> Result<Advise, ApiError> {
    let program = api::program_spec(request)?;
    let cache = api::cache_elements(request)?;
    let space = decode_space(request)?;
    let target = if let Some(bf) = request.get("bounds_free") {
        let bounds: Vec<String> = bf
            .get("bounds")
            .and_then(Value::as_array)
            .ok_or_else(|| schema("`bounds_free.bounds` must be an array"))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| schema("bound symbols must be strings"))
            })
            .collect::<Result<_, _>>()?;
        let nominal = bf
            .get("nominal")
            .and_then(Value::as_i64)
            .unwrap_or(1_000_000) as i128;
        AdviseTarget::BoundsFree { bounds, nominal }
    } else {
        let mode = match request
            .get("mode")
            .and_then(Value::as_str)
            .unwrap_or("pruned")
        {
            "pruned" => SearchMode::Pruned,
            "exhaustive" => SearchMode::Exhaustive,
            other => {
                return Err(schema(format!(
                    "unknown mode `{other}` (expected pruned | exhaustive)"
                )))
            }
        };
        AdviseTarget::Bound {
            bindings: api::bindings(request)?,
            mode,
        }
    };
    let deadline_ms = match request.get("deadline_ms") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| schema("`deadline_ms` must be a non-negative integer"))?,
        ),
    };
    let max_evals = match request.get("max_evals") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| schema("`max_evals` must be a non-negative integer"))?
                as usize,
        ),
    };
    Ok(Advise {
        program,
        cache,
        space,
        target,
        deadline_ms,
        max_evals,
    })
}

fn decode_space(request: &Value) -> Result<SearchSpace, ApiError> {
    let v = request
        .get("space")
        .ok_or_else(|| schema("missing `space` {syms, max, min}"))?;
    let syms: Vec<String> = v
        .get("syms")
        .and_then(Value::as_array)
        .ok_or_else(|| schema("`space.syms` must be an array of strings"))?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| schema("`space.syms` must be strings"))
        })
        .collect::<Result<_, _>>()?;
    let max: Vec<u64> = v
        .get("max")
        .and_then(Value::as_array)
        .ok_or_else(|| schema("`space.max` must be an array of integers"))?
        .iter()
        .map(|m| {
            m.as_u64()
                .ok_or_else(|| schema("`space.max` must be non-negative"))
        })
        .collect::<Result<_, _>>()?;
    if syms.is_empty() || syms.len() != max.len() {
        return Err(schema(
            "`space.syms` and `space.max` must align and be non-empty",
        ));
    }
    let min = v.get("min").and_then(Value::as_u64).unwrap_or(4).max(1);
    if max.iter().any(|m| *m < min) {
        return Err(schema("every `space.max` must be ≥ `space.min`"));
    }
    Ok(SearchSpace {
        tile_syms: syms,
        max,
        min,
    })
}

pub struct AdviseOp;

impl ServiceOp for AdviseOp {
    fn name(&self) -> &'static str {
        "advise"
    }

    fn serve(&self, engine: &Engine, ctx: &OpCtx<'_>) -> OpResult {
        let request = parse(ctx.request)?;
        let resolved = engine.resolve_spec(request.program)?;
        let program = &resolved.program;
        engine.check_grid(&request.space)?;
        let space = request.space;
        let (cached, hit) = engine.model_for(&resolved);
        let budget = SearchBudget {
            deadline: request
                .deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            max_evaluations: request.max_evals,
        };

        let outcome = match request.target {
            AdviseTarget::BoundsFree { bounds, nominal } => {
                let mut covered: Vec<&str> = bounds.iter().map(String::as_str).collect();
                let tile_strs: Vec<&str> = space.tile_syms.iter().map(String::as_str).collect();
                covered.extend(&tile_strs);
                engine.require_covered(program, &covered)?;
                let bound_refs: Vec<&str> = bounds.iter().map(String::as_str).collect();
                TileSearcher::bounds_free_with(
                    &cached.model,
                    &bound_refs,
                    nominal,
                    request.cache,
                    space.clone(),
                    &budget,
                )
            }
            AdviseTarget::Bound { bindings, mode } => {
                engine.require_bound(program, &bindings, &space.tile_syms)?;
                let searcher =
                    TileSearcher::new(&cached.model, bindings, request.cache, space.clone());
                match mode {
                    SearchMode::Pruned => searcher.pruned_with(&budget),
                    SearchMode::Exhaustive => searcher.exhaustive_with(&budget),
                }
            }
        };
        if !outcome.completed {
            engine
                .metrics
                .searches_cancelled
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        Ok(vec![
            ("outcome", outcome_to_value(&space.tile_syms, &outcome)),
            ("completed", Value::from(outcome.completed)),
            ("wall_micros", Value::from(outcome.wall_micros)),
            ("cache_hit", Value::from(hit)),
            (
                "shape",
                Value::from(format!("{:016x}", cached.canonical.hash)),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ErrorKind;

    fn doc(s: &str) -> Value {
        sdlo_wire::parse(s).unwrap()
    }

    #[test]
    fn advise_parses_budget_fields() {
        let a = parse(&doc(
            r#"{"op":"advise","program":"tiled_matmul","cache":4096,
                "bindings":{"Ni":64,"Nj":64,"Nk":64},
                "space":{"syms":["Ti","Tj","Tk"],"max":[64,64,64],"min":4},
                "deadline_ms":250,"max_evals":1000}"#,
        ))
        .unwrap();
        assert_eq!(a.deadline_ms, Some(250));
        assert_eq!(a.max_evals, Some(1000));
        assert!(matches!(
            a.target,
            AdviseTarget::Bound {
                mode: SearchMode::Pruned,
                ..
            }
        ));

        let err = parse(&doc(r#"{"op":"advise","program":"x","cache":1,
                "space":{"syms":["T"],"max":[8],"min":4},
                "deadline_ms":"soon"}"#))
        .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Schema);
    }
}
