//! Newline-delimited-JSON TCP front end for the [`Engine`].
//!
//! Architecture: an accept loop hands each connection to its own reader
//! thread; reader threads submit request lines to a **bounded** worker pool
//! (`std::sync::mpsc::sync_channel`) and wait for the response before
//! reading the next line — so requests on one connection are answered in
//! order, while different connections execute in parallel up to the worker
//! count. When the queue is full, `try_send` fails immediately and the
//! reader answers with a structured `overloaded` error instead of buffering
//! unboundedly: backpressure is explicit and observable
//! (`stats.rejected`).
//!
//! Robustness: request lines are read through a byte cap (oversized lines
//! are drained and answered with `too_large`, the connection survives),
//! malformed JSON gets a structured error from the engine, and a
//! `{"op":"shutdown"}` request stops the accept loop and drains workers.
//!
//! Scraping: `{"op":"metrics","raw":true}` is answered transport-side with
//! the Prometheus text exposition itself (not JSON) and the connection is
//! closed — `echo '{"op":"metrics","raw":true}' | nc host port` is a
//! complete scrape. Without `"raw"`, `metrics` flows through the engine and
//! returns the text inside a JSON envelope like any other op.

use crate::api::{self, ApiError, ErrorKind};
use crate::engine::{Engine, EngineConfig};
use crate::metrics::Metrics;
use sdlo_wire::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Transport configuration wrapped around an [`EngineConfig`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded queue depth between readers and workers; beyond it requests
    /// are rejected with `overloaded`.
    pub queue: usize,
    /// Maximum accepted request line length in bytes.
    pub max_line_bytes: usize,
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue: 64,
            max_line_bytes: 1 << 20,
            engine: EngineConfig::default(),
        }
    }
}

struct Job {
    line: String,
    reply: SyncSender<String>,
}

/// Handle to a running server; dropping it does *not* stop the server —
/// call [`shutdown`](ServerHandle::shutdown) (or send `{"op":"shutdown"}`).
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    active_connections: Arc<AtomicUsize>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    job_tx: Option<SyncSender<Job>>,
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    pub fn metrics(&self) -> Arc<Metrics> {
        self.engine.metrics()
    }

    /// Whether a shutdown request has been received.
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stop accepting, let readers notice (they poll the stop flag between
    /// reads), drain the worker pool, and join everything.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Readers poll the flag at their read timeout; give them time to
        // finish in-flight requests and exit.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while self.active_connections.load(Ordering::SeqCst) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        // Workers exit when every job sender is gone.
        drop(self.job_tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Block until a `{"op":"shutdown"}` request arrives, then drain (the
    /// server binary's main loop).
    pub fn run_until_shutdown(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.shutdown();
    }
}

/// Bind and serve. Returns once the listener is bound; all work happens on
/// background threads.
pub fn serve(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let engine = Arc::new(Engine::new(config.engine.clone()));
    let metrics = engine.metrics();
    let stop = Arc::new(AtomicBool::new(false));
    let active_connections = Arc::new(AtomicUsize::new(0));

    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.queue.max(1));
    let job_rx = Arc::new(Mutex::new(job_rx));
    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let job_rx = Arc::clone(&job_rx);
            let engine = Arc::clone(&engine);
            let metrics = engine.metrics();
            std::thread::spawn(move || loop {
                let job = match job_rx.lock().unwrap().recv() {
                    Ok(j) => j,
                    Err(_) => break,
                };
                let response = engine.handle_line(&job.line);
                metrics.queue_depth.fetch_sub(1, Ordering::SeqCst);
                let _ = job.reply.send(response);
            })
        })
        .collect();

    let accept_thread = {
        let stop = Arc::clone(&stop);
        let active = Arc::clone(&active_connections);
        let job_tx = job_tx.clone();
        let engine = Arc::clone(&engine);
        let config = config.clone();
        Some(std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        metrics.connections.fetch_add(1, Ordering::Relaxed);
                        active.fetch_add(1, Ordering::SeqCst);
                        let stop = Arc::clone(&stop);
                        let active = Arc::clone(&active);
                        let job_tx = job_tx.clone();
                        let engine = Arc::clone(&engine);
                        let max_line = config.max_line_bytes;
                        std::thread::spawn(move || {
                            let _ = serve_connection(stream, &stop, &job_tx, &engine, max_line);
                            active.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        }))
    };

    Ok(ServerHandle {
        addr,
        engine,
        stop,
        active_connections,
        accept_thread,
        workers,
        job_tx: Some(job_tx),
    })
}

/// Transport-side failures use the same unified error envelope as engine
/// failures, request id included, so clients parse one shape everywhere.
fn error_line(engine: &Engine, kind: ErrorKind, message: &str) -> String {
    let err = ApiError::new(kind, message);
    api::error_reply(None, &engine.next_request_id(), &err).render()
}

enum Read1 {
    Line(String),
    TooLong,
    Eof,
    Idle,
}

/// Pull the next newline-terminated request out of the buffered reader
/// without ever holding more than `cap` bytes for one line. `overflowed`
/// carries the "currently discarding an oversized line" state across calls.
fn poll_line(
    reader: &mut BufReader<TcpStream>,
    acc: &mut Vec<u8>,
    cap: usize,
    overflowed: &mut bool,
) -> std::io::Result<Read1> {
    loop {
        let available = match reader.fill_buf() {
            Ok(b) => b,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(Read1::Idle)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(Read1::Eof);
        }
        if let Some(pos) = available.iter().position(|b| *b == b'\n') {
            let had_overflow = *overflowed;
            if !had_overflow {
                acc.extend_from_slice(&available[..pos]);
            }
            reader.consume(pos + 1);
            if had_overflow {
                *overflowed = false;
                return Ok(Read1::TooLong);
            }
            let line = String::from_utf8_lossy(acc).into_owned();
            acc.clear();
            if acc.capacity() > cap {
                acc.shrink_to_fit();
            }
            return Ok(Read1::Line(line));
        }
        let n = available.len();
        if !*overflowed {
            if acc.len() + n > cap {
                *overflowed = true;
                acc.clear();
            } else {
                acc.extend_from_slice(available);
            }
        }
        reader.consume(n);
    }
}

fn serve_connection(
    stream: TcpStream,
    stop: &AtomicBool,
    job_tx: &SyncSender<Job>,
    engine: &Engine,
    max_line: usize,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let metrics = engine.metrics();
    let mut acc = Vec::new();
    let mut overflowed = false;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let line = match poll_line(&mut reader, &mut acc, max_line, &mut overflowed)? {
            Read1::Idle => continue,
            Read1::Eof => return Ok(()),
            Read1::TooLong => {
                metrics.oversized.fetch_add(1, Ordering::Relaxed);
                let resp = error_line(
                    engine,
                    ErrorKind::TooLarge,
                    &format!("request line exceeds {max_line} bytes"),
                );
                writer.write_all(resp.as_bytes())?;
                writer.write_all(b"\n")?;
                continue;
            }
            Read1::Line(l) => l,
        };
        if line.trim().is_empty() {
            continue;
        }
        // Raw Prometheus scrape: answered transport-side as plain text (a
        // scraper can't frame a JSON envelope), then the connection closes
        // so the reader sees EOF — `nc`-friendly. Parse only when the token
        // appears so the hot path stays a substring check.
        if line.contains("metrics") {
            if let Ok(v) = sdlo_wire::parse(&line) {
                if v.get("op").and_then(Value::as_str) == Some("metrics")
                    && v.get("raw").and_then(Value::as_bool) == Some(true)
                {
                    let started = std::time::Instant::now();
                    let text = engine.prometheus();
                    metrics.record(
                        crate::metrics::Kind::Metrics,
                        started.elapsed().as_micros() as u64,
                        true,
                    );
                    writer.write_all(text.as_bytes())?;
                    writer.flush()?;
                    return Ok(());
                }
            }
        }
        // Shutdown is handled transport-side so it works even when the
        // worker queue is saturated. Parse only when the token appears.
        if line.contains("shutdown") {
            if let Ok(v) = sdlo_wire::parse(&line) {
                if v.get("op").and_then(Value::as_str) == Some("shutdown") {
                    stop.store(true, Ordering::SeqCst);
                    let resp = Value::obj(vec![
                        ("v", Value::from(api::PROTOCOL_VERSION)),
                        ("ok", Value::from(true)),
                        ("stopping", Value::from(true)),
                    ])
                    .render();
                    writer.write_all(resp.as_bytes())?;
                    writer.write_all(b"\n")?;
                    writer.flush()?;
                    return Ok(());
                }
            }
        }
        let (reply_tx, reply_rx) = mpsc::sync_channel::<String>(1);
        metrics.queue_depth.fetch_add(1, Ordering::SeqCst);
        let response = match job_tx.try_send(Job {
            line,
            reply: reply_tx,
        }) {
            Ok(()) => match reply_rx.recv() {
                Ok(r) => r,
                Err(_) => error_line(engine, ErrorKind::Internal, "worker dropped the request"),
            },
            Err(TrySendError::Full(_)) => {
                metrics.queue_depth.fetch_sub(1, Ordering::SeqCst);
                metrics.rejected.fetch_add(1, Ordering::Relaxed);
                error_line(
                    engine,
                    ErrorKind::Overloaded,
                    "request queue is full, retry later",
                )
            }
            Err(TrySendError::Disconnected(_)) => {
                metrics.queue_depth.fetch_sub(1, Ordering::SeqCst);
                return Ok(());
            }
        };
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}
