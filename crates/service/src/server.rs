//! Newline-delimited-JSON TCP front end for the [`Engine`]: an
//! **event-driven connection loop** feeding a **bounded worker pool**.
//!
//! ## Architecture
//!
//! One *reactor* thread owns the (non-blocking) listener and every open
//! connection. Each loop tick it:
//!
//! 1. accepts new connections (until the OS says `WouldBlock`),
//! 2. drains worker completions into the owning connection's reorder
//!    buffer,
//! 3. per connection: flushes in-order responses into the write buffer,
//!    writes as many bytes as the socket takes, then reads and frames new
//!    request lines — submitting each to the worker pool.
//!
//! No thread is ever parked on one client, so thousands of mostly-idle
//! connections cost one thread plus their buffers — not a thread each.
//!
//! ## Backpressure & admission control
//!
//! The reactor-to-workers queue is a **bounded** `sync_channel`; when
//! `try_send` fails the request is rejected *immediately* with the
//! structured `overloaded` error envelope — the client's `id` and
//! `request_id` echoed — instead of stalling the socket (`stats.rejected`
//! counts these). Per connection, the reactor stops reading while the
//! write buffer is above [`ServerConfig::max_write_buffer`], so a client
//! that pipelines faster than it drains responses is throttled by TCP flow
//! control rather than ballooning server memory.
//!
//! Requests on one connection may execute on different workers
//! concurrently (pipelining), but responses are written in request order:
//! each request carries a per-connection sequence number and completions
//! wait in a reorder buffer until their turn.
//!
//! ## Graceful drain
//!
//! Shutdown (the `{"op":"shutdown"}` request or
//! [`ServerHandle::shutdown`]) is a *drain*, not an abort: the listener
//! closes first (new connects are refused), no further request lines are
//! read, every request already submitted to the pool completes and its
//! response is flushed, and only then do connections close and the reactor
//! exit. [`ServerConfig::drain_timeout_ms`] bounds how long a stuck worker
//! can hold the drain open.
//!
//! ## Robustness
//!
//! Request lines are framed under a byte cap (oversized lines are
//! discarded and answered with `too_large`; the connection survives),
//! malformed JSON gets a structured error from the engine, and
//! `{"op":"metrics","raw":true}` is answered transport-side with the
//! Prometheus text exposition itself (not JSON) followed by EOF, so
//! `echo '{"op":"metrics","raw":true}' | nc host port` is a complete
//! scrape.

use crate::api::{self, ApiError, ErrorKind};
use crate::engine::{Engine, EngineConfig};
use crate::metrics::Metrics;
use sdlo_wire::Value;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Transport configuration wrapped around an [`EngineConfig`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded queue depth between the reactor and the workers; beyond it
    /// requests are rejected with `overloaded`.
    pub queue: usize,
    /// Maximum accepted request line length in bytes.
    pub max_line_bytes: usize,
    /// Per-connection write-buffer cap: the reactor stops reading new
    /// requests from a connection whose unsent responses exceed this, so
    /// TCP flow control throttles the client instead of server memory.
    pub max_write_buffer: usize,
    /// Upper bound on how long a drain waits for in-flight requests before
    /// closing connections anyway.
    pub drain_timeout_ms: u64,
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue: 64,
            max_line_bytes: 1 << 20,
            max_write_buffer: 4 << 20,
            drain_timeout_ms: 10_000,
            engine: EngineConfig::default(),
        }
    }
}

/// One request on its way to the worker pool.
struct Job {
    slot: usize,
    generation: u64,
    seq: u64,
    line: String,
}

/// One finished response on its way back to the reactor.
struct Completion {
    slot: usize,
    generation: u64,
    seq: u64,
    text: String,
    /// Plain-text payload (raw Prometheus scrape): written without JSON
    /// framing and the connection closes once flushed.
    raw: bool,
}

/// Handle to a running server; dropping it does *not* stop the server —
/// call [`shutdown`](ServerHandle::shutdown) (or send `{"op":"shutdown"}`).
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    job_tx: Option<SyncSender<Job>>,
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    pub fn metrics(&self) -> Arc<Metrics> {
        self.engine.metrics()
    }

    /// Whether a shutdown request has been received.
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Initiate a drain and block until it completes: stop accepting,
    /// finish every request already submitted, flush every response, close
    /// connections, join the reactor and the workers.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.reactor.take() {
            let _ = t.join();
        }
        // Workers exit when every job sender is gone (the reactor's clone
        // dropped when it exited).
        drop(self.job_tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Block until a `{"op":"shutdown"}` request arrives and the drain
    /// completes (the server binary's main loop).
    pub fn run_until_shutdown(mut self) {
        if let Some(t) = self.reactor.take() {
            let _ = t.join();
        }
        self.shutdown();
    }
}

/// Bind and serve. Returns once the listener is bound; all work happens on
/// background threads.
pub fn serve(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let engine = Arc::new(Engine::new(config.engine.clone()));
    let stop = Arc::new(AtomicBool::new(false));

    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.queue.max(1));
    let (done_tx, done_rx) = mpsc::channel::<Completion>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let job_rx = Arc::clone(&job_rx);
            let engine = Arc::clone(&engine);
            let done_tx = done_tx.clone();
            let metrics = engine.metrics();
            std::thread::spawn(move || loop {
                let job = match job_rx.lock().unwrap().recv() {
                    Ok(j) => j,
                    Err(_) => break,
                };
                let text = engine.handle_line(&job.line);
                metrics.queue_depth.fetch_sub(1, Ordering::SeqCst);
                let _ = done_tx.send(Completion {
                    slot: job.slot,
                    generation: job.generation,
                    seq: job.seq,
                    text,
                    raw: false,
                });
            })
        })
        .collect();
    drop(done_tx);

    let reactor = {
        let stop = Arc::clone(&stop);
        let engine = Arc::clone(&engine);
        let job_tx = job_tx.clone();
        let config = config.clone();
        Some(std::thread::spawn(move || {
            Reactor::new(listener, engine, stop, job_tx, done_rx, config).run();
        }))
    };

    Ok(ServerHandle {
        addr,
        engine,
        stop,
        reactor,
        workers,
        job_tx: Some(job_tx),
    })
}

/// Transport-side failures use the same unified error envelope as engine
/// failures. `id` and `request_id` are echoed when the offending line
/// parsed far enough to carry them, so rejected clients can still
/// correlate.
fn error_line(engine: &Engine, request: Option<&Value>, kind: ErrorKind, message: &str) -> String {
    let err = ApiError::new(kind, message);
    let id = request.and_then(|r| r.get("id")).cloned();
    let request_id = request
        .and_then(|r| r.get("request_id"))
        .and_then(Value::as_str)
        .map(str::to_string)
        .unwrap_or_else(|| engine.next_request_id());
    api::error_reply(id, &request_id, &err).render()
}

/// Per-connection state owned by the reactor.
struct Conn {
    stream: TcpStream,
    /// Reused slot marker: completions for an earlier tenant of this slot
    /// carry a stale generation and are dropped.
    generation: u64,
    /// Partial-line accumulator (bytes read but not yet newline-framed).
    acc: Vec<u8>,
    /// Currently discarding an oversized line (until its newline).
    overflowed: bool,
    /// Unsent response bytes plus the cursor of what is already written.
    out: Vec<u8>,
    out_cursor: usize,
    /// Sequence number for the next submitted request.
    next_seq: u64,
    /// Sequence number of the next response to write.
    next_write: u64,
    /// Completions that arrived out of order, keyed by sequence number.
    reorder: BTreeMap<u64, Completion>,
    /// Peer closed its write side (EOF seen); flush what remains and
    /// retire.
    read_closed: bool,
    /// Close once the write buffer drains (raw Prometheus scrape).
    close_after_flush: bool,
    /// Socket error: retire immediately.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, generation: u64) -> Conn {
        Conn {
            stream,
            generation,
            acc: Vec::new(),
            overflowed: false,
            out: Vec::new(),
            out_cursor: 0,
            next_seq: 0,
            next_write: 0,
            reorder: BTreeMap::new(),
            read_closed: false,
            close_after_flush: false,
            dead: false,
        }
    }

    /// Requests submitted whose responses are not yet fully ordered into
    /// the write buffer.
    fn in_flight(&self) -> u64 {
        self.next_seq - self.next_write
    }

    fn unsent(&self) -> usize {
        self.out.len() - self.out_cursor
    }
}

struct Reactor {
    listener: Option<TcpListener>,
    engine: Arc<Engine>,
    metrics: Arc<Metrics>,
    stop: Arc<AtomicBool>,
    job_tx: SyncSender<Job>,
    done_rx: Receiver<Completion>,
    /// Loopback channel for transport-side completions (overload
    /// rejections, shutdown acks, raw scrapes) so they respect response
    /// ordering alongside worker completions.
    done_tx: Sender<Completion>,
    loop_rx: Receiver<Completion>,
    config: ServerConfig,
    conns: Vec<Option<Conn>>,
    generation: u64,
}

impl Reactor {
    fn new(
        listener: TcpListener,
        engine: Arc<Engine>,
        stop: Arc<AtomicBool>,
        job_tx: SyncSender<Job>,
        done_rx: Receiver<Completion>,
        config: ServerConfig,
    ) -> Reactor {
        // Transport-side completions loop back through a channel of our own
        // so they interleave with worker completions in one code path.
        let (done_tx, loop_rx) = mpsc::channel::<Completion>();
        // Forwarding thread would be overkill: we instead drain both
        // receivers each tick.
        let metrics = engine.metrics();
        Reactor {
            listener: Some(listener),
            engine,
            metrics,
            stop,
            job_tx,
            done_rx,
            done_tx,
            config,
            conns: Vec::new(),
            loop_rx,
            generation: 0,
        }
    }

    fn run(mut self) {
        let mut draining_since: Option<Instant> = None;
        loop {
            let mut progress = false;

            if self.stop.load(Ordering::SeqCst) {
                if self.listener.take().is_some() {
                    // Drain begins: the listener closes (connects are now
                    // refused) and no further request lines are read.
                    progress = true;
                }
                draining_since.get_or_insert_with(Instant::now);
            } else {
                progress |= self.accept_ready();
            }

            progress |= self.drain_completions();

            for slot in 0..self.conns.len() {
                if let Some(mut conn) = self.conns[slot].take() {
                    progress |= self.service_conn(slot, &mut conn);
                    if self.should_retire(&conn) {
                        self.metrics
                            .connections_active
                            .fetch_sub(1, Ordering::SeqCst);
                        progress = true;
                    } else {
                        self.conns[slot] = Some(conn);
                    }
                }
            }

            if let Some(since) = draining_since {
                let idle = self
                    .conns
                    .iter()
                    .flatten()
                    .all(|c| c.in_flight() == 0 && c.unsent() == 0);
                let expired =
                    since.elapsed() >= Duration::from_millis(self.config.drain_timeout_ms);
                if idle || expired {
                    // Connections drop here: clients see EOF after their
                    // last response.
                    return;
                }
            }

            if !progress {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Accept every connection the listener has ready.
    fn accept_ready(&mut self) -> bool {
        let mut progress = false;
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return progress;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.metrics.connections.fetch_add(1, Ordering::Relaxed);
                    self.metrics
                        .connections_active
                        .fetch_add(1, Ordering::SeqCst);
                    self.generation += 1;
                    let conn = Conn::new(stream, self.generation);
                    match self.conns.iter().position(Option::is_none) {
                        Some(slot) => self.conns[slot] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return progress,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return progress,
            }
        }
    }

    /// Move every completed response into its connection's reorder buffer.
    fn drain_completions(&mut self) -> bool {
        let mut progress = false;
        loop {
            let completion = match self.loop_rx.try_recv() {
                Ok(c) => c,
                Err(_) => match self.done_rx.try_recv() {
                    Ok(c) => c,
                    Err(_) => break,
                },
            };
            progress = true;
            if let Some(conn) = self.conns.get_mut(completion.slot).and_then(Option::as_mut) {
                if conn.generation == completion.generation {
                    conn.reorder.insert(completion.seq, completion);
                }
            }
        }
        progress
    }

    /// One tick of work for one connection: order responses, write, read.
    fn service_conn(&mut self, slot: usize, conn: &mut Conn) -> bool {
        let mut progress = false;

        // Responses whose turn has come move into the write buffer.
        while let Some(completion) = conn.reorder.remove(&conn.next_write) {
            conn.next_write += 1;
            if completion.raw {
                conn.out.extend_from_slice(completion.text.as_bytes());
                conn.close_after_flush = true;
            } else {
                conn.out.extend_from_slice(completion.text.as_bytes());
                conn.out.push(b'\n');
            }
            progress = true;
        }

        progress |= self.write_ready(conn);

        // Read new requests only while running (a drain submits no new
        // work) and only while the peer is keeping up with its responses.
        if !self.stop.load(Ordering::SeqCst)
            && !conn.read_closed
            && !conn.dead
            && !conn.close_after_flush
            && conn.unsent() <= self.config.max_write_buffer
        {
            progress |= self.read_ready(slot, conn);
        }
        progress
    }

    /// Write as much of the pending output as the socket accepts.
    fn write_ready(&self, conn: &mut Conn) -> bool {
        let mut progress = false;
        while conn.out_cursor < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_cursor..]) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.out_cursor += n;
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if conn.out_cursor == conn.out.len() && !conn.out.is_empty() {
            conn.out.clear();
            conn.out_cursor = 0;
        } else if conn.out_cursor > (64 << 10) {
            conn.out.drain(..conn.out_cursor);
            conn.out_cursor = 0;
        }
        progress
    }

    /// Read whatever the socket has, frame complete lines, submit them.
    fn read_ready(&mut self, slot: usize, conn: &mut Conn) -> bool {
        let mut scratch = [0u8; 16 << 10];
        let mut progress = false;
        loop {
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    progress = true;
                    self.ingest(slot, conn, &scratch[..n]);
                    // Stop reading the moment backpressure engages.
                    if conn.unsent() > self.config.max_write_buffer || conn.close_after_flush {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        progress
    }

    /// Append freshly read bytes to the accumulator and dispatch every
    /// complete line, honoring the per-line byte cap.
    fn ingest(&mut self, slot: usize, conn: &mut Conn, mut bytes: &[u8]) {
        let cap = self.config.max_line_bytes;
        while let Some(pos) = bytes.iter().position(|b| *b == b'\n') {
            let (head, rest) = bytes.split_at(pos);
            bytes = &rest[1..];
            if conn.overflowed {
                conn.overflowed = false;
                conn.acc.clear();
                self.metrics.oversized.fetch_add(1, Ordering::Relaxed);
                let text = error_line(
                    &self.engine,
                    None,
                    ErrorKind::TooLarge,
                    &format!("request line exceeds {cap} bytes"),
                );
                self.complete_inline(slot, conn, text, false);
                continue;
            }
            if conn.acc.len() + head.len() > cap {
                conn.acc.clear();
                self.metrics.oversized.fetch_add(1, Ordering::Relaxed);
                let text = error_line(
                    &self.engine,
                    None,
                    ErrorKind::TooLarge,
                    &format!("request line exceeds {cap} bytes"),
                );
                self.complete_inline(slot, conn, text, false);
                continue;
            }
            let line = if conn.acc.is_empty() {
                String::from_utf8_lossy(head).into_owned()
            } else {
                conn.acc.extend_from_slice(head);
                let l = String::from_utf8_lossy(&conn.acc).into_owned();
                conn.acc.clear();
                l
            };
            self.submit(slot, conn, line);
            if conn.close_after_flush {
                return;
            }
        }
        if conn.overflowed {
            return;
        }
        if conn.acc.len() + bytes.len() > cap {
            conn.overflowed = true;
            conn.acc.clear();
        } else {
            conn.acc.extend_from_slice(bytes);
        }
    }

    /// Dispatch one framed request line: transport fast paths, then the
    /// bounded worker queue with immediate `overloaded` rejection.
    fn submit(&mut self, slot: usize, conn: &mut Conn, line: String) {
        if line.trim().is_empty() {
            return;
        }
        // Raw Prometheus scrape: answered transport-side as plain text (a
        // scraper can't frame a JSON envelope), then the connection closes
        // so the reader sees EOF — `nc`-friendly. Parse only when the
        // token appears so the hot path stays a substring check.
        if line.contains("metrics") {
            if let Ok(v) = sdlo_wire::parse(&line) {
                if v.get("op").and_then(Value::as_str) == Some("metrics")
                    && v.get("raw").and_then(Value::as_bool) == Some(true)
                {
                    let started = Instant::now();
                    let text = self.engine.prometheus();
                    self.metrics.record(
                        crate::metrics::Kind::Metrics,
                        started.elapsed().as_micros() as u64,
                        true,
                    );
                    self.complete_inline(slot, conn, text, true);
                    return;
                }
            }
        }
        // Shutdown is handled transport-side so it works even when the
        // worker queue is saturated. Parse only when the token appears.
        if line.contains("shutdown") {
            if let Ok(v) = sdlo_wire::parse(&line) {
                if v.get("op").and_then(Value::as_str) == Some("shutdown") {
                    self.stop.store(true, Ordering::SeqCst);
                    let text = Value::obj(vec![
                        ("v", Value::from(api::PROTOCOL_VERSION)),
                        ("ok", Value::from(true)),
                        ("stopping", Value::from(true)),
                    ])
                    .render();
                    self.complete_inline(slot, conn, text, false);
                    return;
                }
            }
        }
        let seq = conn.next_seq;
        conn.next_seq += 1;
        self.metrics.queue_depth.fetch_add(1, Ordering::SeqCst);
        match self.job_tx.try_send(Job {
            slot,
            generation: conn.generation,
            seq,
            line,
        }) {
            Ok(()) => {}
            Err(TrySendError::Full(job)) => {
                self.metrics.queue_depth.fetch_sub(1, Ordering::SeqCst);
                self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                // Admission control: reject now, echoing the client's
                // correlation ids so the retry logic can match this reply
                // to its request.
                let parsed = sdlo_wire::parse(&job.line).ok();
                let text = error_line(
                    &self.engine,
                    parsed.as_ref(),
                    ErrorKind::Overloaded,
                    "request queue is full, retry later",
                );
                conn.reorder.insert(
                    seq,
                    Completion {
                        slot,
                        generation: conn.generation,
                        seq,
                        text,
                        raw: false,
                    },
                );
            }
            Err(TrySendError::Disconnected(_)) => {
                self.metrics.queue_depth.fetch_sub(1, Ordering::SeqCst);
                conn.dead = true;
            }
        }
    }

    /// Register a transport-side response under the connection's response
    /// ordering (it still queues behind earlier in-flight requests).
    fn complete_inline(&self, slot: usize, conn: &mut Conn, text: String, raw: bool) {
        let seq = conn.next_seq;
        conn.next_seq += 1;
        let _ = self.done_tx.send(Completion {
            slot,
            generation: conn.generation,
            seq,
            text,
            raw,
        });
    }

    /// A connection retires once nothing more can or should be said on it.
    fn should_retire(&self, conn: &Conn) -> bool {
        if conn.dead {
            return true;
        }
        let flushed = conn.in_flight() == 0 && conn.unsent() == 0 && conn.reorder.is_empty();
        (conn.read_closed || conn.close_after_flush) && flushed
    }
}
