//! Newline-delimited-JSON TCP front end for the [`Engine`]: an
//! **event-driven connection loop** feeding a **bounded worker pool**.
//!
//! ## Architecture
//!
//! One *reactor* thread owns the (non-blocking) listener and every open
//! connection. Each loop tick it:
//!
//! 1. accepts new connections (until the OS says `WouldBlock`),
//! 2. drains worker completions into the owning connection's reorder
//!    buffer,
//! 3. per connection: flushes in-order responses into the write buffer,
//!    writes as many bytes as the socket takes, then reads and frames new
//!    request lines — submitting each to the worker pool.
//!
//! No thread is ever parked on one client, so thousands of mostly-idle
//! connections cost one thread plus their buffers — not a thread each.
//!
//! ## Backpressure & admission control
//!
//! The reactor-to-workers queue is a **bounded** `sync_channel`; when
//! `try_send` fails the request is rejected *immediately* with the
//! structured `overloaded` error envelope — the client's `id` and
//! `request_id` echoed — instead of stalling the socket (`stats.rejected`
//! counts these). Per connection, the reactor stops reading while the
//! write buffer is above [`ServerConfig::max_write_buffer`], so a client
//! that pipelines faster than it drains responses is throttled by TCP flow
//! control rather than ballooning server memory.
//!
//! Requests on one connection may execute on different workers
//! concurrently (pipelining), but responses are written in request order:
//! each request carries a per-connection sequence number and completions
//! wait in a reorder buffer until their turn.
//!
//! ## Graceful drain
//!
//! Shutdown (the `{"op":"shutdown"}` request or
//! [`ServerHandle::shutdown`]) is a *drain*, not an abort: the listener
//! closes first (new connects are refused), no further request lines are
//! read, every request already submitted to the pool completes and its
//! response is flushed, and only then do connections close and the reactor
//! exit. [`ServerConfig::drain_timeout_ms`] bounds how long a stuck worker
//! can hold the drain open.
//!
//! ## Robustness
//!
//! Request lines are framed under a byte cap (oversized lines are
//! discarded and answered with `too_large`; the connection survives),
//! malformed JSON gets a structured error from the engine, and
//! `{"op":"metrics","raw":true}` is answered transport-side with the
//! Prometheus text exposition itself (not JSON) followed by EOF, so
//! `echo '{"op":"metrics","raw":true}' | nc host port` is a complete
//! scrape.

use crate::api::{self, ApiError, ErrorKind};
use crate::engine::{Engine, EngineConfig, RequestMeta};
use crate::metrics::Metrics;
use sdlo_trace::AttrValue;
use sdlo_wire::Value;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Transport configuration wrapped around an [`EngineConfig`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded queue depth between the reactor and the workers; beyond it
    /// requests are rejected with `overloaded`.
    pub queue: usize,
    /// Maximum accepted request line length in bytes.
    pub max_line_bytes: usize,
    /// Per-connection write-buffer cap: the reactor stops reading new
    /// requests from a connection whose unsent responses exceed this, so
    /// TCP flow control throttles the client instead of server memory.
    pub max_write_buffer: usize,
    /// Upper bound on how long a drain waits for in-flight requests before
    /// closing connections anyway.
    pub drain_timeout_ms: u64,
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue: 64,
            max_line_bytes: 1 << 20,
            max_write_buffer: 4 << 20,
            drain_timeout_ms: 10_000,
            engine: EngineConfig::default(),
        }
    }
}

/// One request on its way to the worker pool.
struct Job {
    slot: usize,
    generation: u64,
    seq: u64,
    line: String,
    /// Trace-clock timestamp when the reactor queued the job; the worker's
    /// pickup minus this is the queue phase.
    submitted_micros: u64,
}

/// One finished response on its way back to the reactor.
struct Completion {
    slot: usize,
    generation: u64,
    seq: u64,
    text: String,
    /// Plain-text payload (raw Prometheus scrape): written without JSON
    /// framing and the connection closes once flushed.
    raw: bool,
    /// Engine-side facts for the write-phase accounting; `None` for
    /// transport-side completions (rejections, shutdown acks, raw scrapes).
    meta: Option<RequestMeta>,
    /// Phase boundaries on the trace clock: queued, picked up by a worker,
    /// engine finished. The reactor adds the flush time when it writes.
    submitted_micros: u64,
    picked_micros: u64,
    done_micros: u64,
}

/// Handle to a running server; dropping it does *not* stop the server —
/// call [`shutdown`](ServerHandle::shutdown) (or send `{"op":"shutdown"}`).
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    job_tx: Option<SyncSender<Job>>,
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    pub fn metrics(&self) -> Arc<Metrics> {
        self.engine.metrics()
    }

    /// Whether a shutdown request has been received.
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Initiate a drain and block until it completes: stop accepting,
    /// finish every request already submitted, flush every response, close
    /// connections, join the reactor and the workers.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.reactor.take() {
            let _ = t.join();
        }
        // Workers exit when every job sender is gone (the reactor's clone
        // dropped when it exited).
        drop(self.job_tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Block until a `{"op":"shutdown"}` request arrives and the drain
    /// completes (the server binary's main loop).
    pub fn run_until_shutdown(mut self) {
        if let Some(t) = self.reactor.take() {
            let _ = t.join();
        }
        self.shutdown();
    }
}

/// Bind and serve. Returns once the listener is bound; all work happens on
/// background threads.
pub fn serve(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let engine = Arc::new(Engine::new(config.engine.clone()));
    let stop = Arc::new(AtomicBool::new(false));

    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.queue.max(1));
    let (done_tx, done_rx) = mpsc::channel::<Completion>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let job_rx = Arc::clone(&job_rx);
            let engine = Arc::clone(&engine);
            let done_tx = done_tx.clone();
            let metrics = engine.metrics();
            std::thread::spawn(move || loop {
                let job = match job_rx.lock().unwrap().recv() {
                    Ok(j) => j,
                    Err(_) => break,
                };
                let picked_micros = sdlo_trace::now_micros();
                let queue_micros = picked_micros.saturating_sub(job.submitted_micros);
                metrics.queue_wait.observe_micros(queue_micros);
                let (text, meta) = engine.handle_line_timed(&job.line, queue_micros);
                metrics.queue_depth.fetch_sub(1, Ordering::SeqCst);
                let _ = done_tx.send(Completion {
                    slot: job.slot,
                    generation: job.generation,
                    seq: job.seq,
                    text,
                    raw: false,
                    meta,
                    submitted_micros: job.submitted_micros,
                    picked_micros,
                    done_micros: sdlo_trace::now_micros(),
                });
            })
        })
        .collect();
    drop(done_tx);

    let reactor = {
        let stop = Arc::clone(&stop);
        let engine = Arc::clone(&engine);
        let job_tx = job_tx.clone();
        let config = config.clone();
        Some(std::thread::spawn(move || {
            Reactor::new(listener, engine, stop, job_tx, done_rx, config).run();
        }))
    };

    sdlo_trace::log::info(
        "service",
        "server.started",
        &[
            ("addr", AttrValue::Str(addr.to_string())),
            ("workers", AttrValue::UInt(config.workers.max(1) as u64)),
            ("queue", AttrValue::UInt(config.queue.max(1) as u64)),
        ],
    );
    Ok(ServerHandle {
        addr,
        engine,
        stop,
        reactor,
        workers,
        job_tx: Some(job_tx),
    })
}

/// Transport-side failures use the same unified error envelope as engine
/// failures. `id` and `request_id` are echoed when the offending line
/// parsed far enough to carry them, so rejected clients can still
/// correlate.
fn error_line(engine: &Engine, request: Option<&Value>, kind: ErrorKind, message: &str) -> String {
    let err = ApiError::new(kind, message);
    let id = request.and_then(|r| r.get("id")).cloned();
    let request_id = request
        .and_then(|r| r.get("request_id"))
        .and_then(Value::as_str)
        .map(str::to_string)
        .unwrap_or_else(|| engine.next_request_id());
    api::error_reply(id, &request_id, &err).render()
}

/// Per-connection state owned by the reactor.
struct Conn {
    stream: TcpStream,
    /// Reused slot marker: completions for an earlier tenant of this slot
    /// carry a stale generation and are dropped.
    generation: u64,
    /// Partial-line accumulator (bytes read but not yet newline-framed).
    acc: Vec<u8>,
    /// Currently discarding an oversized line (until its newline).
    overflowed: bool,
    /// Unsent response bytes plus the cursor of what is already written.
    out: Vec<u8>,
    out_cursor: usize,
    /// Sequence number for the next submitted request.
    next_seq: u64,
    /// Sequence number of the next response to write.
    next_write: u64,
    /// Completions that arrived out of order, keyed by sequence number.
    reorder: BTreeMap<u64, Completion>,
    /// Peer closed its write side (EOF seen); flush what remains and
    /// retire.
    read_closed: bool,
    /// Close once the write buffer drains (raw Prometheus scrape).
    close_after_flush: bool,
    /// Socket error: retire immediately.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, generation: u64) -> Conn {
        Conn {
            stream,
            generation,
            acc: Vec::new(),
            overflowed: false,
            out: Vec::new(),
            out_cursor: 0,
            next_seq: 0,
            next_write: 0,
            reorder: BTreeMap::new(),
            read_closed: false,
            close_after_flush: false,
            dead: false,
        }
    }

    /// Requests submitted whose responses are not yet fully ordered into
    /// the write buffer.
    fn in_flight(&self) -> u64 {
        self.next_seq - self.next_write
    }

    fn unsent(&self) -> usize {
        self.out.len() - self.out_cursor
    }
}

struct Reactor {
    listener: Option<TcpListener>,
    engine: Arc<Engine>,
    metrics: Arc<Metrics>,
    stop: Arc<AtomicBool>,
    job_tx: SyncSender<Job>,
    done_rx: Receiver<Completion>,
    /// Loopback channel for transport-side completions (overload
    /// rejections, shutdown acks, raw scrapes) so they respect response
    /// ordering alongside worker completions.
    done_tx: Sender<Completion>,
    loop_rx: Receiver<Completion>,
    config: ServerConfig,
    conns: Vec<Option<Conn>>,
    generation: u64,
}

impl Reactor {
    fn new(
        listener: TcpListener,
        engine: Arc<Engine>,
        stop: Arc<AtomicBool>,
        job_tx: SyncSender<Job>,
        done_rx: Receiver<Completion>,
        config: ServerConfig,
    ) -> Reactor {
        // Transport-side completions loop back through a channel of our own
        // so they interleave with worker completions in one code path.
        let (done_tx, loop_rx) = mpsc::channel::<Completion>();
        // Forwarding thread would be overkill: we instead drain both
        // receivers each tick.
        let metrics = engine.metrics();
        Reactor {
            listener: Some(listener),
            engine,
            metrics,
            stop,
            job_tx,
            done_rx,
            done_tx,
            config,
            conns: Vec::new(),
            loop_rx,
            generation: 0,
        }
    }

    fn run(mut self) {
        let mut draining_since: Option<Instant> = None;
        loop {
            let mut progress = false;

            if self.stop.load(Ordering::SeqCst) {
                if self.listener.take().is_some() {
                    // Drain begins: the listener closes (connects are now
                    // refused) and no further request lines are read.
                    progress = true;
                }
                draining_since.get_or_insert_with(Instant::now);
            } else {
                progress |= self.accept_ready();
            }

            progress |= self.drain_completions();

            for slot in 0..self.conns.len() {
                if let Some(mut conn) = self.conns[slot].take() {
                    progress |= self.service_conn(slot, &mut conn);
                    if self.should_retire(&conn) {
                        self.metrics
                            .connections_active
                            .fetch_sub(1, Ordering::SeqCst);
                        progress = true;
                    } else {
                        self.conns[slot] = Some(conn);
                    }
                }
            }

            if let Some(since) = draining_since {
                let idle = self
                    .conns
                    .iter()
                    .flatten()
                    .all(|c| c.in_flight() == 0 && c.unsent() == 0);
                let expired =
                    since.elapsed() >= Duration::from_millis(self.config.drain_timeout_ms);
                if idle || expired {
                    // Flight-recorder flush + final summary: the last thing
                    // the process says before connections drop and clients
                    // see EOF after their last response.
                    self.drain_summary(since, expired);
                    return;
                }
            }

            if !progress {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Flush the flight recorder and emit the final `drain.summary` record:
    /// requests served, overloads, cache hit ratio. Slow captures still
    /// retained at drain time get one record each — they would otherwise
    /// die with the process.
    fn drain_summary(&self, draining_since: Instant, expired: bool) {
        use std::sync::atomic::Ordering::Relaxed;
        let served: u64 = crate::metrics::Kind::ALL
            .iter()
            .map(|k| self.metrics.kind(*k).requests.load(Relaxed))
            .sum();
        let hits = self.metrics.cache_hits.load(Relaxed);
        let misses = self.metrics.cache_misses.load(Relaxed);
        let hit_ratio = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        let flight = self.engine.flight();
        for capture in flight.slow() {
            sdlo_trace::log::info(
                "service",
                "drain.slow_request",
                &[
                    ("op", AttrValue::Str(capture.record.op.clone())),
                    (
                        "request_id",
                        AttrValue::Str(capture.record.request_id.clone()),
                    ),
                    ("total_micros", AttrValue::UInt(capture.record.total_micros)),
                ],
            );
        }
        sdlo_trace::log::info(
            "service",
            "drain.summary",
            &[
                ("requests_served", AttrValue::UInt(served)),
                (
                    "overloads",
                    AttrValue::UInt(self.metrics.rejected.load(Relaxed)),
                ),
                ("cache_hit_ratio", AttrValue::Float(hit_ratio)),
                ("flight_recorded", AttrValue::UInt(flight.pushed())),
                ("slow_captures", AttrValue::UInt(flight.slow().len() as u64)),
                (
                    "drain_millis",
                    AttrValue::UInt(draining_since.elapsed().as_millis() as u64),
                ),
                ("timed_out", AttrValue::Bool(expired)),
            ],
        );
    }

    /// Accept every connection the listener has ready.
    fn accept_ready(&mut self) -> bool {
        let mut progress = false;
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return progress;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.metrics.connections.fetch_add(1, Ordering::Relaxed);
                    self.metrics
                        .connections_active
                        .fetch_add(1, Ordering::SeqCst);
                    self.generation += 1;
                    let conn = Conn::new(stream, self.generation);
                    match self.conns.iter().position(Option::is_none) {
                        Some(slot) => self.conns[slot] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return progress,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return progress,
            }
        }
    }

    /// Move every completed response into its connection's reorder buffer.
    fn drain_completions(&mut self) -> bool {
        let mut progress = false;
        loop {
            let completion = match self.loop_rx.try_recv() {
                Ok(c) => c,
                Err(_) => match self.done_rx.try_recv() {
                    Ok(c) => c,
                    Err(_) => break,
                },
            };
            progress = true;
            if let Some(conn) = self.conns.get_mut(completion.slot).and_then(Option::as_mut) {
                if conn.generation == completion.generation {
                    conn.reorder.insert(completion.seq, completion);
                }
            }
        }
        progress
    }

    /// One tick of work for one connection: order responses, write, read.
    fn service_conn(&mut self, slot: usize, conn: &mut Conn) -> bool {
        let mut progress = false;

        // Responses whose turn has come move into the write buffer.
        while let Some(mut completion) = conn.reorder.remove(&conn.next_write) {
            conn.next_write += 1;
            if let Some(meta) = completion.meta {
                self.account_write_phase(&mut completion, meta);
            }
            if completion.raw {
                conn.out.extend_from_slice(completion.text.as_bytes());
                conn.close_after_flush = true;
            } else {
                conn.out.extend_from_slice(completion.text.as_bytes());
                conn.out.push(b'\n');
            }
            progress = true;
        }

        progress |= self.write_ready(conn);

        // Read new requests only while running (a drain submits no new
        // work) and only while the peer is keeping up with its responses.
        if !self.stop.load(Ordering::SeqCst)
            && !conn.read_closed
            && !conn.dead
            && !conn.close_after_flush
            && conn.unsent() <= self.config.max_write_buffer
        {
            progress |= self.read_ready(slot, conn);
        }
        progress
    }

    /// The write phase ends here: the reply's turn in the response order
    /// has come and its bytes enter the write buffer. Observe the phase
    /// histogram, amend the flight record, complete the opt-in `timing`
    /// object in the reply text, and — when tracing — fabricate the
    /// queue/exec/write phase spans under the request's root span.
    fn account_write_phase(&self, completion: &mut Completion, meta: RequestMeta) {
        let now = sdlo_trace::now_micros();
        let write_micros = now.saturating_sub(completion.done_micros);
        self.metrics.write.observe_micros(write_micros);
        self.engine
            .flight()
            .amend_write(meta.flight_ticket, write_micros);
        if meta.server_timing {
            // The engine appended `timing` as the *last* body field, so the
            // reply ends `…,"timing":{…}}` — splice the write phase in just
            // before the two closing braces.
            if completion.text.rfind("\"timing\":{").is_some() && completion.text.ends_with("}}") {
                let at = completion.text.len() - 2;
                completion
                    .text
                    .insert_str(at, &format!(",\"write_micros\":{write_micros}"));
            }
        }
        if let Some(root) = meta.root_span {
            sdlo_trace::record_span_at(
                "request.queue",
                Some(root),
                completion.submitted_micros,
                completion.picked_micros,
            );
            sdlo_trace::record_span_at(
                "request.exec",
                Some(root),
                completion.picked_micros,
                completion.done_micros,
            );
            sdlo_trace::record_span_at("request.write", Some(root), completion.done_micros, now);
        }
    }

    /// Write as much of the pending output as the socket accepts.
    fn write_ready(&self, conn: &mut Conn) -> bool {
        let mut progress = false;
        while conn.out_cursor < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_cursor..]) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.out_cursor += n;
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if conn.out_cursor == conn.out.len() && !conn.out.is_empty() {
            conn.out.clear();
            conn.out_cursor = 0;
        } else if conn.out_cursor > (64 << 10) {
            conn.out.drain(..conn.out_cursor);
            conn.out_cursor = 0;
        }
        progress
    }

    /// Read whatever the socket has, frame complete lines, submit them.
    fn read_ready(&mut self, slot: usize, conn: &mut Conn) -> bool {
        let mut scratch = [0u8; 16 << 10];
        let mut progress = false;
        loop {
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    progress = true;
                    self.ingest(slot, conn, &scratch[..n]);
                    // Stop reading the moment backpressure engages.
                    if conn.unsent() > self.config.max_write_buffer || conn.close_after_flush {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        progress
    }

    /// Append freshly read bytes to the accumulator and dispatch every
    /// complete line, honoring the per-line byte cap.
    fn ingest(&mut self, slot: usize, conn: &mut Conn, mut bytes: &[u8]) {
        let cap = self.config.max_line_bytes;
        while let Some(pos) = bytes.iter().position(|b| *b == b'\n') {
            let (head, rest) = bytes.split_at(pos);
            bytes = &rest[1..];
            if conn.overflowed {
                conn.overflowed = false;
                conn.acc.clear();
                self.metrics.oversized.fetch_add(1, Ordering::Relaxed);
                let text = error_line(
                    &self.engine,
                    None,
                    ErrorKind::TooLarge,
                    &format!("request line exceeds {cap} bytes"),
                );
                self.complete_inline(slot, conn, text, false);
                continue;
            }
            if conn.acc.len() + head.len() > cap {
                conn.acc.clear();
                self.metrics.oversized.fetch_add(1, Ordering::Relaxed);
                let text = error_line(
                    &self.engine,
                    None,
                    ErrorKind::TooLarge,
                    &format!("request line exceeds {cap} bytes"),
                );
                self.complete_inline(slot, conn, text, false);
                continue;
            }
            let line = if conn.acc.is_empty() {
                String::from_utf8_lossy(head).into_owned()
            } else {
                conn.acc.extend_from_slice(head);
                let l = String::from_utf8_lossy(&conn.acc).into_owned();
                conn.acc.clear();
                l
            };
            self.submit(slot, conn, line);
            if conn.close_after_flush {
                return;
            }
        }
        if conn.overflowed {
            return;
        }
        if conn.acc.len() + bytes.len() > cap {
            conn.overflowed = true;
            conn.acc.clear();
        } else {
            conn.acc.extend_from_slice(bytes);
        }
    }

    /// Dispatch one framed request line: transport fast paths, then the
    /// bounded worker queue with immediate `overloaded` rejection.
    fn submit(&mut self, slot: usize, conn: &mut Conn, line: String) {
        if line.trim().is_empty() {
            return;
        }
        // Raw Prometheus scrape: answered transport-side as plain text (a
        // scraper can't frame a JSON envelope), then the connection closes
        // so the reader sees EOF — `nc`-friendly. Parse only when the
        // token appears so the hot path stays a substring check.
        if line.contains("metrics") {
            if let Ok(v) = sdlo_wire::parse(&line) {
                if v.get("op").and_then(Value::as_str) == Some("metrics")
                    && v.get("raw").and_then(Value::as_bool) == Some(true)
                {
                    let started = Instant::now();
                    let text = self.engine.prometheus();
                    self.metrics.record(
                        crate::metrics::Kind::Metrics,
                        started.elapsed().as_micros() as u64,
                        true,
                    );
                    self.complete_inline(slot, conn, text, true);
                    return;
                }
            }
        }
        // Shutdown is handled transport-side so it works even when the
        // worker queue is saturated. Parse only when the token appears.
        if line.contains("shutdown") {
            if let Ok(v) = sdlo_wire::parse(&line) {
                if v.get("op").and_then(Value::as_str) == Some("shutdown") {
                    self.stop.store(true, Ordering::SeqCst);
                    let text = Value::obj(vec![
                        ("v", Value::from(api::PROTOCOL_VERSION)),
                        ("ok", Value::from(true)),
                        ("stopping", Value::from(true)),
                    ])
                    .render();
                    self.complete_inline(slot, conn, text, false);
                    return;
                }
            }
        }
        let seq = conn.next_seq;
        conn.next_seq += 1;
        self.metrics.queue_depth.fetch_add(1, Ordering::SeqCst);
        match self.job_tx.try_send(Job {
            slot,
            generation: conn.generation,
            seq,
            line,
            submitted_micros: sdlo_trace::now_micros(),
        }) {
            Ok(()) => {}
            Err(TrySendError::Full(job)) => {
                self.metrics.queue_depth.fetch_sub(1, Ordering::SeqCst);
                self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                // Admission control: reject now, echoing the client's
                // correlation ids so the retry logic can match this reply
                // to its request.
                let parsed = sdlo_wire::parse(&job.line).ok();
                let text = error_line(
                    &self.engine,
                    parsed.as_ref(),
                    ErrorKind::Overloaded,
                    "request queue is full, retry later",
                );
                conn.reorder.insert(
                    seq,
                    Completion {
                        slot,
                        generation: conn.generation,
                        seq,
                        text,
                        raw: false,
                        meta: None,
                        submitted_micros: 0,
                        picked_micros: 0,
                        done_micros: 0,
                    },
                );
            }
            Err(TrySendError::Disconnected(_)) => {
                self.metrics.queue_depth.fetch_sub(1, Ordering::SeqCst);
                conn.dead = true;
            }
        }
    }

    /// Register a transport-side response under the connection's response
    /// ordering (it still queues behind earlier in-flight requests).
    fn complete_inline(&self, slot: usize, conn: &mut Conn, text: String, raw: bool) {
        let seq = conn.next_seq;
        conn.next_seq += 1;
        let _ = self.done_tx.send(Completion {
            slot,
            generation: conn.generation,
            seq,
            text,
            raw,
            meta: None,
            submitted_micros: 0,
            picked_micros: 0,
            done_micros: 0,
        });
    }

    /// A connection retires once nothing more can or should be said on it.
    fn should_retire(&self, conn: &Conn) -> bool {
        if conn.dead {
            return true;
        }
        let flushed = conn.in_flight() == 0 && conn.unsent() == 0 && conn.reorder.is_empty();
        (conn.read_closed || conn.close_after_flush) && flushed
    }
}
