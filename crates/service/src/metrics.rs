//! Lock-free service observability: per-request-kind counters, log₂ latency
//! histograms, cache hit rates and queue depth, all plain atomics so the hot
//! path never blocks on a metrics lock.

use sdlo_wire::Value;
use std::sync::atomic::{AtomicU64, Ordering};

/// Request kinds tracked separately. `Other` covers unknown ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Analyze,
    Predict,
    Advise,
    Batch,
    Lint,
    Stats,
    Sleep,
    Other,
}

impl Kind {
    pub const ALL: [Kind; 8] = [
        Kind::Analyze,
        Kind::Predict,
        Kind::Advise,
        Kind::Batch,
        Kind::Lint,
        Kind::Stats,
        Kind::Sleep,
        Kind::Other,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Kind::Analyze => "analyze",
            Kind::Predict => "predict",
            Kind::Advise => "advise",
            Kind::Batch => "batch",
            Kind::Lint => "lint",
            Kind::Stats => "stats",
            Kind::Sleep => "sleep",
            Kind::Other => "other",
        }
    }

    pub fn from_op(op: &str) -> Kind {
        match op {
            "analyze" => Kind::Analyze,
            "predict" => Kind::Predict,
            "advise" => Kind::Advise,
            "batch" => Kind::Batch,
            "lint" => Kind::Lint,
            "stats" => Kind::Stats,
            "sleep" => Kind::Sleep,
            _ => Kind::Other,
        }
    }
}

const BUCKETS: usize = 32;

/// Log₂ microsecond histogram: bucket `i` counts observations in
/// `[2^i, 2^(i+1))` µs (bucket 0 also takes sub-microsecond samples).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    pub fn observe_micros(&self, micros: u64) {
        let idx = (64 - micros.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Upper bucket bound (µs) below which `q` of the observations fall.
    fn quantile_micros(counts: &[u64; BUCKETS], q: f64) -> u64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }

    fn snapshot(&self) -> Value {
        let counts = self.counts();
        let nonzero: Vec<Value> = counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                Value::obj(vec![
                    ("le_micros", Value::from(1u64 << (i + 1).min(63))),
                    ("count", Value::from(*c)),
                ])
            })
            .collect();
        Value::obj(vec![
            (
                "p50_le_micros",
                Value::from(Self::quantile_micros(&counts, 0.50)),
            ),
            (
                "p90_le_micros",
                Value::from(Self::quantile_micros(&counts, 0.90)),
            ),
            (
                "p99_le_micros",
                Value::from(Self::quantile_micros(&counts, 0.99)),
            ),
            ("buckets", Value::Array(nonzero)),
        ])
    }
}

#[derive(Debug, Default)]
pub struct KindStats {
    pub requests: AtomicU64,
    pub errors: AtomicU64,
    pub latency: Histogram,
}

/// All service counters. Shared as `Arc<Metrics>` between the engine, the
/// server and tests.
#[derive(Debug, Default)]
pub struct Metrics {
    per_kind: [KindStats; Kind::ALL.len()],
    /// Memoized model served from the canonical-shape cache.
    pub cache_hits: AtomicU64,
    /// Model had to be built (partitioning + symbolic analysis ran).
    pub cache_misses: AtomicU64,
    /// Lines that failed to parse as JSON.
    pub malformed: AtomicU64,
    /// Requests rejected by backpressure (queue full).
    pub rejected: AtomicU64,
    /// Requests rejected for exceeding a size limit.
    pub oversized: AtomicU64,
    /// Connections accepted over the lifetime of the server.
    pub connections: AtomicU64,
    /// Jobs currently queued or executing in the worker pool.
    pub queue_depth: AtomicU64,
    /// `error`-severity diagnostics returned by `lint` requests.
    pub lint_diag_errors: AtomicU64,
    /// `warning`-severity diagnostics returned by `lint` requests.
    pub lint_diag_warnings: AtomicU64,
    /// `info`-severity diagnostics returned by `lint` requests.
    pub lint_diag_infos: AtomicU64,
}

impl Metrics {
    pub fn kind(&self, k: Kind) -> &KindStats {
        &self.per_kind[Kind::ALL.iter().position(|x| *x == k).expect("kind listed")]
    }

    pub fn record(&self, k: Kind, micros: u64, ok: bool) {
        let s = self.kind(k);
        s.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            s.errors.fetch_add(1, Ordering::Relaxed);
        }
        s.latency.observe_micros(micros);
    }

    /// Everything as one JSON object (the `stats` response body).
    pub fn snapshot(&self) -> Value {
        let load = |a: &AtomicU64| Value::from(a.load(Ordering::Relaxed));
        let requests = Kind::ALL
            .iter()
            .map(|k| {
                let s = self.kind(*k);
                (
                    k.name().to_string(),
                    Value::obj(vec![
                        ("requests", load(&s.requests)),
                        ("errors", load(&s.errors)),
                        ("latency", s.latency.snapshot()),
                    ]),
                )
            })
            .collect();
        Value::obj(vec![
            ("requests", Value::Object(requests)),
            (
                "cache",
                Value::obj(vec![
                    ("hits", load(&self.cache_hits)),
                    ("misses", load(&self.cache_misses)),
                ]),
            ),
            (
                "lint",
                Value::obj(vec![(
                    "diagnostics",
                    Value::obj(vec![
                        ("error", load(&self.lint_diag_errors)),
                        ("warning", load(&self.lint_diag_warnings)),
                        ("info", load(&self.lint_diag_infos)),
                    ]),
                )]),
            ),
            ("malformed", load(&self.malformed)),
            ("rejected", load(&self.rejected)),
            ("oversized", load(&self.oversized)),
            ("connections", load(&self.connections)),
            ("queue_depth", load(&self.queue_depth)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.observe_micros(3); // bucket 1: [2,4)
        }
        for _ in 0..10 {
            h.observe_micros(1000); // bucket 9: [512,1024)
        }
        let counts = h.counts();
        assert_eq!(counts[1], 90);
        assert_eq!(counts[9], 10);
        assert_eq!(Histogram::quantile_micros(&counts, 0.5), 4);
        assert_eq!(Histogram::quantile_micros(&counts, 0.99), 1024);
    }

    #[test]
    fn record_tracks_errors_per_kind() {
        let m = Metrics::default();
        m.record(Kind::Predict, 10, true);
        m.record(Kind::Predict, 20, false);
        m.record(Kind::Analyze, 5, true);
        assert_eq!(m.kind(Kind::Predict).requests.load(Ordering::Relaxed), 2);
        assert_eq!(m.kind(Kind::Predict).errors.load(Ordering::Relaxed), 1);
        assert_eq!(m.kind(Kind::Analyze).errors.load(Ordering::Relaxed), 0);
        let snap = m.snapshot();
        let predict = snap.get("requests").unwrap().get("predict").unwrap();
        assert_eq!(predict.get("requests").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn zero_micros_lands_in_first_bucket() {
        let h = Histogram::default();
        h.observe_micros(0);
        assert_eq!(h.counts()[0], 1);
    }
}
