//! Lock-free service observability: per-request-kind counters, log₂ latency
//! histograms, cache hit rates and queue depth, all plain atomics so the hot
//! path never blocks on a metrics lock.
//!
//! Two exposition surfaces share these counters:
//!
//! * [`Metrics::snapshot`] — the JSON body of the `stats` op;
//! * [`Metrics::prometheus`] — Prometheus text exposition format (the
//!   `metrics` op), so a scraper can poll the daemon without parsing JSON.

use sdlo_wire::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Request kinds tracked separately. `Other` covers unknown ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Analyze,
    Predict,
    Advise,
    Batch,
    Lint,
    Stats,
    Metrics,
    Debug,
    Revise,
    Sleep,
    Other,
}

impl Kind {
    pub const ALL: [Kind; 11] = [
        Kind::Analyze,
        Kind::Predict,
        Kind::Advise,
        Kind::Batch,
        Kind::Lint,
        Kind::Stats,
        Kind::Metrics,
        Kind::Debug,
        Kind::Revise,
        Kind::Sleep,
        Kind::Other,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Kind::Analyze => "analyze",
            Kind::Predict => "predict",
            Kind::Advise => "advise",
            Kind::Batch => "batch",
            Kind::Lint => "lint",
            Kind::Stats => "stats",
            Kind::Metrics => "metrics",
            Kind::Debug => "debug",
            Kind::Revise => "revise",
            Kind::Sleep => "sleep",
            Kind::Other => "other",
        }
    }

    pub fn from_op(op: &str) -> Kind {
        match op {
            "analyze" => Kind::Analyze,
            "predict" => Kind::Predict,
            "advise" => Kind::Advise,
            "batch" => Kind::Batch,
            "lint" => Kind::Lint,
            "stats" => Kind::Stats,
            "metrics" => Kind::Metrics,
            "debug" => Kind::Debug,
            "revise" => Kind::Revise,
            "sleep" => Kind::Sleep,
            _ => Kind::Other,
        }
    }
}

const BUCKETS: usize = 32;

/// Log₂ microsecond histogram: bucket `i` counts observations in
/// `[2^i, 2^(i+1))` µs (bucket 0 also takes sub-microsecond samples).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Total observed microseconds (Prometheus `_sum`).
    sum_micros: AtomicU64,
}

impl Histogram {
    pub fn observe_micros(&self, micros: u64) {
        let idx = (64 - micros.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    fn counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Upper bucket bound (µs) below which `q` of the observations fall.
    /// `q` above 1.0 (or rounding at the top) clamps to the bound of the
    /// highest non-empty bucket — never a sentinel like `u64::MAX`.
    fn quantile_micros(counts: &[u64; BUCKETS], q: f64) -> u64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil() as u64;
        let mut seen = 0;
        let mut last_nonempty = 0;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if *c > 0 {
                last_nonempty = i;
            }
            if seen >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        1u64 << (last_nonempty + 1).min(63)
    }

    fn snapshot(&self) -> Value {
        let counts = self.counts();
        let nonzero: Vec<Value> = counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                Value::obj(vec![
                    ("le_micros", Value::from(1u64 << (i + 1).min(63))),
                    ("count", Value::from(*c)),
                ])
            })
            .collect();
        Value::obj(vec![
            (
                "p50_le_micros",
                Value::from(Self::quantile_micros(&counts, 0.50)),
            ),
            (
                "p90_le_micros",
                Value::from(Self::quantile_micros(&counts, 0.90)),
            ),
            (
                "p99_le_micros",
                Value::from(Self::quantile_micros(&counts, 0.99)),
            ),
            ("buckets", Value::Array(nonzero)),
        ])
    }
}

#[derive(Debug, Default)]
pub struct KindStats {
    pub requests: AtomicU64,
    pub errors: AtomicU64,
    /// Requests of this kind currently being handled (gauge).
    pub in_flight: AtomicU64,
    pub latency: Histogram,
}

/// All service counters. Shared as `Arc<Metrics>` between the engine, the
/// server and tests.
#[derive(Debug)]
pub struct Metrics {
    per_kind: [KindStats; Kind::ALL.len()],
    /// Memoized model served from the canonical-shape cache.
    pub cache_hits: AtomicU64,
    /// Model had to be built (partitioning + symbolic analysis ran).
    pub cache_misses: AtomicU64,
    /// Models actually built from scratch. Differs from `cache_misses` when
    /// a disk-cache tier is configured: an in-memory miss satisfied from
    /// disk counts as a miss but not a build. A warm-restarted backend
    /// serving only previously-seen shapes reports 0 here.
    pub models_built: AtomicU64,
    /// In-memory misses satisfied from the disk-cache tier.
    pub disk_hits: AtomicU64,
    /// Models persisted to the disk-cache tier.
    pub disk_writes: AtomicU64,
    /// Disk-cache entries rejected (corrupt/stale/unreadable) or failed
    /// writes; every rejection is followed by a rebuild, never a crash.
    pub disk_errors: AtomicU64,
    /// Lines that failed to parse as JSON.
    pub malformed: AtomicU64,
    /// Requests rejected by backpressure (queue full).
    pub rejected: AtomicU64,
    /// Requests rejected for exceeding a size limit.
    pub oversized: AtomicU64,
    /// Connections accepted over the lifetime of the server.
    pub connections: AtomicU64,
    /// Connections currently open (gauge): incremented on accept,
    /// decremented when the reactor retires the connection.
    pub connections_active: AtomicU64,
    /// Jobs currently queued or executing in the worker pool.
    pub queue_depth: AtomicU64,
    /// Tile searches cut short by their budget (`advise` replies with
    /// `completed:false`).
    pub searches_cancelled: AtomicU64,
    /// `error`-severity diagnostics returned by `lint` requests.
    pub lint_diag_errors: AtomicU64,
    /// `warning`-severity diagnostics returned by `lint` requests.
    pub lint_diag_warnings: AtomicU64,
    /// `info`-severity diagnostics returned by `lint` requests.
    pub lint_diag_infos: AtomicU64,
    /// `revise` requests whose base canon hash had no live DAG session
    /// (answered by falling back toward a full build).
    pub revise_base_misses: AtomicU64,
    /// `revise` requests that built a model DAG from scratch (cold start
    /// or evicted session).
    pub revise_full_builds: AtomicU64,
    /// Dirty expression nodes re-evaluated across all `revise` deltas.
    pub revise_nodes_reevaluated: AtomicU64,
    /// Expression nodes proven clean (fingerprint or dependency check) and
    /// reused across all `revise` deltas.
    pub revise_nodes_reused: AtomicU64,
    /// Live DAG sessions held by the engine (gauge).
    pub revise_sessions: AtomicU64,
    /// Per-phase attribution, all ops pooled: microseconds a request spent
    /// queued before a worker picked it up.
    pub queue_wait: Histogram,
    /// Microseconds executing in the engine (parse → dispatch → encode).
    pub exec: Histogram,
    /// Microseconds between engine completion and the reply flush (reorder
    /// wait + socket write).
    pub write: Histogram,
    /// Process start, for `uptime_seconds`.
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            per_kind: Default::default(),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            models_built: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
            disk_errors: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            oversized: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            searches_cancelled: AtomicU64::new(0),
            lint_diag_errors: AtomicU64::new(0),
            lint_diag_warnings: AtomicU64::new(0),
            lint_diag_infos: AtomicU64::new(0),
            revise_base_misses: AtomicU64::new(0),
            revise_full_builds: AtomicU64::new(0),
            revise_nodes_reevaluated: AtomicU64::new(0),
            revise_nodes_reused: AtomicU64::new(0),
            revise_sessions: AtomicU64::new(0),
            queue_wait: Histogram::default(),
            exec: Histogram::default(),
            write: Histogram::default(),
            started: Instant::now(),
        }
    }
}

impl Metrics {
    pub fn kind(&self, k: Kind) -> &KindStats {
        &self.per_kind[Kind::ALL.iter().position(|x| *x == k).expect("kind listed")]
    }

    pub fn record(&self, k: Kind, micros: u64, ok: bool) {
        let s = self.kind(k);
        s.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            s.errors.fetch_add(1, Ordering::Relaxed);
        }
        s.latency.observe_micros(micros);
    }

    /// Seconds since this `Metrics` (≈ the service) was created.
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Everything as one JSON object (the `stats` response body).
    pub fn snapshot(&self) -> Value {
        let load = |a: &AtomicU64| Value::from(a.load(Ordering::Relaxed));
        let requests = Kind::ALL
            .iter()
            .map(|k| {
                let s = self.kind(*k);
                (
                    k.name().to_string(),
                    Value::obj(vec![
                        ("requests", load(&s.requests)),
                        ("errors", load(&s.errors)),
                        ("in_flight", load(&s.in_flight)),
                        ("latency", s.latency.snapshot()),
                    ]),
                )
            })
            .collect();
        Value::obj(vec![
            ("version", Value::from(env!("CARGO_PKG_VERSION"))),
            ("uptime_seconds", Value::from(self.uptime_seconds())),
            ("requests", Value::Object(requests)),
            (
                "cache",
                Value::obj(vec![
                    ("hits", load(&self.cache_hits)),
                    ("misses", load(&self.cache_misses)),
                    ("built", load(&self.models_built)),
                    ("disk_hits", load(&self.disk_hits)),
                    ("disk_writes", load(&self.disk_writes)),
                    ("disk_errors", load(&self.disk_errors)),
                ]),
            ),
            (
                "lint",
                Value::obj(vec![(
                    "diagnostics",
                    Value::obj(vec![
                        ("error", load(&self.lint_diag_errors)),
                        ("warning", load(&self.lint_diag_warnings)),
                        ("info", load(&self.lint_diag_infos)),
                    ]),
                )]),
            ),
            (
                "revise",
                Value::obj(vec![
                    ("sessions", load(&self.revise_sessions)),
                    ("base_misses", load(&self.revise_base_misses)),
                    ("full_builds", load(&self.revise_full_builds)),
                    ("nodes_reevaluated", load(&self.revise_nodes_reevaluated)),
                    ("nodes_reused", load(&self.revise_nodes_reused)),
                ]),
            ),
            (
                "phases",
                Value::obj(vec![
                    ("queue", self.queue_wait.snapshot()),
                    ("exec", self.exec.snapshot()),
                    ("write", self.write.snapshot()),
                ]),
            ),
            ("searches_cancelled", load(&self.searches_cancelled)),
            ("malformed", load(&self.malformed)),
            ("rejected", load(&self.rejected)),
            ("oversized", load(&self.oversized)),
            ("connections", load(&self.connections)),
            ("connections_active", load(&self.connections_active)),
            ("queue_depth", load(&self.queue_depth)),
        ])
    }

    /// Prometheus text exposition (version 0.0.4) of every counter that
    /// [`Metrics::snapshot`] reports. Histogram buckets are rendered
    /// cumulatively as the format requires (our internal log₂ buckets are
    /// per-bucket). `cached_shapes` is the current model-cache size, which
    /// lives outside `Metrics`.
    pub fn prometheus(&self, cached_shapes: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);

        out.push_str("# TYPE sdlo_requests_total counter\n");
        for k in Kind::ALL {
            let _ = writeln!(
                out,
                "sdlo_requests_total{{op=\"{}\"}} {}",
                k.name(),
                load(&self.kind(k).requests)
            );
        }
        out.push_str("# TYPE sdlo_request_errors_total counter\n");
        for k in Kind::ALL {
            let _ = writeln!(
                out,
                "sdlo_request_errors_total{{op=\"{}\"}} {}",
                k.name(),
                load(&self.kind(k).errors)
            );
        }
        out.push_str("# TYPE sdlo_inflight gauge\n");
        for k in Kind::ALL {
            let _ = writeln!(
                out,
                "sdlo_inflight{{op=\"{}\"}} {}",
                k.name(),
                load(&self.kind(k).in_flight)
            );
        }
        out.push_str("# TYPE sdlo_request_latency_micros histogram\n");
        for k in Kind::ALL {
            let h = &self.kind(k).latency;
            let counts = h.counts();
            let mut cum = 0u64;
            for (i, c) in counts.iter().enumerate() {
                cum += c;
                if *c > 0 || i + 1 == BUCKETS {
                    let _ = writeln!(
                        out,
                        "sdlo_request_latency_micros_bucket{{op=\"{}\",le=\"{}\"}} {}",
                        k.name(),
                        1u64 << (i + 1).min(63),
                        cum
                    );
                }
            }
            let _ = writeln!(
                out,
                "sdlo_request_latency_micros_bucket{{op=\"{}\",le=\"+Inf\"}} {}",
                k.name(),
                cum
            );
            let _ = writeln!(
                out,
                "sdlo_request_latency_micros_count{{op=\"{}\"}} {}",
                k.name(),
                cum
            );
            let _ = writeln!(
                out,
                "sdlo_request_latency_micros_sum{{op=\"{}\"}} {}",
                k.name(),
                h.sum_micros.load(Ordering::Relaxed)
            );
        }
        for (name, h) in [
            ("sdlo_request_queue_micros", &self.queue_wait),
            ("sdlo_request_exec_micros", &self.exec),
            ("sdlo_request_write_micros", &self.write),
        ] {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let counts = h.counts();
            let mut cum = 0u64;
            for (i, c) in counts.iter().enumerate() {
                cum += c;
                if *c > 0 || i + 1 == BUCKETS {
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{le=\"{}\"}} {cum}",
                        1u64 << (i + 1).min(63)
                    );
                }
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
            let _ = writeln!(out, "{name}_count {cum}");
            let _ = writeln!(out, "{name}_sum {}", h.sum_micros.load(Ordering::Relaxed));
        }
        let singles: [(&str, &str, u64); 19] = [
            (
                "sdlo_model_cache_hits_total",
                "counter",
                load(&self.cache_hits),
            ),
            (
                "sdlo_searches_cancelled_total",
                "counter",
                load(&self.searches_cancelled),
            ),
            (
                "sdlo_model_cache_misses_total",
                "counter",
                load(&self.cache_misses),
            ),
            (
                "sdlo_models_built_total",
                "counter",
                load(&self.models_built),
            ),
            (
                "sdlo_model_cache_disk_hits_total",
                "counter",
                load(&self.disk_hits),
            ),
            (
                "sdlo_model_cache_disk_writes_total",
                "counter",
                load(&self.disk_writes),
            ),
            (
                "sdlo_model_cache_disk_errors_total",
                "counter",
                load(&self.disk_errors),
            ),
            ("sdlo_cached_shapes", "gauge", cached_shapes),
            (
                "sdlo_malformed_lines_total",
                "counter",
                load(&self.malformed),
            ),
            (
                "sdlo_rejected_requests_total",
                "counter",
                load(&self.rejected),
            ),
            (
                "sdlo_oversized_requests_total",
                "counter",
                load(&self.oversized),
            ),
            ("sdlo_connections_total", "counter", load(&self.connections)),
            (
                "sdlo_connections_active",
                "gauge",
                load(&self.connections_active),
            ),
            ("sdlo_queue_depth", "gauge", load(&self.queue_depth)),
            (
                "sdlo_revise_base_misses_total",
                "counter",
                load(&self.revise_base_misses),
            ),
            (
                "sdlo_revise_full_builds_total",
                "counter",
                load(&self.revise_full_builds),
            ),
            (
                "sdlo_revise_nodes_reevaluated_total",
                "counter",
                load(&self.revise_nodes_reevaluated),
            ),
            (
                "sdlo_revise_nodes_reused_total",
                "counter",
                load(&self.revise_nodes_reused),
            ),
            ("sdlo_revise_sessions", "gauge", load(&self.revise_sessions)),
        ];
        for (name, ty, v) in singles {
            let _ = writeln!(out, "# TYPE {name} {ty}");
            let _ = writeln!(out, "{name} {v}");
        }
        out.push_str("# TYPE sdlo_lint_diagnostics_total counter\n");
        for (sev, a) in [
            ("error", &self.lint_diag_errors),
            ("warning", &self.lint_diag_warnings),
            ("info", &self.lint_diag_infos),
        ] {
            let _ = writeln!(
                out,
                "sdlo_lint_diagnostics_total{{severity=\"{sev}\"}} {}",
                load(a)
            );
        }
        out.push_str("# TYPE sdlo_uptime_seconds gauge\n");
        let _ = writeln!(out, "sdlo_uptime_seconds {:.3}", self.uptime_seconds());
        out.push_str("# TYPE sdlo_build_info gauge\n");
        let _ = writeln!(
            out,
            "sdlo_build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.observe_micros(3); // bucket 1: [2,4)
        }
        for _ in 0..10 {
            h.observe_micros(1000); // bucket 9: [512,1024)
        }
        let counts = h.counts();
        assert_eq!(counts[1], 90);
        assert_eq!(counts[9], 10);
        assert_eq!(Histogram::quantile_micros(&counts, 0.5), 4);
        assert_eq!(Histogram::quantile_micros(&counts, 0.99), 1024);
        assert_eq!(h.sum_micros.load(Ordering::Relaxed), 90 * 3 + 10 * 1000);
    }

    #[test]
    fn quantile_clamps_to_highest_nonempty_bucket() {
        let h = Histogram::default();
        h.observe_micros(3); // bucket 1, bound 4
        h.observe_micros(1000); // bucket 9, bound 1024
        let counts = h.counts();
        // A quantile beyond 1.0 must clamp to the top non-empty bucket's
        // bound, not fall through to u64::MAX.
        assert_eq!(Histogram::quantile_micros(&counts, 1.5), 1024);
        assert_eq!(Histogram::quantile_micros(&counts, 1.0), 1024);
    }

    #[test]
    fn record_tracks_errors_per_kind() {
        let m = Metrics::default();
        m.record(Kind::Predict, 10, true);
        m.record(Kind::Predict, 20, false);
        m.record(Kind::Analyze, 5, true);
        assert_eq!(m.kind(Kind::Predict).requests.load(Ordering::Relaxed), 2);
        assert_eq!(m.kind(Kind::Predict).errors.load(Ordering::Relaxed), 1);
        assert_eq!(m.kind(Kind::Analyze).errors.load(Ordering::Relaxed), 0);
        let snap = m.snapshot();
        let predict = snap.get("requests").unwrap().get("predict").unwrap();
        assert_eq!(predict.get("requests").unwrap().as_u64(), Some(2));
        assert_eq!(
            snap.get("version").unwrap().as_str(),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(snap.get("uptime_seconds").unwrap().as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn zero_micros_lands_in_first_bucket() {
        let h = Histogram::default();
        h.observe_micros(0);
        assert_eq!(h.counts()[0], 1);
    }

    #[test]
    fn prometheus_text_matches_counters() {
        let m = Metrics::default();
        m.record(Kind::Predict, 10, true);
        m.record(Kind::Predict, 20, false);
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        let text = m.prometheus(7);
        assert!(text.contains("sdlo_requests_total{op=\"predict\"} 2"));
        assert!(text.contains("sdlo_request_errors_total{op=\"predict\"} 1"));
        assert!(text.contains("sdlo_model_cache_hits_total 3"));
        assert!(text.contains("sdlo_cached_shapes 7"));
        assert!(text.contains("sdlo_build_info{version="));
        // Histogram buckets must be cumulative and end with +Inf == _count.
        assert!(text.contains("sdlo_request_latency_micros_bucket{op=\"predict\",le=\"+Inf\"} 2"));
        assert!(text.contains("sdlo_request_latency_micros_count{op=\"predict\"} 2"));
        assert!(text.contains("sdlo_request_latency_micros_sum{op=\"predict\"} 30"));
    }

    #[test]
    fn phase_histograms_expose_unlabeled_series() {
        let m = Metrics::default();
        m.queue_wait.observe_micros(3); // bucket bound 4
        m.queue_wait.observe_micros(1000); // bucket bound 1024
        m.exec.observe_micros(100); // bucket bound 128
        let text = m.prometheus(0);
        assert!(text.contains("# TYPE sdlo_request_queue_micros histogram"));
        assert!(text.contains("sdlo_request_queue_micros_bucket{le=\"4\"} 1"));
        assert!(text.contains("sdlo_request_queue_micros_bucket{le=\"1024\"} 2"));
        assert!(text.contains("sdlo_request_queue_micros_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("sdlo_request_queue_micros_count 2"));
        assert!(text.contains("sdlo_request_queue_micros_sum 1003"));
        assert!(text.contains("sdlo_request_exec_micros_bucket{le=\"128\"} 1"));
        assert!(text.contains("sdlo_request_write_micros_count 0"));
        // The queue-depth gauge rides along for the loadgen cross-check.
        assert!(text.contains("# TYPE sdlo_queue_depth gauge"));
        let snap = m.snapshot();
        let phases = snap.get("phases").unwrap();
        assert_eq!(
            phases
                .get("queue")
                .unwrap()
                .get("p99_le_micros")
                .unwrap()
                .as_u64(),
            Some(1024)
        );
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let m = Metrics::default();
        m.record(Kind::Analyze, 3, true); // bucket bound 4
        m.record(Kind::Analyze, 1000, true); // bucket bound 1024
        let text = m.prometheus(0);
        assert!(text.contains("sdlo_request_latency_micros_bucket{op=\"analyze\",le=\"4\"} 1"));
        assert!(text.contains("sdlo_request_latency_micros_bucket{op=\"analyze\",le=\"1024\"} 2"));
    }
}
