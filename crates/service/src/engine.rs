//! The embeddable request engine: JSON request in, JSON response out.
//!
//! The engine owns the canonical-shape model cache and the metrics; the TCP
//! server ([`crate::server`]) is a thin transport around it, and tests or
//! other hosts can drive it directly via [`Engine::handle_line`].
//!
//! ## Request shape
//!
//! Every request is one JSON object with an `"op"` field and an optional
//! `"id"` echoed back verbatim:
//!
//! * `{"op":"analyze","program":…}` — reuse components + symbolic
//!   stack-distance expressions.
//! * `{"op":"predict","program":…,"bindings":{…},"cache":8192}` — predicted
//!   miss count (add `"per_array":true` for the per-array split).
//! * `{"op":"advise","program":…,"bindings":{…},"cache":8192,"space":{…}}`
//!   — optimal tile sizes; `"mode":"exhaustive"` for the unpruned baseline,
//!   `"bounds_free":{…}` for the §6 bounds-oblivious search.
//! * `{"op":"batch","requests":[…]}` — sub-requests evaluated in parallel.
//! * `{"op":"lint","program":…}` — static diagnostics (`sdlo-analysis`):
//!   model-assumption violations and locality anti-patterns, each with a
//!   rule id, severity, span and optional fix-it. Inline programs that fail
//!   [`Program::validate`] still lint (the `structure` diagnostic reports
//!   the problem) — only schema-level decode errors fail the request.
//! * `{"op":"stats"}` — counters, latency histograms, cache hit rate.
//! * `{"op":"metrics"}` — the same counters in Prometheus text exposition
//!   format (as a `"text"` field; add `"raw":true` at the transport level
//!   for a scrape-ready plain-text reply).
//!
//! `"program"` is either a builtin name (`"matmul"`, `"tiled_matmul"`, …)
//! or an inline program object (see `sdlo-wire`).
//!
//! Each request's shared fields decode once into a [`crate::api::Envelope`];
//! the op is then resolved against the [`crate::ops`] registry (one module
//! per op, each owning its body schema) and served. Replies are built by
//! the [`crate::api`] envelope builders, so every response — success or
//! failure — shares one shape:
//! `{"id":…,"request_id":…,"v":1,"ok":true,…}` or
//! `{"id":…,"request_id":…,"v":1,"ok":false,"error":{"kind":…,"message":…}}`.
//! See the [`crate::api`] docs for versioning rules.
//!
//! `advise` accepts an optional search budget (`"deadline_ms"`,
//! `"max_evals"`); a search that exhausts it returns `ok:true` with
//! `completed:false` and the best tile found so far instead of blocking.
//!
//! Every response carries a `"request_id"`: the client-supplied
//! `"request_id"` string if present, otherwise a server-generated
//! `req-XXXXXXXX`. The id is attached to the request's trace span
//! (`service.request`) so daemon traces correlate with client logs, and is
//! present on error replies too.

use crate::api::{self, fail, ApiError, Envelope, ErrorKind, ProgramSpec, RoutingKey};
use crate::cache::ShardedCache;
use crate::diskcache::{DiskCache, DiskOutcome};
use crate::metrics::{Kind, Metrics};
use sdlo_core::model::MissModel;
use sdlo_ir::canon::{canonicalize, Canonical};
use sdlo_ir::programs::{builtin, BUILTIN_NAMES as BUILTINS};
use sdlo_ir::Program;
use sdlo_symbolic::{Bindings, Sym};
use sdlo_tilesearch::SearchSpace;
use sdlo_trace::flight::{FlightRecord, FlightRecorder};
use sdlo_trace::AttrValue;
use sdlo_wire::Value;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

/// Engine limits and cache sizing.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Shards of the model cache.
    pub cache_shards: usize,
    /// Total cached shapes.
    pub cache_capacity: usize,
    /// Maximum sub-requests in one `batch`.
    pub max_batch: usize,
    /// Maximum tile-search grid points per `advise`.
    pub max_search_points: usize,
    /// Soft wall-clock budget for one request; `batch` stops dispatching
    /// new sub-requests past it.
    pub max_request_millis: u64,
    /// Enable test-only ops (`sleep`) used by the loopback tests to make
    /// backpressure deterministic. Off in production binaries.
    pub enable_test_ops: bool,
    /// Disk-backed model-cache directory ([`crate::diskcache`]). When set,
    /// in-memory misses first try the persisted tier before building, and
    /// every freshly built model is persisted — so a restarted process
    /// warm-starts without rebuilding any previously-seen shape.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Request slots in the always-on flight recorder (`debug` op).
    pub flight_capacity: usize,
    /// Requests slower than this total (µs) get their span tree captured by
    /// the flight recorder. 0 disables slow captures.
    pub slow_threshold_micros: u64,
    /// Live `revise` sessions (reactive model DAGs) held at once; the
    /// least-recently-revised session is evicted past this. An evicted base
    /// is not an error — the next `revise` against it falls back to a full
    /// DAG build.
    pub revise_sessions: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_shards: 8,
            cache_capacity: 256,
            max_batch: 1024,
            max_search_points: 65_536,
            max_request_millis: 30_000,
            enable_test_ops: false,
            cache_dir: None,
            flight_capacity: 256,
            slow_threshold_micros: 100_000,
            revise_sessions: 32,
        }
    }
}

/// The engine's live `revise` sessions: canonical shape hash → reactive
/// [`ModelDag`](sdlo_core::ModelDag), LRU-bounded. Sessions are mutated in
/// place under one lock — a `revise` delta is exactly the cheap path the
/// DAG exists for, so the critical section is short; cold DAG builds happen
/// *outside* the lock and are inserted afterwards.
pub(crate) struct ReviseSessions {
    capacity: usize,
    tick: u64,
    entries: Vec<ReviseEntry>,
}

struct ReviseEntry {
    hash: u64,
    dag: sdlo_core::ModelDag,
    last_used: u64,
}

impl ReviseSessions {
    fn new(capacity: usize) -> Self {
        ReviseSessions {
            capacity: capacity.max(1),
            tick: 0,
            entries: Vec::new(),
        }
    }

    /// The live DAG for `hash`, touched for LRU, if any.
    pub(crate) fn dag_mut(&mut self, hash: u64) -> Option<&mut sdlo_core::ModelDag> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.iter_mut().find(|e| e.hash == hash).map(|e| {
            e.last_used = tick;
            &mut e.dag
        })
    }

    /// Install (or replace) the session for `hash`, evicting the
    /// least-recently-revised session at capacity.
    pub(crate) fn insert(&mut self, hash: u64, dag: sdlo_core::ModelDag) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.iter_mut().find(|e| e.hash == hash) {
            e.dag = dag;
            e.last_used = tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("non-empty sessions");
            self.entries.swap_remove(lru);
        }
        self.entries.push(ReviseEntry {
            hash,
            dag,
            last_used: tick,
        });
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

/// A cached analysis: the canonicalization (for name translation) plus the
/// built model.
pub struct CachedModel {
    pub canonical: Arc<Canonical>,
    pub model: MissModel,
}

/// A request's program together with its canonicalization. Builtin names
/// resolve to a per-process table so steady-state requests skip the
/// canonicalization walk entirely; inline programs are canonicalized per
/// request.
#[derive(Clone)]
pub struct Resolved {
    pub program: Arc<Program>,
    pub canonical: Arc<Canonical>,
}

/// The tile-advisor engine. Cheap to share (`Arc<Engine>`); all state is
/// internally synchronized.
pub struct Engine {
    pub(crate) config: EngineConfig,
    pub(crate) cache: ShardedCache<CachedModel>,
    /// Persistent tier behind the in-memory cache, when configured.
    disk: Option<DiskCache>,
    pub(crate) metrics: Arc<Metrics>,
    /// Always-on ring of recent requests + slow-request span captures.
    pub(crate) flight: Arc<FlightRecorder>,
    /// Live `revise` sessions (reactive model DAGs), LRU-bounded.
    pub(crate) revise: std::sync::Mutex<ReviseSessions>,
    /// Monotone source for server-generated request ids.
    req_seq: std::sync::atomic::AtomicU64,
}

/// Per-request facts the transport needs *after* the reply text exists: the
/// flight-recorder ticket (to amend the write phase in), the request's root
/// span (to parent fabricated phase spans under) and whether the reply
/// carries an opt-in `timing` object the reactor should complete.
#[derive(Debug, Clone, Copy)]
pub struct RequestMeta {
    pub flight_ticket: u64,
    pub root_span: Option<u64>,
    pub server_timing: bool,
}

/// What an op returns: the reply body fields in wire order, or an error on
/// its way into the unified envelope.
pub type OpResult = Result<Vec<(&'static str, Value)>, ApiError>;

impl Engine {
    pub fn new(config: EngineConfig) -> Self {
        let cache = ShardedCache::new(config.cache_shards, config.cache_capacity);
        let disk = config.cache_dir.clone().map(DiskCache::new);
        let flight = Arc::new(FlightRecorder::new(
            config.flight_capacity,
            config.slow_threshold_micros,
        ));
        let revise = std::sync::Mutex::new(ReviseSessions::new(config.revise_sessions));
        Engine {
            config,
            cache,
            disk,
            metrics: Arc::new(Metrics::default()),
            flight,
            revise,
            req_seq: std::sync::atomic::AtomicU64::new(1),
        }
    }

    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    pub fn flight(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.flight)
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Handle one newline-delimited request line; always returns exactly one
    /// single-line JSON response.
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_line_timed(line, 0).0
    }

    /// Like [`Engine::handle_line`], but the transport reports how long the
    /// line sat in the worker queue so the per-phase histograms, the opt-in
    /// `timing` reply section and the flight record can attribute it. The
    /// meta is `None` only for lines that failed to parse as JSON.
    pub fn handle_line_timed(
        &self,
        line: &str,
        queue_micros: u64,
    ) -> (String, Option<RequestMeta>) {
        let v = match sdlo_wire::parse(line) {
            Ok(v) => v,
            Err(e) => {
                self.metrics
                    .malformed
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let err = fail(ErrorKind::Malformed, e.to_string());
                return (
                    api::error_reply(None, &self.next_request_id(), &err).render(),
                    None,
                );
            }
        };
        let (reply, meta) = self.handle_timed(&v, queue_micros);
        (reply.render(), Some(meta))
    }

    /// Next server-generated request id.
    pub(crate) fn next_request_id(&self) -> String {
        let n = self
            .req_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        format!("req-{n:08x}")
    }

    /// Handle one parsed request document: parse → dispatch → encode.
    pub fn handle(&self, request: &Value) -> Value {
        self.handle_timed(request, 0).0
    }

    /// Handle one parsed request document, attributing `queue_micros` of
    /// pre-pickup wait to it. Every request — success or failure — lands in
    /// the flight recorder; the returned [`RequestMeta`] lets the transport
    /// amend the write phase in once the reply is actually flushed.
    pub fn handle_timed(&self, request: &Value, queue_micros: u64) -> (Value, RequestMeta) {
        let started = Instant::now();
        let envelope = api::parse_envelope(request);
        let kind = Kind::from_op(&envelope.op);
        let request_id = envelope
            .request_id
            .clone()
            .unwrap_or_else(|| self.next_request_id());
        let remote_parent = envelope.trace.as_ref().and_then(|t| t.parent_span);
        let span = sdlo_trace::span_with_parent("service.request", remote_parent);
        span.attr("op", envelope.op.as_str());
        span.attr("request_id", request_id.as_str());
        if let Some(trace) = &envelope.trace {
            span.attr("trace_id", trace.trace_id.as_str());
        }
        let root_span = span.id();
        let in_flight = &self.metrics.kind(kind).in_flight;
        in_flight.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let outcome = self.dispatch(request, &envelope, started);
        in_flight.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
        let micros = started.elapsed().as_micros() as u64;
        self.metrics.record(kind, micros, outcome.is_ok());
        self.metrics.exec.observe_micros(micros);
        drop(span);
        let status = match &outcome {
            Ok(_) => "ok".to_string(),
            Err(e) => e.kind.as_str().to_string(),
        };
        // `timing` is strictly opt-in, and only success replies carry it —
        // the error envelope's shape is pinned by the golden wire tests.
        let server_timing = envelope.server_timing && outcome.is_ok();
        let reply = match outcome {
            Ok(mut body) => {
                if server_timing {
                    // Appended last so the reactor can splice the
                    // write-phase micros in at flush time.
                    body.push((
                        "timing",
                        Value::obj(vec![
                            ("queue_micros", Value::from(queue_micros)),
                            ("exec_micros", Value::from(micros)),
                        ]),
                    ));
                }
                api::reply(envelope.id, &request_id, body)
            }
            Err(e) => api::error_reply(envelope.id, &request_id, &e),
        };
        let canon_hash = match api::routing_key(request) {
            RoutingKey::Shape(h) => h,
            RoutingKey::Any => 0,
        };
        let flight_ticket = self.flight.push(
            FlightRecord {
                op: envelope.op.clone(),
                canon_hash,
                status,
                queue_micros,
                exec_micros: micros,
                total_micros: queue_micros + micros,
                request_id,
                trace_id: envelope
                    .trace
                    .as_ref()
                    .map(|t| t.trace_id.clone())
                    .unwrap_or_default(),
                ..FlightRecord::default()
            },
            root_span,
        );
        (
            reply,
            RequestMeta {
                flight_ticket,
                root_span,
                server_timing,
            },
        )
    }

    /// Gate the version, resolve the op against the registry, serve it.
    /// The two failure modes that belong to no op — unsupported version and
    /// unknown/missing `op` — are produced here, never in an op module.
    fn dispatch(&self, request: &Value, envelope: &Envelope, started: Instant) -> OpResult {
        api::check_version(envelope)?;
        let Some(op) = crate::ops::find(&envelope.op) else {
            return Err(if envelope.op.is_empty() {
                fail(ErrorKind::Unsupported, "missing `op` field")
            } else {
                fail(
                    ErrorKind::Unsupported,
                    format!("unknown op `{}`", envelope.op),
                )
            });
        };
        op.serve(
            self,
            &crate::ops::OpCtx {
                request,
                envelope,
                started,
            },
        )
    }

    // -- program resolution + memoized analysis ----------------------------

    pub(crate) fn resolve_spec(&self, spec: ProgramSpec) -> Result<Resolved, ApiError> {
        match spec {
            ProgramSpec::Builtin(name) => builtin_resolved(&name).ok_or_else(|| {
                fail(
                    ErrorKind::Schema,
                    format!(
                        "unknown builtin program `{name}` (expected one of {})",
                        BUILTINS.join(", ")
                    ),
                )
            }),
            ProgramSpec::Inline(program) => {
                let canonical = Arc::new(canonicalize(&program));
                Ok(Resolved {
                    program: Arc::new(program),
                    canonical,
                })
            }
        }
    }

    /// Fetch (or build) the memoized model for an already-canonicalized
    /// program. This is the expensive middle every request funnels through.
    pub(crate) fn model_for(&self, resolved: &Resolved) -> (Arc<CachedModel>, bool) {
        let canonical = &resolved.canonical;
        let hash = canonical.hash;
        let (cached, hit) = self.cache.get_or_build(hash, &canonical.program, || {
            let model = self.load_or_build(hash, canonical);
            CachedModel {
                canonical: Arc::clone(canonical),
                model,
            }
        });
        let counter = if hit {
            &self.metrics.cache_hits
        } else {
            &self.metrics.cache_misses
        };
        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        (cached, hit)
    }

    /// The cached model bearing `hash` by hash alone (the `revise` op's
    /// base): memory first, then the disk tier. A disk hit is promoted into
    /// the in-memory cache so the revise session and ordinary requests for
    /// the same shape share one model. No builder is available — a hash
    /// names a shape only after some request has built it.
    pub(crate) fn model_by_hash(&self, hash: u64) -> Option<Arc<CachedModel>> {
        use std::sync::atomic::Ordering::Relaxed;
        if let Some(cached) = self.cache.get_by_hash(hash) {
            self.metrics.cache_hits.fetch_add(1, Relaxed);
            return Some(cached);
        }
        let (program, model) = self.disk.as_ref()?.load_by_hash(hash)?;
        self.metrics.disk_hits.fetch_add(1, Relaxed);
        // The stored program is already canonical (verified by
        // `load_by_hash`); re-canonicalizing just rebuilds the `Canonical`
        // wrapper the cache entry wants.
        let canonical = Arc::new(canonicalize(&program));
        let (cached, _) = self
            .cache
            .get_or_build(hash, &canonical.program, || CachedModel {
                canonical: Arc::clone(&canonical),
                model,
            });
        Some(cached)
    }

    /// In-memory miss path: consult the persisted tier first; only build —
    /// and persist — when disk has no trustworthy entry. Disk failures are
    /// strictly non-fatal: the worst case is a rebuild.
    fn load_or_build(&self, hash: u64, canonical: &Canonical) -> MissModel {
        use std::sync::atomic::Ordering::Relaxed;
        if let Some(disk) = &self.disk {
            match disk.load(hash, &canonical.program) {
                DiskOutcome::Hit(model) => {
                    self.metrics.disk_hits.fetch_add(1, Relaxed);
                    return model;
                }
                DiskOutcome::Rejected(reason) => {
                    self.metrics.disk_errors.fetch_add(1, Relaxed);
                    sdlo_trace::log::warn(
                        "service",
                        "disk_cache.rejected",
                        &[
                            ("canon_hash", AttrValue::Str(format!("{hash:016x}"))),
                            ("reason", AttrValue::Str(reason.to_string())),
                        ],
                    );
                }
                DiskOutcome::Miss => {}
            }
        }
        self.metrics.models_built.fetch_add(1, Relaxed);
        let model = MissModel::build(&canonical.program);
        if let Some(disk) = &self.disk {
            match disk.store(hash, &canonical.program, &model) {
                Ok(()) => {
                    self.metrics.disk_writes.fetch_add(1, Relaxed);
                }
                Err(e) => {
                    self.metrics.disk_errors.fetch_add(1, Relaxed);
                    sdlo_trace::log::warn(
                        "service",
                        "disk_cache.write_failed",
                        &[
                            ("canon_hash", AttrValue::Str(format!("{hash:016x}"))),
                            ("error", AttrValue::Str(e.to_string())),
                        ],
                    );
                }
            }
        }
        model
    }

    /// Map a canonical `ArrayId` back to the requester's array name.
    pub(crate) fn original_name(
        program: &Program,
        canonical: &Canonical,
    ) -> impl Fn(sdlo_ir::ArrayId) -> String {
        let names: Vec<String> = canonical
            .array_map
            .iter()
            .map(|orig| program.array(*orig).name.name().to_string())
            .collect();
        move |id: sdlo_ir::ArrayId| {
            names
                .get(id.0)
                .cloned()
                .unwrap_or_else(|| format!("A{}", id.0))
        }
    }

    /// The full Prometheus text exposition, including the cache-size gauge
    /// that lives outside [`Metrics`]. Used by the `metrics` op and by the
    /// transport's raw-scrape path.
    pub fn prometheus(&self) -> String {
        self.metrics.prometheus(self.cache.len() as u64)
    }

    // -- request validation helpers -----------------------------------------

    /// Grid-size cap: the schema checks already ran at parse time; the cap
    /// is engine policy.
    pub(crate) fn check_grid(&self, space: &SearchSpace) -> Result<(), ApiError> {
        let points = api::grid_points(space);
        if points > self.config.max_search_points as u64 {
            return Err(fail(
                ErrorKind::Limit,
                format!(
                    "search grid of {points} points exceeds max_search_points={}",
                    self.config.max_search_points
                ),
            ));
        }
        Ok(())
    }

    /// Every free symbol of the program must be bound, except `except`.
    pub(crate) fn require_bound(
        &self,
        program: &Program,
        bindings: &Bindings,
        except: &[String],
    ) -> Result<(), ApiError> {
        let except: BTreeSet<Sym> = except.iter().map(|s| Sym::new(s.as_str())).collect();
        let missing: Vec<String> = program
            .free_symbols()
            .into_iter()
            .filter(|s| !except.contains(s) && bindings.get(s).is_none())
            .map(|s| s.name().to_string())
            .collect();
        if missing.is_empty() {
            Ok(())
        } else {
            Err(fail(
                ErrorKind::Schema,
                format!("unbound free symbols: {}", missing.join(", ")),
            ))
        }
    }

    /// Every free symbol must appear in `covered` (bounds-free advise).
    pub(crate) fn require_covered(
        &self,
        program: &Program,
        covered: &[&str],
    ) -> Result<(), ApiError> {
        let covered: BTreeSet<&str> = covered.iter().copied().collect();
        let missing: Vec<String> = program
            .free_symbols()
            .into_iter()
            .filter(|s| !covered.contains(s.name()))
            .map(|s| s.name().to_string())
            .collect();
        if missing.is_empty() {
            Ok(())
        } else {
            Err(fail(
                ErrorKind::Schema,
                format!(
                    "free symbols neither tile nor bound symbols: {}",
                    missing.join(", ")
                ),
            ))
        }
    }
}

/// Builtin programs and their canonical forms, computed once per process:
/// a named program never changes, so steady-state requests that use builtin
/// names pay neither construction nor the canonicalization walk.
fn builtin_resolved(name: &str) -> Option<Resolved> {
    static TABLE: std::sync::OnceLock<Vec<(&'static str, Resolved)>> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        BUILTINS
            .iter()
            .map(|n| {
                let program = builtin(n).expect("listed builtin exists");
                let canonical = Arc::new(canonicalize(&program));
                (
                    *n,
                    Resolved {
                        program: Arc::new(program),
                        canonical,
                    },
                )
            })
            .collect()
    });
    table
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, r)| r.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            enable_test_ops: true,
            ..EngineConfig::default()
        })
    }

    fn parse(s: &str) -> Value {
        sdlo_wire::parse(s).unwrap()
    }

    #[test]
    fn predict_matches_direct_model() {
        let e = engine();
        let resp = parse(&e.handle_line(
            r#"{"op":"predict","id":7,"program":"tiled_matmul",
                "bindings":{"Ni":512,"Nj":512,"Nk":512,"Ti":64,"Tj":64,"Tk":64},
                "cache":8192}"#,
        ));
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp:?}");
        assert_eq!(resp.get("id").unwrap().as_i64(), Some(7));
        // The model doctest value for this exact configuration.
        assert_eq!(resp.get("misses").unwrap().as_u64(), Some(6_291_456));
    }

    #[test]
    fn repeated_shape_hits_the_cache() {
        let e = engine();
        let req = r#"{"op":"predict","program":"matmul",
                      "bindings":{"Ni":64,"Nj":64,"Nk":64},"cache":512}"#;
        let first = parse(&e.handle_line(req));
        let second = parse(&e.handle_line(req));
        assert_eq!(first.get("cache_hit").unwrap().as_bool(), Some(false));
        assert_eq!(second.get("cache_hit").unwrap().as_bool(), Some(true));
        assert_eq!(
            first.get("misses").unwrap().as_u64(),
            second.get("misses").unwrap().as_u64()
        );
    }

    #[test]
    fn renamed_inline_program_shares_the_cached_model() {
        let e = engine();
        // Same structure as builtin matmul but with different loop index
        // and array names: must be served from the same cache entry.
        e.handle_line(
            r#"{"op":"predict","program":"matmul",
                "bindings":{"Ni":64,"Nj":64,"Nk":64},"cache":512}"#,
        );
        let renamed = r#"{"op":"predict","cache":512,
            "bindings":{"Ni":64,"Nj":64,"Nk":64},
            "program":{"name":"mm2",
              "arrays":[{"name":"Z","dims":["Ni","Nk"]},
                        {"name":"X","dims":["Ni","Nj"]},
                        {"name":"Y","dims":["Nj","Nk"]}],
              "nest":[{"for":{"index":"p","bound":"Ni","body":[
                       {"for":{"index":"q","bound":"Nj","body":[
                        {"for":{"index":"r","bound":"Nk","body":[
                         {"stmt":{"kind":"mul_add_assign","refs":[
                           {"array":"Z","write":true,"dims":[[{"index":"p"}],[{"index":"r"}]]},
                           {"array":"X","dims":[[{"index":"p"}],[{"index":"q"}]]},
                           {"array":"Y","dims":[[{"index":"q"}],[{"index":"r"}]]}]}}]}}]}}]}}]}}"#;
        let resp = parse(&e.handle_line(renamed));
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp:?}");
        assert_eq!(resp.get("cache_hit").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn analyze_reports_components_under_original_names() {
        let e = engine();
        let resp = parse(&e.handle_line(r#"{"op":"analyze","program":"matmul"}"#));
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true));
        let comps = resp.get("components").unwrap().as_array().unwrap();
        assert!(!comps.is_empty());
        let arrays: BTreeSet<&str> = comps
            .iter()
            .filter_map(|c| c.get("array").unwrap().as_str())
            .collect();
        assert!(arrays.contains("A") && arrays.contains("B") && arrays.contains("C"));
    }

    #[test]
    fn advise_finds_tiles_and_bounds_free_works() {
        let e = engine();
        let resp = parse(&e.handle_line(
            r#"{"op":"advise","program":"tiled_matmul","cache":4096,
                "bindings":{"Ni":256,"Nj":256,"Nk":256},
                "space":{"syms":["Ti","Tj","Tk"],"max":[256,256,256],"min":4}}"#,
        ));
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp:?}");
        let best = resp.get("outcome").unwrap().get("best").unwrap();
        assert!(best.get("misses").unwrap().as_u64().unwrap() > 0);
        assert!(best.get("tiles").unwrap().get("Ti").is_some());

        let resp = parse(&e.handle_line(
            r#"{"op":"advise","program":"tiled_matmul","cache":4096,
                "bounds_free":{"bounds":["Ni","Nj","Nk"],"nominal":100000},
                "space":{"syms":["Ti","Tj","Tk"],"max":[512,512,512],"min":4}}"#,
        ));
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp:?}");
    }

    #[test]
    fn batch_runs_all_and_preserves_order() {
        let e = engine();
        let resp = parse(&e.handle_line(
            r#"{"op":"batch","requests":[
                 {"op":"predict","id":"a","program":"matmul",
                  "bindings":{"Ni":32,"Nj":32,"Nk":32},"cache":256},
                 {"op":"stats","id":"b"},
                 {"op":"nope","id":"c"}]}"#,
        ));
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true));
        let rs = resp.get("responses").unwrap().as_array().unwrap();
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0].get("id").unwrap().as_str(), Some("a"));
        assert_eq!(rs[1].get("id").unwrap().as_str(), Some("b"));
        assert_eq!(rs[2].get("ok").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn lint_reports_diagnostics_for_builtins() {
        let e = engine();
        let resp = parse(&e.handle_line(r#"{"op":"lint","id":1,"program":"matmul"}"#));
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp:?}");
        let summary = resp.get("summary").unwrap();
        assert_eq!(summary.get("error").unwrap().as_u64(), Some(0));
        let diags = resp.get("diagnostics").unwrap().as_array().unwrap();
        assert!(diags
            .iter()
            .any(|d| d.get("rule").unwrap().as_str() == Some("untiled-reuse")));
        // Diagnostic counts surface in stats.
        let stats = parse(&e.handle_line(r#"{"op":"stats"}"#));
        let lint = stats.get("stats").unwrap().get("lint").unwrap();
        let d = lint.get("diagnostics").unwrap();
        assert_eq!(d.get("error").unwrap().as_u64(), Some(0));
        assert!(d.get("warning").unwrap().as_u64().unwrap() > 0);
    }

    #[test]
    fn lint_accepts_invalid_inline_programs() {
        let e = engine();
        // Unbound index `i`: predict refuses this program, lint reports it.
        let prog = r#""program":{"name":"bad","arrays":[{"name":"A","dims":["N"]}],
            "nest":[{"stmt":{"kind":"zero",
                     "refs":[{"array":"A","write":true,"dims":[[{"index":"i"}]]}]}}]}"#;
        let resp = parse(&e.handle_line(&format!(r#"{{"op":"lint",{prog}}}"#)));
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp:?}");
        let diags = resp.get("diagnostics").unwrap().as_array().unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].get("rule").unwrap().as_str(), Some("structure"));
        assert_eq!(diags[0].get("severity").unwrap().as_str(), Some("error"));
        // Schema-level garbage still fails the request.
        let resp = parse(&e.handle_line(r#"{"op":"lint","program":{"name":"x"}}"#));
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn errors_are_structured() {
        let e = engine();
        let malformed = parse(&e.handle_line("this is not json"));
        assert_eq!(malformed.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(
            malformed
                .get("error")
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str(),
            Some("malformed")
        );

        let unbound = parse(
            &e.handle_line(r#"{"op":"predict","program":"matmul","bindings":{"Ni":8},"cache":64}"#),
        );
        assert_eq!(unbound.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(
            unbound.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("schema")
        );

        let huge_grid = parse(&e.handle_line(
            r#"{"op":"advise","program":"tiled_matmul","cache":64,
                "bindings":{"Ni":8,"Nj":8,"Nk":8},
                "space":{"syms":["Ti","Tj","Tk"],
                         "max":[1152921504606846976,1152921504606846976,1152921504606846976],
                         "min":1}}"#,
        ));
        assert_eq!(
            huge_grid
                .get("error")
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str(),
            Some("limit"),
            "{huge_grid:?}"
        );
    }

    #[test]
    fn stats_reflect_activity() {
        let e = engine();
        e.handle_line(r#"{"op":"predict","program":"matmul","bindings":{"Ni":16,"Nj":16,"Nk":16},"cache":64}"#);
        e.handle_line(r#"{"op":"predict","program":"matmul","bindings":{"Ni":16,"Nj":16,"Nk":16},"cache":64}"#);
        let resp = parse(&e.handle_line(r#"{"op":"stats"}"#));
        let stats = resp.get("stats").unwrap();
        assert_eq!(
            stats
                .get("requests")
                .unwrap()
                .get("predict")
                .unwrap()
                .get("requests")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        assert_eq!(
            stats.get("cache").unwrap().get("hits").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            stats.get("cache").unwrap().get("misses").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(stats.get("cached_shapes").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn request_ids_are_generated_and_echoed() {
        let e = engine();
        // Server-generated: distinct per request, error replies included.
        let a = parse(&e.handle_line(r#"{"op":"stats"}"#));
        let b = parse(&e.handle_line(r#"{"op":"nope"}"#));
        let ida = a.get("request_id").unwrap().as_str().unwrap().to_string();
        let idb = b.get("request_id").unwrap().as_str().unwrap().to_string();
        assert!(ida.starts_with("req-"), "{ida}");
        assert!(idb.starts_with("req-"), "{idb}");
        assert_ne!(ida, idb);
        assert_eq!(b.get("ok").unwrap().as_bool(), Some(false));
        // Client-supplied ids pass through verbatim.
        let c = parse(&e.handle_line(r#"{"op":"stats","request_id":"client-42"}"#));
        assert_eq!(c.get("request_id").unwrap().as_str(), Some("client-42"));
        // Malformed lines still get a request id.
        let m = parse(&e.handle_line("not json"));
        assert!(m
            .get("request_id")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("req-"));
    }

    #[test]
    fn metrics_op_round_trips_stats_counters() {
        let e = engine();
        e.handle_line(
            r#"{"op":"predict","program":"matmul","bindings":{"Ni":16,"Nj":16,"Nk":16},"cache":64}"#,
        );
        e.handle_line(
            r#"{"op":"predict","program":"matmul","bindings":{"Ni":16,"Nj":16,"Nk":16},"cache":64}"#,
        );
        let stats = parse(&e.handle_line(r#"{"op":"stats"}"#));
        let resp = parse(&e.handle_line(r#"{"op":"metrics"}"#));
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp:?}");
        let text = resp.get("text").unwrap().as_str().unwrap();
        // The exposition must agree with the `stats` JSON for the same
        // counters (one extra stats request was recorded in between).
        let s = stats.get("stats").unwrap();
        let predicts = s
            .path(&["requests", "predict", "requests"])
            .unwrap()
            .as_u64()
            .unwrap();
        let hits = s.path(&["cache", "hits"]).unwrap().as_u64().unwrap();
        let shapes = s.get("cached_shapes").unwrap().as_u64().unwrap();
        assert!(text.contains(&format!("sdlo_requests_total{{op=\"predict\"}} {predicts}")));
        assert!(text.contains(&format!("sdlo_model_cache_hits_total {hits}")));
        assert!(text.contains(&format!("sdlo_cached_shapes {shapes}")));
        assert!(text.contains("sdlo_uptime_seconds "));
        // In-flight gauge is back to zero once the request completes.
        assert!(text.contains("sdlo_inflight{op=\"predict\"} 0"));
    }

    #[test]
    fn stats_report_version_uptime_and_in_flight() {
        let e = engine();
        let resp = parse(&e.handle_line(r#"{"op":"stats"}"#));
        let s = resp.get("stats").unwrap();
        assert_eq!(
            s.get("version").unwrap().as_str(),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(s.get("uptime_seconds").unwrap().as_f64().unwrap() >= 0.0);
        // The stats request itself is in flight while the snapshot is taken.
        assert_eq!(
            s.path(&["requests", "stats", "in_flight"])
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert_eq!(
            s.path(&["requests", "predict", "in_flight"])
                .unwrap()
                .as_u64(),
            Some(0)
        );
    }

    use std::collections::BTreeSet;
}
